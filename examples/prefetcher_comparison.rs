//! Compare every instruction-delivery configuration on a few functions:
//! next-line, PIF, PIF-ideal, Jukebox, Jukebox+PIF-ideal and the perfect
//! I-cache oracle — the §5.5 / Figure 13 story.
//!
//! ```text
//! cargo run --release --example prefetcher_comparison [scale]
//! ```

use luke_common::table::TextTable;
use lukewarm::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let params = ExperimentParams {
        scale,
        invocations: 4,
        warmup: 2,
    };
    let config = SystemConfig::skylake();

    let kinds = [
        PrefetcherKind::NextLine,
        PrefetcherKind::Pif,
        PrefetcherKind::PifIdeal,
        PrefetcherKind::Jukebox(config.jukebox),
        PrefetcherKind::JukeboxPlusPifIdeal(config.jukebox),
        PrefetcherKind::PerfectICache,
    ];

    let mut header = vec!["function"];
    header.extend(kinds.iter().map(|k| k.label()));
    let mut table = TextTable::new(&header);

    for name in ["Email-P", "Pay-N", "ProdL-G"] {
        let profile = FunctionProfile::named(name).expect("suite").scaled(scale);
        let baseline = run(
            &config,
            &profile,
            PrefetcherKind::None,
            RunSpec::lukewarm(),
            &params,
        );
        let mut row = vec![name.to_string()];
        for kind in kinds {
            let s = run(&config, &profile, kind, RunSpec::lukewarm(), &params);
            row.push(format!(
                "{:+.1}%",
                (s.speedup_over(&baseline) - 1.0) * 100.0
            ));
        }
        table.row(&row);
    }

    println!("Speedup over the lukewarm (interleaved) baseline:\n");
    println!("{table}");
    println!(
        "Jukebox's bulk replay beats stream-following (PIF) because it never \
         stops to re-index: it prefetches the whole recorded working set \
         without synchronizing with the core (§5.5)."
    );
}
