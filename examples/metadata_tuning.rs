//! Jukebox design-space tuning on one function: the §5.1 studies.
//!
//! Sweeps the code-region size (Figure 8), the CRRB depth, and the
//! metadata-storage budget (Figure 9) and prints the resulting metadata
//! requirements and speedups.
//!
//! ```text
//! cargo run --release --example metadata_tuning [function] [scale]
//! ```

use luke_common::size::ByteSize;
use luke_common::table::TextTable;
use lukewarm::prelude::*;
use lukewarm::sim::experiments::fig08::required_metadata_bytes;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Email-P".to_string());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let profile = FunctionProfile::named(&name)
        .expect("suite function")
        .scaled(scale);
    let config = SystemConfig::skylake();
    let params = ExperimentParams {
        scale,
        invocations: 4,
        warmup: 2,
    };

    // --- Region-size sweep (Figure 8) ---
    println!("== metadata required vs code-region size (16-entry CRRB) ==");
    let mut t = TextTable::new(&["region", "metadata", "entry bits"]);
    for region in [128usize, 256, 512, 1024, 2048, 4096, 8192] {
        let jb = config.jukebox.with_region_bytes(region);
        let bytes = required_metadata_bytes(&config, &profile, jb);
        t.row(&[
            format!("{region}B"),
            ByteSize::new(bytes).to_string(),
            jb.entry_bits().to_string(),
        ]);
    }
    println!("{t}");

    // --- CRRB-depth sweep (§5.1: modest sensitivity) ---
    println!("== metadata required vs CRRB depth (1KB regions) ==");
    let mut t = TextTable::new(&["CRRB entries", "metadata"]);
    for entries in [8usize, 16, 32] {
        let jb = config.jukebox.with_crrb_entries(entries);
        let bytes = required_metadata_bytes(&config, &profile, jb);
        t.row(&[entries.to_string(), ByteSize::new(bytes).to_string()]);
    }
    println!("{t}");

    // --- Metadata-budget sweep (Figure 9) ---
    println!("== speedup vs metadata storage budget ==");
    let baseline = run(
        &config,
        &profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        &params,
    );
    let mut t = TextTable::new(&["budget", "speedup", "coverage"]);
    for kb in [8u64, 12, 16, 32] {
        let jb = config.jukebox.with_metadata_capacity(ByteSize::kib(kb));
        let s = run(
            &config,
            &profile,
            PrefetcherKind::Jukebox(jb),
            RunSpec::lukewarm(),
            &params,
        );
        t.row(&[
            format!("{kb}KB"),
            format!("{:+.1}%", (s.speedup_over(&baseline) - 1.0) * 100.0),
            format!(
                "{:.0}%",
                s.mem.l2.prefetch_first_hits as f64 / baseline.mem.l2.instr.misses.max(1) as f64
                    * 100.0
            ),
        ]);
    }
    println!("{t}");
    println!(
        "The paper picks 1KB regions + a 16-entry CRRB + 16KB of storage: \
         the metadata minimum sits near 1KB regions, CRRB depth barely \
         matters, and budgets beyond 16KB buy little on average (§5.1)."
    );
}
