//! Quickstart: measure one function's lukewarm penalty and how much of it
//! Jukebox recovers.
//!
//! ```text
//! cargo run --release --example quickstart [function] [scale]
//! ```
//!
//! `function` is a Table 2 abbreviation (default `Auth-G`); `scale` scales
//! the workload (default 0.25 for a quick run; 1.0 = paper scale).

use lukewarm::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Auth-G".to_string());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let profile = FunctionProfile::named(&name)
        .unwrap_or_else(|| {
            eprintln!("unknown function {name:?}; pick one of:");
            for p in paper_suite() {
                eprintln!("  {}", p.name);
            }
            std::process::exit(1);
        })
        .scaled(scale);
    let config = SystemConfig::skylake();
    let params = ExperimentParams {
        scale,
        invocations: 5,
        warmup: 2,
    };

    println!("function  : {} ({})", profile.name, profile.language);
    println!(
        "footprint : {} target, {} instructions/invocation",
        profile.code_footprint, profile.instructions
    );
    println!("platform  :\n{}", config.describe());

    let reference = run(
        &config,
        &profile,
        PrefetcherKind::None,
        RunSpec::reference(),
        &params,
    );
    let baseline = run(
        &config,
        &profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        &params,
    );
    let jukebox = run(
        &config,
        &profile,
        PrefetcherKind::Jukebox(config.jukebox),
        RunSpec::lukewarm(),
        &params,
    );
    let perfect = run(
        &config,
        &profile,
        PrefetcherKind::PerfectICache,
        RunSpec::lukewarm(),
        &params,
    );

    println!("\nconfiguration        CPI     vs reference");
    println!("------------------------------------------");
    let row = |label: &str, cpi: f64| {
        println!(
            "{label:<20} {cpi:>5.2}   {:>+9.1}%",
            (cpi / reference.cpi() - 1.0) * 100.0
        );
    };
    row("reference (warm)", reference.cpi());
    row("lukewarm baseline", baseline.cpi());
    row("lukewarm + Jukebox", jukebox.cpi());
    row("perfect I-cache", perfect.cpi());

    println!(
        "\nJukebox speedup over lukewarm baseline : {:+.1}%",
        (jukebox.speedup_over(&baseline) - 1.0) * 100.0
    );
    println!(
        "Perfect-I$ opportunity                 : {:+.1}%",
        (perfect.speedup_over(&baseline) - 1.0) * 100.0
    );
    println!(
        "L2 instruction-miss coverage           : {:.0}%",
        jukebox.mem.l2.prefetch_first_hits as f64 / baseline.mem.l2.instr.misses.max(1) as f64
            * 100.0
    );
    let stack = baseline.cpi_stack();
    println!(
        "\nlukewarm Top-Down stack (cycles/instr): retiring {:.2} | fetch-lat {:.2} | fetch-bw {:.2} | bad-spec {:.2} | backend {:.2}",
        stack.retiring, stack.fetch_latency, stack.fetch_bandwidth, stack.bad_speculation, stack.backend
    );
}
