//! End-to-end workflow latency: the Hotel Reservation and Online Boutique
//! request chains traversing five functions each, measured warm, lukewarm
//! and lukewarm+Jukebox — the SLO framing of the paper's introduction.
//!
//! ```text
//! cargo run --release --example workflow_latency [scale]
//! ```

use lukewarm::sim::experiments::workflow_slo;
use lukewarm::sim::ExperimentParams;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let params = ExperimentParams {
        scale,
        invocations: 4,
        warmup: 2,
    };
    print!("{}", workflow_slo::run_experiment(&params));
    println!(
        "Interactive services budget a few tens of milliseconds end-to-end [20]; \
         with five lukewarm stages on the critical path, the per-function \
         penalty multiplies — and so does Jukebox's recovery."
    );
}
