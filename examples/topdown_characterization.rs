//! The §2.3 characterization in miniature: Top-Down CPI stacks of
//! reference vs interleaved execution, showing where lukewarm cycles go.
//!
//! ```text
//! cargo run --release --example topdown_characterization [scale]
//! ```

use luke_common::table::TextTable;
use lukewarm::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let params = ExperimentParams {
        scale,
        invocations: 4,
        warmup: 2,
    };
    let config = SystemConfig::skylake();

    let mut table = TextTable::new(&[
        "function",
        "config",
        "CPI",
        "retiring",
        "fetch-lat",
        "fetch-bw",
        "bad-spec",
        "backend",
    ]);
    let mut increases = Vec::new();
    let mut flat_shares = Vec::new();

    for name in ["Fib-P", "Auth-N", "Pay-N", "Auth-G", "ProdL-G"] {
        let profile = FunctionProfile::named(name).expect("suite").scaled(scale);
        let reference = run(
            &config,
            &profile,
            PrefetcherKind::None,
            RunSpec::reference(),
            &params,
        );
        let interleaved = run(
            &config,
            &profile,
            PrefetcherKind::None,
            RunSpec::lukewarm(),
            &params,
        );
        for (label, s) in [("ref", &reference), ("lukewarm", &interleaved)] {
            let td = s.cpi_stack();
            table.row(&[
                name.to_string(),
                label.to_string(),
                format!("{:.2}", td.total()),
                format!("{:.2}", td.retiring),
                format!("{:.2}", td.fetch_latency),
                format!("{:.2}", td.fetch_bandwidth),
                format!("{:.2}", td.bad_speculation),
                format!("{:.2}", td.backend),
            ]);
        }
        let (r, i) = (reference.cpi_stack(), interleaved.cpi_stack());
        increases.push(i.total() / r.total() - 1.0);
        let extra = i.total() - r.total();
        if extra > 0.0 {
            flat_shares.push((i.fetch_latency - r.fetch_latency).max(0.0) / extra);
        }
    }

    println!("Top-Down CPI stacks (cycles per instruction):\n");
    println!("{table}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Interleaving raises CPI by {:.0}% on average; {:.0}% of the extra \
         cycles are instruction fetch latency — the bottleneck Jukebox targets \
         (paper: +70% average, 56% fetch latency).",
        mean(&increases) * 100.0,
        mean(&flat_shares) * 100.0
    );
}
