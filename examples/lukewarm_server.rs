//! A serverless host in miniature: a pool of warm instances receiving
//! Poisson invocation traffic, with per-instance cache-state decay driven
//! by how much foreign work interleaved since the instance last ran.
//!
//! Demonstrates the §2.2 phenomenon end-to-end: instances invoked rarely
//! (long IAT) run lukewarm and slow; Jukebox restores most of the lost
//! performance. Prints per-instance mean CPI with and without Jukebox.
//!
//! ```text
//! cargo run --release --example lukewarm_server [scale]
//! ```

use lukewarm::prelude::*;
use lukewarm::server::{IatDistribution, InstancePool, InterleaveModel, TrafficGenerator};
use lukewarm_sim::runner::PrefetcherKind;

/// Instances on the simulated host, one per profile entry below.
const INSTANCES: usize = 6;
/// Invocations to simulate across the host.
const EVENTS: usize = 400;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);

    // Six instances of different functions with different invocation
    // rates: from chatty (50ms) to rare (10s).
    let suite = paper_suite();
    let chosen = ["Auth-G", "Fib-P", "Pay-N", "Geo-G", "AES-N", "Email-P"];
    let mean_iats = [50.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0];
    let profiles: Vec<_> = chosen
        .iter()
        .map(|name| {
            suite
                .iter()
                .find(|p| &p.name == name)
                .expect("suite function")
                .scaled(scale)
        })
        .collect();

    let config = SystemConfig::skylake();
    let model = InterleaveModel::high_occupancy();
    let distributions: Vec<IatDistribution> = mean_iats
        .iter()
        .map(|&ms| IatDistribution::Exponential { mean_ms: ms })
        .collect();

    for use_jukebox in [false, true] {
        println!(
            "\n=== host run: Jukebox {} ===",
            if use_jukebox { "ENABLED" } else { "disabled" }
        );
        let mut traffic = TrafficGenerator::new(&distributions, 42);
        let mut pool = InstancePool::new(600_000.0); // 10-minute keep-alive

        // One simulated system + prefetcher per warm instance.
        let mut sims: Vec<SystemSim> = profiles.iter().map(|p| SystemSim::new(config, p)).collect();
        let mut prefetchers: Vec<Box<dyn lukewarm::mem::InstructionPrefetcher>> = profiles
            .iter()
            .map(|_| {
                if use_jukebox {
                    PrefetcherKind::Jukebox(config.jukebox).build()
                } else {
                    PrefetcherKind::None.build()
                }
            })
            .collect();
        let ids: Vec<u64> = (0..INSTANCES).map(|i| pool.spawn(i, 0.0)).collect();

        let mut cycles = [0u64; INSTANCES];
        let mut instrs = [0u64; INSTANCES];
        let mut counts = [0u64; INSTANCES];

        for event in traffic.take_events(EVENTS) {
            let idx = event.instance;
            let gap_ms = pool.invoke(ids[idx], event.at_ms).expect("warm instance");
            // Decay this instance's cache state according to how much
            // foreign work ran during the gap.
            let l2 = model.decay_fraction(config.mem.l2.lines(), gap_ms);
            let llc = model.llc_decay_fraction(config.mem.llc.lines(), gap_ms);
            sims[idx].decay(l2, llc, l2 > 0.5);
            let m = sims[idx].run_invocation(prefetchers[idx].as_mut());
            cycles[idx] += m.result.cycles;
            instrs[idx] += m.result.instructions;
            counts[idx] += 1;
        }

        println!("instance      mean IAT   invocations   mean CPI");
        println!("------------------------------------------------");
        for i in 0..INSTANCES {
            let cpi = if instrs[i] == 0 {
                0.0
            } else {
                cycles[i] as f64 / instrs[i] as f64
            };
            println!(
                "{:<12} {:>7.0}ms   {:>11}   {:>8.2}",
                profiles[i].name, mean_iats[i], counts[i], cpi
            );
        }
        println!(
            "warm instances: {}, cold starts: {}",
            pool.warm_count(),
            pool.cold_starts()
        );
    }

    println!(
        "\nThe rarely-invoked instances (long IAT) show the highest CPI without \
         Jukebox — the lukewarm phenomenon — and the largest recovery with it."
    );
}
