//! **lukewarm** — a reproduction of *Lukewarm Serverless Functions:
//! Characterization and Optimization* (Schall, Margaritov, Ustiugov,
//! Sandberg, Grot — ISCA 2022).
//!
//! Serverless hosts keep thousands of function instances warm in memory
//! while their invocations arrive seconds apart. Between two invocations of
//! one instance, hundreds of other invocations execute on the same core and
//! obliterate its microarchitectural state: the next invocation is
//! *lukewarm* — memory-resident, yet facing a cold CPU. The paper measures
//! a 31–114% CPI penalty, attributes most of it to instruction-fetch
//! latency, and proposes **Jukebox**, a record-and-replay instruction
//! prefetcher that stores ~32KB of per-instance metadata in main memory and
//! bulk-prefetches the recorded instruction working set into the L2 at
//! dispatch.
//!
//! This crate is a facade over the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`jukebox`] | `jukebox` | the prefetcher: CRRB, metadata, record/replay, OS model |
//! | [`mem`] | `sim-mem` | caches, TLBs, DRAM, page tables, prefetch interface |
//! | [`cpu`] | `sim-cpu` | trace-driven timing model with Top-Down accounting |
//! | [`workloads`] | `workloads` | the 20-function synthetic suite (Table 2) |
//! | [`prefetchers`] | `prefetchers` | PIF, PIF-ideal, next-line baselines |
//! | [`server`] | `server` | warm pools, IAT traffic, interleaving model |
//! | [`predict`] | `luke-predict` | online IAT prediction, pre-warming, adaptive keep-alive |
//! | [`snapshot`] | `luke-snapshot` | page-level snapshot/restore, REAP record-and-prefetch |
//! | [`fleet`] | `luke-fleet` | cluster-scale fleet simulator with deterministic sharding |
//! | [`sim`] | `lukewarm-sim` | full-system glue + every figure/table experiment |
//! | [`common`] | `luke-common` | addresses, statistics, deterministic RNG |
//!
//! # Quickstart
//!
//! Measure one function's lukewarm penalty and how much Jukebox recovers:
//!
//! ```
//! use lukewarm::prelude::*;
//!
//! let params = ExperimentParams::quick(); // scaled-down for doc tests
//! let profile = FunctionProfile::named("Auth-G").unwrap().scaled(params.scale);
//! let config = SystemConfig::skylake();
//!
//! let baseline = run(&config, &profile, PrefetcherKind::None, RunSpec::lukewarm(), &params);
//! let jukebox = run(
//!     &config,
//!     &profile,
//!     PrefetcherKind::Jukebox(config.jukebox),
//!     RunSpec::lukewarm(),
//!     &params,
//! );
//! assert!(jukebox.speedup_over(&baseline) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jukebox;
pub use luke_common as common;
pub use luke_fleet as fleet;
pub use luke_predict as predict;
pub use luke_snapshot as snapshot;
pub use lukewarm_sim as sim;
pub use prefetchers;
pub use server;
pub use sim_cpu as cpu;
pub use sim_mem as mem;
pub use workloads;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use jukebox::{JukeboxConfig, JukeboxPrefetcher};
    pub use lukewarm_sim::runner::{run, CacheState, RunSpec};
    pub use lukewarm_sim::{ExperimentParams, PrefetcherKind, SystemConfig, SystemSim};
    pub use workloads::{paper_suite, FunctionProfile, SyntheticFunction};
}
