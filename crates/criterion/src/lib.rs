//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The build container has no access to crates.io, so the real `criterion`
//! cannot be fetched. This crate keeps the `[[bench]]` targets compiling
//! and producing useful numbers: each benchmark is warmed briefly, then
//! timed adaptively until a wall-clock budget is spent, and the mean
//! nanoseconds per iteration is printed. No statistical analysis, HTML
//! reports or comparison against saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim always runs setup once per timed invocation and excludes it from
/// the measurement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    /// Accumulated measured time.
    elapsed: Duration,
    /// Accumulated measured iterations.
    iters: u64,
    /// Wall-clock measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Brief warm-up, not counted.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut batch = 1u64;
        while self.elapsed < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        while self.elapsed < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measurements)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("{name:<40} {ns:>12.1} ns/iter ({} iters)", self.iters);
    }
}

/// The benchmark registry/driver (`c` in `fn bench(c: &mut Criterion)`).
pub struct Criterion {
    budget: Duration,
}

impl Criterion {
    /// Per-benchmark measurement budget (`LUKEWARM_BENCH_MS`, default
    /// 300ms).
    pub fn default_budget() -> Duration {
        let ms = std::env::var("LUKEWARM_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Duration::from_millis(ms)
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Self::default_budget(),
        }
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.iters > 0);
        assert!(b.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn bench_function_runs_inline() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("shim/self_test", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }
}
