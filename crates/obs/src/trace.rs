//! Chrome `trace_event` / Perfetto JSON timeline output.
//!
//! Renders an [`EventRing`]'s contents as the JSON Object Format of the
//! Trace Event spec: open `chrome://tracing` or <https://ui.perfetto.dev>
//! and load the file. Durations ([`EventKind::FetchStall`]) become
//! complete (`"ph":"X"`) events; everything else is an instant
//! (`"ph":"i"`). Timestamps are core cycles, declared via
//! `otherData.clock` so the unit is self-describing.

use crate::events::{Event, EventKind};
use crate::json::write_str;
use crate::span::{dispatch_of, is_hedge_lane, Span, SpanKind};
use std::collections::BTreeMap;

/// Serializes events (oldest first) as a Chrome trace JSON document.
///
/// `process_name` labels the single process row (typically the function
/// under trace); all events land on thread 1.
pub fn chrome_trace(process_name: &str, events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"cycles\"},\"traceEvents\":[");
    // Metadata record naming the process row.
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":");
    write_str(&mut out, process_name);
    out.push_str("}}");
    for event in events {
        out.push(',');
        write_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

fn write_event(out: &mut String, event: &Event) {
    out.push_str("{\"name\":");
    write_str(out, event.kind.label());
    out.push_str(",\"cat\":\"invocation\",\"pid\":1,\"tid\":1,\"ts\":");
    out.push_str(&event.ts.to_string());
    match event.kind {
        EventKind::FetchStall => {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            out.push_str(&event.dur.to_string());
        }
        _ => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
    }
    out.push_str(",\"args\":{");
    let (ka, kb) = arg_names(event.kind);
    write_str(out, ka);
    out.push(':');
    out.push_str(&event.a.to_string());
    out.push(',');
    write_str(out, kb);
    out.push(':');
    out.push_str(&event.b.to_string());
    out.push_str("}}");
}

fn arg_names(kind: EventKind) -> (&'static str, &'static str) {
    match kind {
        EventKind::Dispatch => ("invocation", "reserved"),
        EventKind::FetchStall => ("line", "hit_level"),
        EventKind::PrefetchBatch => ("issued", "redundant"),
        EventKind::FaultDraw => ("fault_kind", "attempt"),
        EventKind::Retire => ("instructions", "cycles"),
    }
}

/// Serializes a span forest as a Chrome trace JSON document.
///
/// Each trace lane (one dispatched copy of an invocation) becomes its
/// own thread row; span times, which are invocation-relative, are
/// shifted by the root span's recorded arrival so the timeline lays out
/// in absolute simulated microseconds. Durational spans render as
/// complete (`"ph":"X"`) events, verdicts as instants — and hedged
/// pairs (both lanes of one dispatch present) are linked with flow
/// (`"ph":"s"` → `"ph":"f"`) events whose id is the dispatch index, so
/// Perfetto draws the arrow from the primary to its duplicate.
pub fn chrome_trace_spans(process_name: &str, spans: &[Span]) -> String {
    // Absolute offset and presence per lane, from the root spans.
    let mut arrivals: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.id == 0 {
            arrivals.insert(s.trace, s.b);
        }
    }
    let mut out = String::from(
        "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"us\"},\"traceEvents\":[",
    );
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":");
    write_str(&mut out, process_name);
    out.push_str("}}");
    for span in spans {
        out.push(',');
        write_span(&mut out, span, arrivals.get(&span.trace).copied().unwrap_or(0));
    }
    // Flow pairs: one arrow per dispatch with both lanes present.
    for (&trace, &arrival) in &arrivals {
        if !is_hedge_lane(trace) {
            continue;
        }
        let dispatch = dispatch_of(trace);
        let primary = trace - 1;
        let Some(&primary_arrival) = arrivals.get(&primary) else {
            continue;
        };
        out.push_str(&format!(
            ",{{\"name\":\"hedge\",\"cat\":\"fleet\",\"ph\":\"s\",\"id\":{dispatch},\
             \"pid\":1,\"tid\":{},\"ts\":{primary_arrival}}}",
            primary + 1
        ));
        out.push_str(&format!(
            ",{{\"name\":\"hedge\",\"cat\":\"fleet\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{dispatch},\"pid\":1,\"tid\":{},\"ts\":{arrival}}}",
            trace + 1
        ));
    }
    out.push_str("]}");
    out
}

fn write_span(out: &mut String, span: &Span, offset_us: u64) {
    out.push_str("{\"name\":");
    write_str(out, span.kind.label());
    out.push_str(&format!(
        ",\"cat\":\"fleet\",\"pid\":1,\"tid\":{},\"ts\":{}",
        span.trace + 1,
        offset_us + span.start_us
    ));
    if span.dur_us > 0 || span.kind == SpanKind::Invocation {
        out.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", span.dur_us));
    } else {
        out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
    }
    let (ka, kb) = span_arg_names(span.kind);
    out.push_str(&format!(
        ",\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},",
        span.trace, span.id, span.parent
    ));
    write_str(out, ka);
    out.push(':');
    out.push_str(&span.a.to_string());
    out.push(',');
    write_str(out, kb);
    out.push(':');
    out.push_str(&span.b.to_string());
    out.push_str("}}");
}

fn span_arg_names(kind: SpanKind) -> (&'static str, &'static str) {
    match kind {
        SpanKind::Invocation => ("host", "arrival_us"),
        SpanKind::Route => ("host", "failed_over"),
        SpanKind::Hedge => ("primary", "hedge_host"),
        SpanKind::Reconnect => ("retry", "abandoned"),
        SpanKind::Admission => ("verdict", "reserved"),
        SpanKind::Restore => ("attempt", "degraded"),
        SpanKind::Execute => ("attempt", "outcome"),
        SpanKind::Backoff => ("attempt", "reserved"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn ev(ts: u64, dur: u64, kind: EventKind, a: u64, b: u64) -> Event {
        Event { ts, dur, kind, a, b }
    }

    #[test]
    fn trace_document_is_valid_json_with_expected_phases() {
        let events = [
            ev(0, 0, EventKind::Dispatch, 1, 0),
            ev(5, 120, EventKind::FetchStall, 42, 2),
            ev(900, 0, EventKind::Retire, 5000, 900),
        ];
        let doc = chrome_trace("Auth-G", &events);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
        assert_eq!(
            v.get("otherData").unwrap().get("clock").unwrap().as_str(),
            Some("cycles")
        );
        let te = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata record + 3 events.
        assert_eq!(te.len(), 4);
        assert_eq!(te[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(te[1].get("name").unwrap().as_str(), Some("dispatch"));
        assert_eq!(te[1].get("ph").unwrap().as_str(), Some("i"));
        let stall = &te[2];
        assert_eq!(stall.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(stall.get("dur").unwrap().as_f64(), Some(120.0));
        assert_eq!(stall.get("args").unwrap().get("line").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            te[3].get("args").unwrap().get("instructions").unwrap().as_f64(),
            Some(5000.0)
        );
    }

    #[test]
    fn empty_trace_still_has_process_metadata() {
        let doc = chrome_trace("fn", &[]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
    }

    fn sp(trace: u64, id: u32, kind: SpanKind, start_us: u64, dur_us: u64, a: u64, b: u64) -> Span {
        Span {
            trace,
            id,
            parent: 0,
            kind,
            start_us,
            dur_us,
            a,
            b,
        }
    }

    #[test]
    fn span_trace_shifts_by_arrival_and_pairs_hedge_flows() {
        // Dispatch 3, hedged: primary on lane 6 (arrival 500µs), hedge on
        // lane 7 (arrival 500µs too — both copies leave the router at the
        // same simulated instant).
        let spans = [
            sp(6, 0, SpanKind::Invocation, 0, 900, 2, 500),
            sp(6, 4, SpanKind::Execute, 0, 900, 0, 0),
            sp(7, 0, SpanKind::Invocation, 0, 1200, 5, 500),
            sp(7, 4, SpanKind::Execute, 0, 1200, 0, 0),
        ];
        let doc = chrome_trace_spans("fleet", &spans);
        let v = parse(&doc).unwrap();
        let te = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata + 4 spans + flow start/finish.
        assert_eq!(te.len(), 7);
        let root = &te[1];
        assert_eq!(root.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(root.get("ts").unwrap().as_f64(), Some(500.0));
        assert_eq!(root.get("dur").unwrap().as_f64(), Some(900.0));
        assert_eq!(root.get("tid").unwrap().as_f64(), Some(7.0));
        let start = te
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .expect("flow start");
        let finish = te
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .expect("flow finish");
        // Both ends of the arrow carry the dispatch index as the flow id.
        assert_eq!(start.get("id").unwrap().as_f64(), Some(3.0));
        assert_eq!(finish.get("id").unwrap().as_f64(), Some(3.0));
        assert_eq!(start.get("tid").unwrap().as_f64(), Some(7.0));
        assert_eq!(finish.get("tid").unwrap().as_f64(), Some(8.0));
    }

    #[test]
    fn unhedged_span_trace_has_no_flow_events() {
        let spans = [
            sp(4, 0, SpanKind::Invocation, 0, 100, 0, 0),
            sp(4, 5, SpanKind::Admission, 0, 0, 0, 0),
        ];
        let doc = chrome_trace_spans("fleet", &spans);
        let v = parse(&doc).unwrap();
        let te = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(te.len(), 3);
        for e in te {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(ph != "s" && ph != "f", "unexpected flow event");
        }
        // Zero-duration verdicts are instants.
        assert_eq!(te[2].get("ph").unwrap().as_str(), Some("i"));
    }
}
