//! Chrome `trace_event` / Perfetto JSON timeline output.
//!
//! Renders an [`EventRing`]'s contents as the JSON Object Format of the
//! Trace Event spec: open `chrome://tracing` or <https://ui.perfetto.dev>
//! and load the file. Durations ([`EventKind::FetchStall`]) become
//! complete (`"ph":"X"`) events; everything else is an instant
//! (`"ph":"i"`). Timestamps are core cycles, declared via
//! `otherData.clock` so the unit is self-describing.

use crate::events::{Event, EventKind};
use crate::json::write_str;

/// Serializes events (oldest first) as a Chrome trace JSON document.
///
/// `process_name` labels the single process row (typically the function
/// under trace); all events land on thread 1.
pub fn chrome_trace(process_name: &str, events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"cycles\"},\"traceEvents\":[");
    // Metadata record naming the process row.
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":");
    write_str(&mut out, process_name);
    out.push_str("}}");
    for event in events {
        out.push(',');
        write_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

fn write_event(out: &mut String, event: &Event) {
    out.push_str("{\"name\":");
    write_str(out, event.kind.label());
    out.push_str(",\"cat\":\"invocation\",\"pid\":1,\"tid\":1,\"ts\":");
    out.push_str(&event.ts.to_string());
    match event.kind {
        EventKind::FetchStall => {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            out.push_str(&event.dur.to_string());
        }
        _ => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
    }
    out.push_str(",\"args\":{");
    let (ka, kb) = arg_names(event.kind);
    write_str(out, ka);
    out.push(':');
    out.push_str(&event.a.to_string());
    out.push(',');
    write_str(out, kb);
    out.push(':');
    out.push_str(&event.b.to_string());
    out.push_str("}}");
}

fn arg_names(kind: EventKind) -> (&'static str, &'static str) {
    match kind {
        EventKind::Dispatch => ("invocation", "reserved"),
        EventKind::FetchStall => ("line", "hit_level"),
        EventKind::PrefetchBatch => ("issued", "redundant"),
        EventKind::FaultDraw => ("fault_kind", "attempt"),
        EventKind::Retire => ("instructions", "cycles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn ev(ts: u64, dur: u64, kind: EventKind, a: u64, b: u64) -> Event {
        Event { ts, dur, kind, a, b }
    }

    #[test]
    fn trace_document_is_valid_json_with_expected_phases() {
        let events = [
            ev(0, 0, EventKind::Dispatch, 1, 0),
            ev(5, 120, EventKind::FetchStall, 42, 2),
            ev(900, 0, EventKind::Retire, 5000, 900),
        ];
        let doc = chrome_trace("Auth-G", &events);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
        assert_eq!(
            v.get("otherData").unwrap().get("clock").unwrap().as_str(),
            Some("cycles")
        );
        let te = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata record + 3 events.
        assert_eq!(te.len(), 4);
        assert_eq!(te[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(te[1].get("name").unwrap().as_str(), Some("dispatch"));
        assert_eq!(te[1].get("ph").unwrap().as_str(), Some("i"));
        let stall = &te[2];
        assert_eq!(stall.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(stall.get("dur").unwrap().as_f64(), Some(120.0));
        assert_eq!(stall.get("args").unwrap().get("line").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            te[3].get("args").unwrap().get("instructions").unwrap().as_f64(),
            Some(5000.0)
        );
    }

    #[test]
    fn empty_trace_still_has_process_metadata() {
        let doc = chrome_trace("fn", &[]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
    }
}
