//! Unified observability for the lukewarm simulation stack.
//!
//! Everything the paper's argument rests on is a counter or a timeline:
//! Top-Down CPI stacks (Fig. 2), MPKI breakdowns (Fig. 5), prefetch
//! coverage (Fig. 11), DRAM traffic categories (Fig. 12). This crate is
//! the single layer those numbers flow through:
//!
//! * [`registry`] — a metrics [`registry::Registry`] of typed counters,
//!   gauges and log-bucketed histograms under hierarchical dotted names
//!   (`mem.l2.instr.misses`, `replay.dropped_prefetches`), snapshotable
//!   and diffable between invocations;
//! * [`events`] — a bounded, zero-allocation [`events::EventRing`]
//!   recording the invocation lifecycle (dispatch → fetch stalls →
//!   prefetch batches → fault draws → retire), with an `obs_disabled`
//!   feature that compiles recording out entirely;
//! * [`export`] — the [`export::Dataset`] table IR every experiment
//!   renders into, plus JSON and CSV writers;
//! * [`json`] — a dependency-free JSON writer *and* minimal parser (the
//!   build container has no `serde`), which doubles as the jq-free
//!   well-formedness checker used by CI and the golden tests;
//! * [`span`] — causal, hierarchical [`span::Span`] trees for sampled
//!   fleet invocations (route → admission → restore → execute →
//!   backoff), with exact tick-boundary critical paths;
//! * [`series`] — fixed-window simulated-time series
//!   ([`series::TimeWindows`]): per-window latency percentiles, shed
//!   rate, SLO burn and cold/luke/warm mix with an associative merge;
//! * [`trace`] — Chrome `trace_event` / Perfetto timeline output for a
//!   single traced invocation, plus span-tree flows
//!   ([`trace::chrome_trace_spans`]).
//!
//! The crate depends only on `luke-common`, so every simulator crate can
//! thread a registry through without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod export;
pub mod hist;
pub mod json;
pub mod registry;
pub mod series;
pub mod span;
pub mod trace;

pub use events::{Event, EventKind, EventRing};
pub use export::{Dataset, Export, Value};
pub use hist::Histogram;
pub use registry::{Registry, Snapshot};
pub use series::{StartClass, TimeWindows, WindowRow, WindowStats};
pub use span::{Span, SpanKind, SpanRing, SpanScope};
