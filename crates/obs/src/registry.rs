//! The metrics registry: typed counters, gauges and histograms under
//! hierarchical dotted names.
//!
//! A [`Registry`] is plumbed by value through the simulator — no globals,
//! no locks — and read out as a [`Snapshot`]: an immutable, diffable view
//! that serializes deterministically (names are `BTreeMap`-ordered, so
//! the same run produces byte-identical JSON/Prometheus/CSV output).

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json::{write_f64, write_str};

/// A mutable collection of named counters (`u64`), gauges (`f64`) and
/// log-bucketed [`Histogram`]s. Metrics are created on first touch.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if delta == 0 && self.counters.contains_key(name) {
            return;
        }
        *self
            .counters
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Increments the counter `name` by 1.
    pub fn counter_inc(&mut self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into the histogram `name` (creating it empty).
    pub fn hist_record(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Merges a whole [`Histogram`] into the histogram `name`
    /// (creating it empty). Lets a component that kept its own local
    /// histogram publish it without replaying every sample.
    pub fn hist_merge(&mut self, name: &str, hist: &Histogram) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Folds every metric of `other` into `self`: counters and
    /// histograms add, gauges add too. The additive gauge convention
    /// means merged gauges must be partitions of a whole (e.g. each
    /// shard's `pool.warm_instances` summing to the fleet total) —
    /// which is how every gauge in this workspace is used when
    /// registries are kept per shard. Merging per-shard registries in
    /// a fixed order yields the same snapshot as recording everything
    /// into one registry.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            self.counter_add(name, *v);
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, h) in &other.hists {
            self.hist_merge(name, h);
        }
    }

    /// Resets every metric (names are forgotten, not zeroed).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }

    /// An immutable point-in-time view of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }
}

/// Point-in-time view of a [`Registry`], diffable and exportable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Counter value at snapshot time (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value at snapshot time, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram at snapshot time, if present.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All gauge names in sorted order.
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// All histogram names in sorted order.
    pub fn hist_names(&self) -> impl Iterator<Item = &str> {
        self.hists.keys().map(String::as_str)
    }

    /// Difference `self - earlier`: counters subtract (saturating),
    /// gauges keep `self`'s values (they are levels, not rates), and
    /// histograms subtract bucket-wise.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, h)| match earlier.hists.get(k) {
                Some(e) => (k.clone(), h.delta(e)),
                None => (k.clone(), h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            hists,
        }
    }

    /// Deterministic JSON rendering:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,min,max,mean,p50,p90,p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.min().to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max().to_string());
            out.push_str(",\"mean\":");
            write_f64(&mut out, h.mean());
            out.push_str(",\"p50\":");
            out.push_str(&h.p50().to_string());
            out.push_str(",\"p90\":");
            out.push_str(&h.p90().to_string());
            out.push_str(",\"p99\":");
            out.push_str(&h.p99().to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition: dotted names become underscored (and
    /// any other character outside the metric-name alphabet
    /// `[a-zA-Z0-9_:]` is sanitized to `_`, with a leading digit
    /// prefixed), histograms expand to `_count`/`_sum`/quantile series.
    /// Label values (the quantile strings) go through
    /// [`escape_prometheus_label`], so the exposition stays parseable
    /// whatever names reach the registry.
    pub fn to_prometheus(&self) -> String {
        fn flat(name: &str) -> String {
            let mut out = String::with_capacity(name.len());
            for (i, c) in name.chars().enumerate() {
                let valid = c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (c.is_ascii_digit() && i > 0);
                if c.is_ascii_digit() && i == 0 {
                    // Metric names cannot start with a digit.
                    out.push('_');
                    out.push(c);
                } else if valid {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = flat(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = flat(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} "));
            if v.is_finite() {
                out.push_str(&format!("{v}\n"));
            } else {
                out.push_str("NaN\n");
            }
        }
        for (name, h) in &self.hists {
            let n = flat(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, val) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                let q = escape_prometheus_label(&q.to_string());
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {val}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
        }
        out
    }

    /// CSV rendering: `kind,name,field,value` rows in deterministic order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},value,{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{v}\n"));
        }
        for (name, h) in &self.hists {
            for (field, val) in [
                ("count", h.count()),
                ("min", h.min()),
                ("max", h.max()),
                ("p50", h.p50()),
                ("p90", h.p90()),
                ("p99", h.p99()),
            ] {
                out.push_str(&format!("histogram,{name},{field},{val}\n"));
            }
            out.push_str(&format!("histogram,{name},mean,{}\n", h.mean()));
        }
        out
    }
}

/// Escapes a string for use as a Prometheus label *value*: backslash,
/// double-quote and newline are the three characters the text
/// exposition format requires escaping inside `label="..."`.
pub fn escape_prometheus_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Registry {
        let mut reg = Registry::new();
        reg.counter_add("mem.l2.instr.misses", 42);
        reg.counter_inc("run.invocations");
        reg.gauge_set("run.cpi", 1.5);
        reg.hist_record("invocation.cycles", 1000);
        reg.hist_record("invocation.cycles", 2000);
        reg
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = sample();
        assert_eq!(reg.counter("mem.l2.instr.misses"), 42);
        assert_eq!(reg.counter("run.invocations"), 1);
        assert_eq!(reg.counter("never.touched"), 0);
        assert_eq!(reg.gauge("run.cpi"), Some(1.5));
        assert_eq!(reg.hist("invocation.cycles").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_hists() {
        let mut reg = sample();
        let before = reg.snapshot();
        reg.counter_add("mem.l2.instr.misses", 8);
        reg.hist_record("invocation.cycles", 3000);
        let d = reg.snapshot().diff(&before);
        assert_eq!(d.counter("mem.l2.instr.misses"), 8);
        assert_eq!(d.counter("run.invocations"), 0);
        assert_eq!(d.hist("invocation.cycles").unwrap().count(), 1);
    }

    #[test]
    fn merge_folds_counters_gauges_and_hists() {
        let mut a = Registry::new();
        a.counter_add("inv", 3);
        a.gauge_set("warm", 2.0);
        a.hist_record("lat", 10);
        let mut b = Registry::new();
        b.counter_add("inv", 4);
        b.counter_inc("only.b");
        b.gauge_set("warm", 5.0);
        b.hist_record("lat", 20);
        b.hist_record("other", 1);
        a.merge(&b);
        assert_eq!(a.counter("inv"), 7);
        assert_eq!(a.counter("only.b"), 1);
        assert_eq!(a.gauge("warm"), Some(7.0));
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert_eq!(a.hist("lat").unwrap().sum(), 30);
        assert_eq!(a.hist("other").unwrap().count(), 1);
    }

    #[test]
    fn sharded_merge_matches_single_registry() {
        // Record the same stream into one registry, and split across
        // two shards merged in order — snapshots must be identical.
        let mut whole = Registry::new();
        let mut s0 = Registry::new();
        let mut s1 = Registry::new();
        for i in 0..100u64 {
            whole.counter_inc("n");
            whole.hist_record("v", i);
            let shard = if i % 2 == 0 { &mut s0 } else { &mut s1 };
            shard.counter_inc("n");
            shard.hist_record("v", i);
        }
        let mut merged = Registry::new();
        merged.merge(&s0);
        merged.merge(&s1);
        assert_eq!(merged.snapshot().to_json(), whole.snapshot().to_json());
    }

    #[test]
    fn hist_merge_publishes_local_histogram() {
        let mut local = Histogram::new();
        local.record(5);
        local.record(9);
        let mut reg = Registry::new();
        reg.hist_record("lat", 1);
        reg.hist_merge("lat", &local);
        assert_eq!(reg.hist("lat").unwrap().count(), 3);
        assert_eq!(reg.hist("lat").unwrap().max(), 9);
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let a = sample().snapshot().to_json();
        let b = sample().snapshot().to_json();
        assert_eq!(a, b);
        let v = parse(&a).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("mem.l2.instr.misses").unwrap().as_f64(),
            Some(42.0)
        );
        let h = v.get("histograms").unwrap().get("invocation.cycles").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn prometheus_text_has_flat_names_and_quantiles() {
        let text = sample().snapshot().to_prometheus();
        assert!(text.contains("mem_l2_instr_misses 42"));
        assert!(text.contains("# TYPE run_cpi gauge"));
        assert!(text.contains("invocation_cycles{quantile=\"0.99\"}"));
        assert!(text.contains("invocation_cycles_count 2"));
    }

    #[test]
    fn prometheus_sanitizes_hostile_metric_names() {
        let mut reg = Registry::new();
        reg.counter_add("weird-name with spaces/and.slashes", 1);
        reg.counter_add("9starts.with.digit", 2);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("weird_name_with_spaces_and_slashes 1"));
        assert!(text.contains("_9starts_with_digit 2"));
        // Every exposition line is `# ...` or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_whitespace()
                        .next()
                        .is_some_and(|n| !n.contains(' ') && !n.contains('/')),
                "unparseable line: {line}"
            );
        }
    }

    #[test]
    fn label_escaping_covers_the_three_special_characters() {
        assert_eq!(escape_prometheus_label("plain"), "plain");
        assert_eq!(escape_prometheus_label("a\"b"), "a\\\"b");
        assert_eq!(escape_prometheus_label("a\\b"), "a\\\\b");
        assert_eq!(escape_prometheus_label("a\nb"), "a\\nb");
    }

    #[test]
    fn csv_has_header_and_all_metrics() {
        let csv = sample().snapshot().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,mem.l2.instr.misses,value,42\n"));
        assert!(csv.contains("gauge,run.cpi,value,1.5\n"));
        assert!(csv.contains("histogram,invocation.cycles,count,2\n"));
    }
}
