//! Fixed-window (simulated-time) series over invocation outcomes.
//!
//! End-of-run scalars hide the shape of a surge: a flash crowd that
//! sheds 40% of arrivals for 15 seconds and nothing afterwards averages
//! out to a small number. [`TimeWindows`] buckets every recorded
//! outcome into fixed windows of simulated time and reports, per
//! window, the latency percentiles, the shed rate, the SLO burn rate
//! and the cold/lukewarm/warm mix — a timeline instead of a scalar.
//!
//! The store is a `BTreeMap` keyed by window index with purely additive
//! per-window statistics, so [`TimeWindows::merge`] is associative and
//! commutative by construction: merging per-host series in any grouping
//! reproduces the series a single sequential recorder would have built,
//! which is what keeps the fleet's 1-vs-N-thread byte-identical export
//! contract intact. Empty windows report percentiles as `None` (JSON
//! `null`), never a fabricated zero.

use crate::hist::Histogram;
use std::collections::BTreeMap;

/// How an admitted invocation's instance was found (the cold/luke/warm
/// mix axis of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartClass {
    /// No instance: a cold start (snapshot restore or full boot).
    Cold,
    /// Warm instance whose cache state was perturbed by interleaved
    /// invocations — the paper's lukewarm case.
    Lukewarm,
    /// Warm instance, cache state intact.
    Warm,
}

/// Additive per-window statistics. Every field is a sum or a mergeable
/// histogram, so two `WindowStats` for the same window combine without
/// order sensitivity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Completed-invocation latencies (µs).
    pub latency_us: Histogram,
    /// Arrivals routed into this window (admitted or shed).
    pub arrivals: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Admitted invocations that ran cold.
    pub cold: u64,
    /// Admitted invocations that ran lukewarm.
    pub luke: u64,
    /// Admitted invocations that ran warm.
    pub warm: u64,
    /// Completed invocations whose latency exceeded the SLO.
    pub over_slo: u64,
}

impl WindowStats {
    fn merge(&mut self, other: &WindowStats) {
        self.latency_us.merge(&other.latency_us);
        self.arrivals += other.arrivals;
        self.shed += other.shed;
        self.cold += other.cold;
        self.luke += other.luke;
        self.warm += other.warm;
        self.over_slo += other.over_slo;
    }
}

/// One rendered row of the timeline (see [`TimeWindows::rows`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRow {
    /// Window start, in simulated milliseconds.
    pub start_ms: f64,
    /// Arrivals routed into the window.
    pub arrivals: u64,
    /// Median completed latency in ms (`None` when nothing completed).
    pub p50_ms: Option<f64>,
    /// P99 completed latency in ms (`None` when nothing completed).
    pub p99_ms: Option<f64>,
    /// Fraction of arrivals shed.
    pub shed_rate: f64,
    /// Fraction of completed invocations over the SLO (the burn rate).
    pub slo_burn: f64,
    /// Fraction of admitted invocations that ran cold.
    pub cold_frac: f64,
    /// Fraction of admitted invocations that ran lukewarm.
    pub luke_frac: f64,
    /// Fraction of admitted invocations that ran warm.
    pub warm_frac: f64,
}

/// A fixed-window series over simulated time (see module docs). A
/// `window_ms` of 0 disables recording entirely, making the series
/// bit-transparent when the feature is off.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeWindows {
    window_ms: f64,
    windows: BTreeMap<u64, WindowStats>,
}

impl TimeWindows {
    /// A series with the given window width in simulated milliseconds
    /// (0 disables recording).
    pub fn new(window_ms: f64) -> Self {
        TimeWindows {
            window_ms,
            windows: BTreeMap::new(),
        }
    }

    /// A series that records nothing.
    pub fn disabled() -> Self {
        TimeWindows::default()
    }

    /// Whether this series records anything.
    pub fn is_enabled(&self) -> bool {
        self.window_ms > 0.0
    }

    /// Configured window width (ms).
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window holds anything.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    fn index(&self, at_ms: f64) -> u64 {
        (at_ms / self.window_ms).floor().max(0.0) as u64
    }

    fn window(&mut self, at_ms: f64) -> &mut WindowStats {
        let idx = self.index(at_ms);
        self.windows.entry(idx).or_default()
    }

    /// Records one arrival (admitted or not) at simulated time `at_ms`.
    pub fn record_arrival(&mut self, at_ms: f64) {
        if !self.is_enabled() {
            return;
        }
        self.window(at_ms).arrivals += 1;
    }

    /// Records an arrival shed by admission control.
    pub fn record_shed(&mut self, at_ms: f64) {
        if !self.is_enabled() {
            return;
        }
        self.window(at_ms).shed += 1;
    }

    /// Records a completed invocation: its latency, start class and
    /// whether it blew the SLO. The outcome is attributed to the window
    /// of its *arrival* time, so merged series are insensitive to which
    /// host completed it.
    pub fn record_outcome(&mut self, at_ms: f64, latency_us: u64, class: StartClass, over_slo: bool) {
        if !self.is_enabled() {
            return;
        }
        let w = self.window(at_ms);
        w.latency_us.record(latency_us);
        match class {
            StartClass::Cold => w.cold += 1,
            StartClass::Lukewarm => w.luke += 1,
            StartClass::Warm => w.warm += 1,
        }
        if over_slo {
            w.over_slo += 1;
        }
    }

    /// Folds `other` into `self` window-by-window. Associative and
    /// commutative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)` for any grouping,
    /// because every per-window field is additive.
    ///
    /// # Panics
    ///
    /// Panics if the two series were built with different window widths
    /// (their indices would not be comparable).
    pub fn merge(&mut self, other: &TimeWindows) {
        if !other.is_enabled() {
            return;
        }
        if !self.is_enabled() {
            *self = other.clone();
            return;
        }
        assert!(
            self.window_ms == other.window_ms,
            "cannot merge series with window {}ms into {}ms",
            other.window_ms,
            self.window_ms
        );
        for (idx, stats) in &other.windows {
            self.windows.entry(*idx).or_default().merge(stats);
        }
    }

    /// The rendered timeline, one row per non-empty window in time
    /// order. Percentiles of windows where nothing completed are `None`.
    pub fn rows(&self) -> Vec<WindowRow> {
        let frac = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64
            }
        };
        self.windows
            .iter()
            .map(|(idx, w)| {
                let admitted = w.cold + w.luke + w.warm;
                let completed = w.latency_us.count();
                WindowRow {
                    start_ms: *idx as f64 * self.window_ms,
                    arrivals: w.arrivals,
                    p50_ms: w.latency_us.try_percentile(50.0).map(|us| us as f64 / 1000.0),
                    p99_ms: w.latency_us.try_percentile(99.0).map(|us| us as f64 / 1000.0),
                    shed_rate: frac(w.shed, w.arrivals),
                    slo_burn: frac(w.over_slo, completed),
                    cold_frac: frac(w.cold, admitted),
                    luke_frac: frac(w.luke, admitted),
                    warm_frac: frac(w.warm, admitted),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded(events: &[(f64, u64)]) -> TimeWindows {
        let mut s = TimeWindows::new(100.0);
        for &(at, lat) in events {
            s.record_arrival(at);
            s.record_outcome(at, lat, StartClass::Warm, lat > 150_000);
        }
        s
    }

    #[test]
    fn disabled_series_records_nothing() {
        let mut s = TimeWindows::disabled();
        s.record_arrival(10.0);
        s.record_shed(10.0);
        s.record_outcome(10.0, 5, StartClass::Cold, false);
        assert!(s.is_empty());
        assert!(!s.is_enabled());
        assert!(s.rows().is_empty());
    }

    #[test]
    fn outcomes_land_in_their_arrival_window() {
        let s = recorded(&[(0.0, 1000), (99.9, 2000), (100.0, 3000), (250.0, 4000)]);
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].start_ms, 0.0);
        assert_eq!(rows[0].arrivals, 2);
        assert_eq!(rows[1].start_ms, 100.0);
        assert_eq!(rows[2].start_ms, 200.0);
    }

    #[test]
    fn empty_window_percentiles_are_none_not_zero() {
        let mut s = TimeWindows::new(100.0);
        s.record_arrival(10.0);
        s.record_shed(10.0); // arrival shed: nothing completes
        let rows = s.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].p50_ms, None);
        assert_eq!(rows[0].p99_ms, None);
        assert_eq!(rows[0].shed_rate, 1.0);
        assert_eq!(rows[0].slo_burn, 0.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = recorded(&[(0.0, 1000), (150.0, 160_000)]);
        let b = recorded(&[(50.0, 2000), (950.0, 3000)]);
        let c = recorded(&[(120.0, 500)]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(ab_c, cba);
        assert_eq!(ab_c.rows(), a_bc.rows());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let events = [(0.0, 1000), (50.0, 2000), (150.0, 160_000), (950.0, 3000)];
        let whole = recorded(&events);
        let left = recorded(&events[..2]);
        let mut right = recorded(&events[2..]);
        right.merge(&left);
        assert_eq!(right, whole);
    }

    #[test]
    fn rates_and_mix_are_fractions() {
        let mut s = TimeWindows::new(1000.0);
        for i in 0..10 {
            s.record_arrival(i as f64);
        }
        s.record_shed(1.0);
        s.record_shed(2.0);
        s.record_outcome(3.0, 10_000, StartClass::Cold, false);
        s.record_outcome(4.0, 20_000, StartClass::Lukewarm, false);
        s.record_outcome(5.0, 200_000, StartClass::Warm, true);
        s.record_outcome(6.0, 30_000, StartClass::Warm, false);
        let rows = s.rows();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.arrivals, 10);
        assert!((r.shed_rate - 0.2).abs() < 1e-12);
        assert!((r.slo_burn - 0.25).abs() < 1e-12);
        assert!((r.cold_frac - 0.25).abs() < 1e-12);
        assert!((r.luke_frac - 0.25).abs() < 1e-12);
        assert!((r.warm_frac - 0.5).abs() < 1e-12);
        assert!(r.p50_ms.is_some() && r.p99_ms.is_some());
    }

    #[test]
    fn merging_into_disabled_adopts_the_other_series() {
        let a = recorded(&[(0.0, 1000)]);
        let mut d = TimeWindows::disabled();
        d.merge(&a);
        assert_eq!(d, a);
        let mut a2 = a.clone();
        a2.merge(&TimeWindows::disabled());
        assert_eq!(a2, a);
    }
}
