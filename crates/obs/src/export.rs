//! Machine-readable experiment export: the [`Dataset`] table IR and the
//! JSON/CSV writers over it.
//!
//! Every experiment keeps its human-facing `Display` impl untouched (so
//! `--emit table` is byte-identical to historic output) and additionally
//! implements [`Export`], describing the same numbers as one or more
//! [`Dataset`]s of typed [`Value`] cells. The CLI then renders whichever
//! format was requested from the same data.

use crate::json::{write_f64, write_str};

/// One typed cell in a [`Dataset`] row.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string cell (function names, config labels).
    Str(String),
    /// An unsigned counter (cycle counts can exceed `i64`).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point measurement.
    Float(f64),
}

impl Value {
    /// Builds a string cell.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_str(out, s),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => write_f64(out, *v),
        }
    }

    fn write_csv(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                if s.contains(',') || s.contains('"') || s.contains('\n') {
                    out.push('"');
                    out.push_str(&s.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(s);
                }
            }
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                }
                // Non-finite floats leave the cell empty (CSV has no null).
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A named table of typed rows — the intermediate representation every
/// experiment's results export through.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Dataset name (e.g. `"fig10.speedup"`).
    pub name: String,
    /// Column headers, one per cell of each row.
    pub columns: Vec<String>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Dataset {
    /// An empty dataset with the given name and column headers.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Dataset {
        Dataset {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "dataset {:?}: row has {} cells, expected {}",
            self.name,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }
}

/// Implemented by every experiment result that can export its numbers.
pub trait Export {
    /// The result rendered as one or more typed datasets. Columns must
    /// cover at least what the `Display` table shows.
    fn datasets(&self) -> Vec<Dataset>;
}

/// Serializes datasets as
/// `{"datasets":[{"name":..,"columns":[..],"rows":[[..]]}]}`.
pub fn to_json(datasets: &[Dataset]) -> String {
    let mut out = String::from("{\"datasets\":[");
    for (i, ds) in datasets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_str(&mut out, &ds.name);
        out.push_str(",\"columns\":[");
        for (j, col) in ds.columns.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_str(&mut out, col);
        }
        out.push_str("],\"rows\":[");
        for (j, row) in ds.rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            for (k, cell) in row.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                cell.write_json(&mut out);
            }
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Serializes datasets as CSV: each dataset is a `# <name>` comment line,
/// a header row, then data rows; datasets are separated by a blank line.
pub fn to_csv(datasets: &[Dataset]) -> String {
    let mut out = String::new();
    for (i, ds) in datasets.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("# ");
        out.push_str(&ds.name);
        out.push('\n');
        out.push_str(&ds.columns.join(","));
        out.push('\n');
        for row in &ds.rows {
            for (k, cell) in row.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                cell.write_csv(&mut out);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Vec<Dataset> {
        let mut ds = Dataset::new("fig10.speedup", &["function", "jukebox", "cycles"]);
        ds.push_row(vec!["Auth-G".into(), Value::Float(1.25), Value::UInt(123456)]);
        ds.push_row(vec![Value::str("GEOMEAN"), Value::Float(f64::NAN), 0u64.into()]);
        vec![ds]
    }

    #[test]
    fn json_export_parses_and_keeps_columns() {
        let json = to_json(&sample());
        let v = parse(&json).unwrap();
        let ds = &v.get("datasets").unwrap().as_arr().unwrap()[0];
        assert_eq!(ds.get("name").unwrap().as_str(), Some("fig10.speedup"));
        let cols = ds.get("columns").unwrap().as_arr().unwrap();
        assert_eq!(cols.len(), 3);
        let rows = ds.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[0].as_str(), Some("Auth-G"));
        // NaN must serialize as null, not break the document.
        assert_eq!(rows[1].as_arr().unwrap()[1], crate::json::JsonValue::Null);
    }

    #[test]
    fn csv_export_has_sections_and_quoting() {
        let mut ds = Dataset::new("t", &["a", "b"]);
        ds.push_row(vec![Value::str("x,y"), Value::str("say \"hi\"")]);
        let csv = to_csv(&[ds]);
        assert_eq!(csv, "# t\na,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_width_panics() {
        let mut ds = Dataset::new("t", &["a", "b"]);
        ds.push_row(vec![Value::UInt(1)]);
    }
}
