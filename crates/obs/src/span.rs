//! Causal, hierarchical spans for the fleet invocation path.
//!
//! Where [`crate::events`] records flat lifecycle points, a [`Span`]
//! carries a *trace identity* and a *parent*, so one sampled invocation
//! reconstructs as a tree: root invocation span, with children for the
//! routing decision, down-host reconnect backoffs, the admission
//! verdict, each retry attempt's snapshot restore / execution, and the
//! inter-attempt backoffs. Spans are small `Copy` records in a bounded
//! [`SpanRing`] (same overwrite-oldest / capacity-0-disabled contract as
//! [`crate::events::EventRing`]), and recording compiles out entirely
//! under the `obs_disabled` feature.
//!
//! ## Determinism and exact critical paths
//!
//! All span times are **relative to the invocation's own start** and
//! recorded at *cumulative-offset tick boundaries*: a child covering the
//! invocation's `[from_ms, to_ms)` window gets `start_us = tick(from)`
//! and `dur_us = tick(to) - tick(from)` where `tick(x) = round(x*1000)`.
//! Because the boundaries telescope, the child durations of a root sum
//! to *exactly* the root's own `dur_us` — which is the same rounding the
//! fleet latency histogram applies — so critical-path attribution is
//! exact for every sampled invocation, not approximately so.
//!
//! Trace identities derive from the dispatch index
//! ([`trace_id`]): each hedge copy gets its own lane, so a hedged pair
//! is two trees linked by a Chrome flow event (see
//! [`crate::trace::chrome_trace_spans`]).

/// The fleet hop a [`Span`] covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Root span: one invocation end-to-end on one host (one lane of a
    /// hedged pair). `a` = host id, `b` = arrival time in µs since the
    /// run began (for absolute timeline layout).
    Invocation = 0,
    /// The router's placement decision. `a` = chosen host, `b` = 1 when
    /// the breaker walk failed the invocation over from its preferred
    /// host.
    Route = 1,
    /// A hedged duplicate was dispatched. `a` = primary host, `b` =
    /// hedge host.
    Hedge = 2,
    /// A reconnect backoff against a crashed (down) host. `a` = retry
    /// index, `b` = 1 when the wait ended in abandonment.
    Reconnect = 3,
    /// The admission ladder's verdict. `a` = verdict (0 admit,
    /// 1 admit-degraded, 2 shed), `b` = 0.
    Admission = 4,
    /// A snapshot restore / instance spawn for one attempt. `a` =
    /// attempt index, `b` = 1 when the restore was degraded to lazy
    /// paging or failed.
    Restore = 5,
    /// Function execution for one attempt. `a` = attempt index, `b` =
    /// outcome (0 completed, 1 crashed mid-run, 2 timed out).
    Execute = 6,
    /// Inter-attempt retry backoff. `a` = attempt index, `b` = 0.
    Backoff = 7,
}

/// Every span kind, in discriminant order.
pub const SPAN_KINDS: [SpanKind; 8] = [
    SpanKind::Invocation,
    SpanKind::Route,
    SpanKind::Hedge,
    SpanKind::Reconnect,
    SpanKind::Admission,
    SpanKind::Restore,
    SpanKind::Execute,
    SpanKind::Backoff,
];

impl SpanKind {
    /// Stable lowercase label (used by the exporters and the CLI
    /// waterfall).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Invocation => "invocation",
            SpanKind::Route => "route",
            SpanKind::Hedge => "hedge",
            SpanKind::Reconnect => "reconnect",
            SpanKind::Admission => "admission",
            SpanKind::Restore => "restore",
            SpanKind::Execute => "execute",
            SpanKind::Backoff => "backoff",
        }
    }

    /// The kind with discriminant `index`, if any (inverse of `as u8`;
    /// used when reconstructing spans from exported rows).
    pub fn from_index(index: u64) -> Option<SpanKind> {
        SPAN_KINDS.get(index as usize).copied()
    }
}

/// The trace lane for one dispatched copy of an invocation: each hedge
/// copy of a dispatch gets its own root span on its own lane, so the
/// pair never shares a span tree. [`dispatch_of`] inverts this; Chrome
/// flow events pair the lanes back up by dispatch index.
pub fn trace_id(dispatch: u64, hedge: bool) -> u64 {
    dispatch * 2 + u64::from(hedge)
}

/// The dispatch index a trace lane belongs to.
pub fn dispatch_of(trace: u64) -> u64 {
    trace / 2
}

/// Whether a trace lane is the hedged duplicate of its dispatch.
pub fn is_hedge_lane(trace: u64) -> bool {
    trace % 2 == 1
}

/// The tick boundary for a relative time in milliseconds: microseconds,
/// rounded exactly the way the fleet latency histogram rounds recorded
/// latencies. All span starts and ends land on tick boundaries so
/// sibling durations telescope without rounding drift.
pub fn tick_us(at_ms: f64) -> u64 {
    (at_ms * 1000.0).round() as u64
}

/// One hop of a sampled invocation. `Copy` and fixed-size so recording
/// in the fleet's hot loop never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Trace lane ([`trace_id`]) this span belongs to.
    pub trace: u64,
    /// Span id, unique within the trace. The root is always id 0;
    /// route-phase spans use ids 1–3; host-side children count up
    /// from 4.
    pub id: u32,
    /// Parent span id (the root points at itself).
    pub parent: u32,
    /// What this hop is.
    pub kind: SpanKind,
    /// Start tick in µs *relative to the invocation's start*.
    pub start_us: u64,
    /// Duration in µs (0 for instantaneous verdicts).
    pub dur_us: u64,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word (meaning depends on `kind`).
    pub b: u64,
}

/// A bounded ring buffer of [`Span`]s that overwrites the oldest entry
/// once full. Capacity 0 (the default) disables recording entirely, and
/// the `obs_disabled` feature compiles [`SpanRing::record`] down to an
/// empty inline function.
#[derive(Clone, Debug, Default)]
pub struct SpanRing {
    buf: Vec<Span>,
    cap: usize,
    head: usize,
    total: u64,
}

impl SpanRing {
    /// A ring that keeps the most recent `capacity` spans. The buffer
    /// grows lazily as spans arrive, so a generous capacity bound costs
    /// nothing until sampling actually records.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRing {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            total: 0,
        }
    }

    /// A ring that records nothing (capacity 0).
    pub fn disabled() -> Self {
        SpanRing::default()
    }

    /// Whether this ring records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0 && cfg!(not(feature = "obs_disabled"))
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total spans ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Records a span (no-op when capacity is 0 or the crate is built
    /// with the `obs_disabled` feature).
    #[cfg(not(feature = "obs_disabled"))]
    #[inline]
    pub fn record(&mut self, span: Span) {
        if self.cap == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Compiled-out recording stub (`obs_disabled` build).
    #[cfg(feature = "obs_disabled")]
    #[inline(always)]
    pub fn record(&mut self, _span: Span) {}

    /// Replays every span held by `other` (oldest first) into this ring,
    /// subject to this ring's own capacity and overwrite policy. Used to
    /// merge per-host rings in host-id order after a parallel fleet run.
    pub fn extend_from(&mut self, other: &SpanRing) {
        for span in other.spans() {
            self.record(span);
        }
    }

    /// Discards all held spans (capacity is retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }

    /// The held spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap && self.cap > 0 {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// Drains the held spans (oldest first), leaving the ring empty.
    pub fn take_spans(&mut self) -> Vec<Span> {
        let out = self.spans();
        self.clear();
        out
    }
}

/// A recording cursor for one sampled invocation on one trace lane:
/// hands out child span ids, anchors relative time at the invocation's
/// start, and records into a borrowed [`SpanRing`]. All methods are
/// no-ops against a disabled ring, so the hot path stays branch-cheap
/// when sampling is off.
#[derive(Debug)]
pub struct SpanScope<'a> {
    ring: &'a mut SpanRing,
    trace: u64,
    next_id: u32,
    /// Parent id children attach to (the root span, id 0).
    parent: u32,
}

impl<'a> SpanScope<'a> {
    /// A scope for trace lane `trace`, with host-side child ids starting
    /// at `first_id` (route-phase spans own the ids below it).
    pub fn new(ring: &'a mut SpanRing, trace: u64, first_id: u32) -> Self {
        SpanScope {
            ring,
            trace,
            next_id: first_id,
            parent: 0,
        }
    }

    /// Whether this scope actually records (sampled invocation, ring
    /// enabled).
    pub fn is_enabled(&self) -> bool {
        self.ring.is_enabled()
    }

    /// The trace lane this scope records onto.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Records a child span covering the invocation-relative window
    /// `[from_ms, to_ms)`, at tick boundaries so siblings telescope.
    pub fn child(&mut self, kind: SpanKind, from_ms: f64, to_ms: f64, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        let start_us = tick_us(from_ms);
        let end_us = tick_us(to_ms);
        let id = self.next_id;
        self.next_id += 1;
        self.ring.record(Span {
            trace: self.trace,
            id,
            parent: self.parent,
            kind,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            a,
            b,
        });
    }

    /// Records an instantaneous child span at `at_ms`.
    pub fn instant(&mut self, kind: SpanKind, at_ms: f64, a: u64, b: u64) {
        self.child(kind, at_ms, at_ms, a, b);
    }

    /// Records the root invocation span: start 0, duration `total_ms`
    /// ticked with the same rounding the latency histogram applies, so
    /// the root duration equals the recorded latency exactly.
    pub fn root(&mut self, total_ms: f64, host: u64, arrival_us: u64) {
        if !self.is_enabled() {
            return;
        }
        self.ring.record(Span {
            trace: self.trace,
            id: 0,
            parent: 0,
            kind: SpanKind::Invocation,
            start_us: 0,
            dur_us: tick_us(total_ms),
            a: host,
            b: arrival_us,
        });
    }
}

/// Orders spans canonically (by trace lane, then span id) so a merge
/// from any sharding reproduces the same byte sequence.
pub fn sort_canonical(spans: &mut [Span]) {
    spans.sort_by_key(|s| (s.trace, s.id));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u32) -> Span {
        Span {
            trace,
            id,
            parent: 0,
            kind: SpanKind::Execute,
            start_us: 0,
            dur_us: 1,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn trace_lanes_are_invertible() {
        for dispatch in [0u64, 1, 7, 1 << 40] {
            for hedge in [false, true] {
                let t = trace_id(dispatch, hedge);
                assert_eq!(dispatch_of(t), dispatch);
                assert_eq!(is_hedge_lane(t), hedge);
            }
        }
    }

    #[test]
    fn tick_boundaries_telescope() {
        // Sibling windows [a,b) and [b,c) share the boundary tick(b), so
        // their durations sum to tick(c) - tick(a) for any float inputs.
        let (a, b, c) = (0.0, 0.1234567, 9.87654);
        let first = tick_us(b) - tick_us(a);
        let second = tick_us(c) - tick_us(b);
        assert_eq!(first + second, tick_us(c) - tick_us(a));
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = SpanRing::disabled();
        ring.record(span(0, 1));
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
        let mut scope = SpanScope::new(&mut ring, 4, 4);
        scope.child(SpanKind::Execute, 0.0, 1.0, 0, 0);
        scope.root(1.0, 0, 0);
        assert!(!scope.is_enabled());
        assert!(ring.is_empty());
    }

    #[cfg(not(feature = "obs_disabled"))]
    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = SpanRing::with_capacity(3);
        for id in 0..5 {
            ring.record(span(0, id));
        }
        let held: Vec<u32> = ring.spans().iter().map(|s| s.id).collect();
        assert_eq!(held, vec![2, 3, 4]);
        assert_eq!(ring.total_recorded(), 5);
    }

    #[cfg(not(feature = "obs_disabled"))]
    #[test]
    fn scope_assigns_increasing_ids_and_exact_root() {
        let mut ring = SpanRing::with_capacity(16);
        let mut scope = SpanScope::new(&mut ring, 6, 4);
        scope.child(SpanKind::Restore, 0.0, 2.5, 0, 0);
        scope.child(SpanKind::Execute, 2.5, 7.75, 0, 0);
        scope.instant(SpanKind::Admission, 0.0, 0, 0);
        scope.root(7.75, 3, 123);
        let spans = ring.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].id, 4);
        assert_eq!(spans[1].id, 5);
        assert_eq!(spans[2].id, 6);
        assert_eq!(spans[2].dur_us, 0);
        let root = spans[3];
        assert_eq!(root.id, 0);
        assert_eq!(root.kind, SpanKind::Invocation);
        assert_eq!(root.dur_us, 7750);
        // The durational children telescope to exactly the root.
        let sum: u64 = spans[..2].iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, root.dur_us);
    }

    #[cfg(not(feature = "obs_disabled"))]
    #[test]
    fn extend_from_and_canonical_sort_are_schedule_independent() {
        let mut a = SpanRing::with_capacity(8);
        a.record(span(2, 0));
        a.record(span(2, 4));
        let mut b = SpanRing::with_capacity(8);
        b.record(span(0, 0));
        let mut merged_ab = SpanRing::with_capacity(8);
        merged_ab.extend_from(&a);
        merged_ab.extend_from(&b);
        let mut merged_ba = SpanRing::with_capacity(8);
        merged_ba.extend_from(&b);
        merged_ba.extend_from(&a);
        let mut left = merged_ab.spans();
        let mut right = merged_ba.spans();
        sort_canonical(&mut left);
        sort_canonical(&mut right);
        assert_eq!(left, right);
        assert_eq!(left[0].trace, 0);
        assert_eq!(left[1].trace, 2);
    }

    #[cfg(feature = "obs_disabled")]
    #[test]
    fn obs_disabled_compiles_recording_out() {
        let mut ring = SpanRing::with_capacity(8);
        ring.record(span(0, 0));
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
    }

    #[test]
    fn labels_and_indices_round_trip() {
        for (i, kind) in SPAN_KINDS.iter().enumerate() {
            assert_eq!(SpanKind::from_index(i as u64), Some(*kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(SpanKind::from_index(99), None);
    }
}
