//! Bounded, zero-allocation event tracing for the invocation lifecycle.
//!
//! Each [`Event`] is a small `Copy` struct; the [`EventRing`] is a fixed
//! capacity overwrite-oldest buffer allocated once up front, so recording
//! in the simulator's hot loops never allocates. A ring constructed with
//! [`EventRing::disabled`] (capacity 0) makes [`EventRing::record`] an
//! early-return; building the crate with the `obs_disabled` feature
//! compiles recording out entirely.

/// The lifecycle stage an [`Event`] marks.
///
/// The `a`/`b` payload fields of the event are interpreted per kind; see
/// each variant's docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An invocation was dispatched to a core. `a` = invocation index,
    /// `b` = 0.
    Dispatch = 0,
    /// The front-end stalled waiting on an instruction line. `dur` is the
    /// exposed stall in cycles, `a` = physical line number, `b` = hit
    /// level (0 = L1, 1 = L2, 2 = LLC, 3 = memory).
    FetchStall = 1,
    /// A prefetcher issued a batch of lines at dispatch. `a` = lines
    /// issued, `b` = redundant (already-cached) issues.
    PrefetchBatch = 2,
    /// The fault model drew a fault for an attempt. `a` = fault-kind
    /// index, `b` = attempt number.
    FaultDraw = 3,
    /// The invocation retired. `a` = instructions retired, `b` = cycles.
    Retire = 4,
}

impl EventKind {
    /// Stable lowercase label (used by the Chrome-trace exporter).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Dispatch => "dispatch",
            EventKind::FetchStall => "fetch_stall",
            EventKind::PrefetchBatch => "prefetch_batch",
            EventKind::FaultDraw => "fault_draw",
            EventKind::Retire => "retire",
        }
    }
}

/// One lifecycle event. `Copy` and fixed-size so the ring never allocates
/// while recording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in core cycles (or microseconds for server-level events).
    pub ts: u64,
    /// Duration in the same unit; 0 for instantaneous events.
    pub dur: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word (meaning depends on `kind`).
    pub b: u64,
}

/// A bounded ring buffer of [`Event`]s that overwrites the oldest entry
/// once full. Capacity 0 (the default) disables recording entirely.
#[derive(Clone, Debug, Default)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    head: usize,
    total: u64,
}

impl EventRing {
    /// A ring that keeps the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            total: 0,
        }
    }

    /// A ring that records nothing (capacity 0).
    pub fn disabled() -> Self {
        EventRing::default()
    }

    /// Whether this ring records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0 && cfg!(not(feature = "obs_disabled"))
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Records an event (no-op when capacity is 0 or the crate is built
    /// with the `obs_disabled` feature).
    #[cfg(not(feature = "obs_disabled"))]
    #[inline]
    pub fn record(&mut self, event: Event) {
        if self.cap == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Compiled-out recording stub (`obs_disabled` build).
    #[cfg(feature = "obs_disabled")]
    #[inline(always)]
    pub fn record(&mut self, _event: Event) {}

    /// Replays every event held by `other` (oldest first) into this
    /// ring, subject to this ring's own capacity and overwrite policy.
    /// Used to merge per-shard rings in shard-index order after a
    /// parallel fleet run.
    pub fn extend_from(&mut self, other: &EventRing) {
        for event in other.events() {
            self.record(event);
        }
    }

    /// Discards all held events (capacity is retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap && self.cap > 0 {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// Drains the held events (oldest first), leaving the ring empty.
    pub fn take_events(&mut self) -> Vec<Event> {
        let out = self.events();
        self.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind) -> Event {
        Event {
            ts,
            dur: 0,
            kind,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = EventRing::disabled();
        ring.record(ev(1, EventKind::Dispatch));
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
        assert_eq!(ring.total_recorded(), 0);
    }

    #[cfg(not(feature = "obs_disabled"))]
    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = EventRing::with_capacity(3);
        for ts in 0..5 {
            ring.record(ev(ts, EventKind::FetchStall));
        }
        let held: Vec<u64> = ring.events().iter().map(|e| e.ts).collect();
        assert_eq!(held, vec![2, 3, 4]);
        assert_eq!(ring.total_recorded(), 5);
        assert_eq!(ring.len(), 3);
    }

    #[cfg(not(feature = "obs_disabled"))]
    #[test]
    fn events_come_back_oldest_first_before_wrap() {
        let mut ring = EventRing::with_capacity(8);
        ring.record(ev(10, EventKind::Dispatch));
        ring.record(ev(20, EventKind::Retire));
        let held = ring.take_events();
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].ts, 10);
        assert_eq!(held[1].ts, 20);
        assert!(ring.is_empty());
    }

    #[cfg(not(feature = "obs_disabled"))]
    #[test]
    fn extend_from_replays_in_order_and_respects_capacity() {
        let mut a = EventRing::with_capacity(4);
        a.record(ev(1, EventKind::Dispatch));
        a.record(ev(2, EventKind::Retire));
        let mut b = EventRing::with_capacity(4);
        b.record(ev(3, EventKind::Dispatch));
        b.record(ev(4, EventKind::Retire));
        b.record(ev(5, EventKind::Retire));
        a.extend_from(&b);
        let held: Vec<u64> = a.events().iter().map(|e| e.ts).collect();
        // Capacity 4: oldest event (ts=1) was overwritten.
        assert_eq!(held, vec![2, 3, 4, 5]);
        assert_eq!(a.total_recorded(), 5);
        // Extending from an empty ring changes nothing.
        a.extend_from(&EventRing::disabled());
        assert_eq!(a.len(), 4);
    }

    #[cfg(feature = "obs_disabled")]
    #[test]
    fn obs_disabled_compiles_recording_out() {
        let mut ring = EventRing::with_capacity(8);
        ring.record(ev(1, EventKind::Dispatch));
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::Dispatch.label(), "dispatch");
        assert_eq!(EventKind::FetchStall.label(), "fetch_stall");
        assert_eq!(EventKind::PrefetchBatch.label(), "prefetch_batch");
        assert_eq!(EventKind::FaultDraw.label(), "fault_draw");
        assert_eq!(EventKind::Retire.label(), "retire");
    }
}
