//! Dependency-free JSON writing helpers and a minimal parser.
//!
//! The build container carries no `serde`, so exporters in this crate
//! assemble JSON by hand through these helpers, and tests/CI validate the
//! output with [`parse`] — a small recursive-descent parser that accepts
//! exactly the JSON this crate (and standard tools) produce. Numbers are
//! parsed as `f64`; that is sufficient for checking well-formedness and
//! for the golden-file round-trip tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` to `out`; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Integral value: avoid "1.0000000000000002"-style noise and
            // keep output byte-stable across runs.
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{}", v);
        }
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (keys sorted — duplicate keys keep the last value).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object member named `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise until the next ASCII quote/backslash).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn writer_maps_nonfinite_to_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(' ');
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn writer_keeps_integral_floats_stable() {
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn round_trips_writer_output() {
        let mut out = String::new();
        out.push('{');
        write_str(&mut out, "name");
        out.push(':');
        write_str(&mut out, "weird \"quotes\"\tand tabs");
        out.push(',');
        write_str(&mut out, "v");
        out.push(':');
        write_f64(&mut out, 1.25);
        out.push('}');
        let v = parse(&out).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("weird \"quotes\"\tand tabs"));
        assert_eq!(v.get("v").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }
}
