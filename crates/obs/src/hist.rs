//! Log-bucketed (HDR-style) histograms for latency and size samples.
//!
//! Values below [`LINEAR_CUTOFF`] each get their own bucket (exact
//! resolution where cycle counts are small); above it, every power-of-two
//! octave is split into [`SUBS_PER_OCTAVE`] sub-buckets, bounding relative
//! error at ~25% while covering the full `u64` range in a few hundred
//! buckets. Percentiles are extracted by bucket walk and reported as the
//! bucket's inclusive upper bound, so `P99 >= actual P99` always holds.

/// Values below this get one bucket each (exact).
pub const LINEAR_CUTOFF: u64 = 32;

/// Sub-buckets per power-of-two octave above the linear region.
pub const SUBS_PER_OCTAVE: usize = 4;

const SUB_BITS: u32 = 2; // log2(SUBS_PER_OCTAVE)
const FIRST_OCTAVE_MSB: u32 = 5; // log2(LINEAR_CUTOFF)
const OCTAVES: usize = (64 - FIRST_OCTAVE_MSB) as usize;

/// Total bucket count.
pub const BUCKETS: usize = LINEAR_CUTOFF as usize + OCTAVES * SUBS_PER_OCTAVE;

/// The bucket index a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let sub = ((value >> (msb - SUB_BITS)) & (SUBS_PER_OCTAVE as u64 - 1)) as usize;
    LINEAR_CUTOFF as usize + (msb - FIRST_OCTAVE_MSB) as usize * SUBS_PER_OCTAVE + sub
}

/// The half-open value range `[lo, hi)` bucket `index` covers.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < LINEAR_CUTOFF as usize {
        return (index as u64, index as u64 + 1);
    }
    let rel = index - LINEAR_CUTOFF as usize;
    let msb = FIRST_OCTAVE_MSB + (rel / SUBS_PER_OCTAVE) as u32;
    let sub = (rel % SUBS_PER_OCTAVE) as u64;
    let width = 1u64 << (msb - SUB_BITS);
    let lo = (1u64 << msb) + sub * width;
    // The top sub-bucket of the top octave ends at u64::MAX (the
    // exclusive bound would overflow; the histogram treats it as
    // inclusive of u64::MAX).
    let hi = lo.saturating_add(width);
    (lo, hi)
}

/// A log-bucketed histogram of `u64` samples (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of bucket `index` (for tests and exporters).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the
    /// inclusive upper bound of the bucket holding that rank, clamped to
    /// the recorded maximum. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.try_percentile(p).unwrap_or(0)
    }

    /// Nearest-rank percentile like [`Histogram::percentile`], but an
    /// empty histogram answers `None` instead of a fabricated 0 — the
    /// form windowed time-series use, where an empty window must render
    /// as missing data rather than a zero-latency claim.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn try_percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return Some((hi - 1).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median sample (see [`Histogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th-percentile sample.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th-percentile sample.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Folds `other` into `self` bucket-wise: counts and sums add
    /// (saturating), extremes combine. Merging histograms recorded on
    /// disjoint shards is exactly equivalent to recording every sample
    /// into one histogram, in any order — the property the fleet
    /// simulator's deterministic parallel merge relies on.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier` (saturating). `min`/`max`
    /// are kept from `self`: extremes are not invertible from deltas.
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let counts = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        Histogram {
            counts,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v + 1));
        }
    }

    #[test]
    fn every_value_falls_in_its_bucket() {
        for &v in &[0, 1, 31, 32, 33, 47, 48, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v, "{v}: lo {lo}");
            assert!(v < hi || hi == u64::MAX, "{v}: hi {hi}");
        }
    }

    #[test]
    fn bounds_are_contiguous_and_monotone() {
        let mut prev_hi = 0;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi, "bucket {i} must start where {} ended", i - 1);
            assert!(hi > lo, "bucket {i} must be non-empty");
            prev_hi = hi;
            if hi == u64::MAX {
                break;
            }
        }
    }

    #[test]
    fn percentiles_of_identical_small_values_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7);
        }
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p99(), 7);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn percentile_orders_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.p50() >= 450 && h.p50() <= 600, "p50 {}", h.p50());
        assert!(h.p99() >= 950, "p99 {}", h.p99());
        assert!(h.p99() <= h.max());
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        // The Option form distinguishes "empty" from "all zeros".
        assert_eq!(h.try_percentile(50.0), None);
        assert_eq!(h.try_percentile(99.0), None);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let samples = [1u64, 7, 31, 32, 700, 5000, 1 << 30];
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn delta_subtracts_counts() {
        let mut h = Histogram::new();
        h.record(5);
        let snap = h.clone();
        h.record(5);
        h.record(700);
        let d = h.delta(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.bucket_count(bucket_index(5)), 1);
        assert_eq!(d.bucket_count(bucket_index(700)), 1);
    }
}
