//! Wall-clock breakdown of the fleet pipeline's stages, for tuning the
//! event-driven hot path: arrival generation alone, generation plus
//! routing, and the full `run_fleet` at 1 thread.
//!
//! ```text
//! cargo run --release -p luke-fleet --example pipeline_profile
//! ```

use luke_fleet::{run_fleet, ArrivalStream, FleetConfig, Population, Router, ServiceModel};
use std::time::Instant;
use workloads::paper_suite;

fn main() {
    let hosts = 16;
    let config = FleetConfig {
        hosts,
        invocations: hosts * 200_000,
        ..FleetConfig::default()
    };
    let model = ServiceModel::analytic(&paper_suite()).expect("paper suite is valid");
    let n = config.invocations;

    let population = Population::synthesize(&config);
    let mut stream = ArrivalStream::synthesize(&config, &population).expect("stream");
    let start = Instant::now();
    let mut sum = 0.0;
    for event in stream.by_ref().take(n) {
        sum += event.at_ms;
    }
    let gen_s = start.elapsed().as_secs_f64();
    println!(
        "generate only:      {gen_s:.3}s  ({:.0} ev/s, checksum {sum:.0})",
        n as f64 / gen_s
    );

    let mut stream = ArrivalStream::synthesize(&config, &population).expect("stream");
    let mut router = Router::new(config.policy, config.hosts);
    let warm_ms: Vec<f64> = (0..model.functions())
        .map(|p| model.timing(p).warm_ms)
        .collect();
    let start = Instant::now();
    let mut routed = 0usize;
    for event in stream.by_ref().take(n) {
        routed += router.route(event.instance, warm_ms[event.instance % warm_ms.len()]);
    }
    let route_s = start.elapsed().as_secs_f64();
    println!(
        "generate + route:   {route_s:.3}s  ({:.0} ev/s, checksum {routed})",
        n as f64 / route_s
    );

    let start = Instant::now();
    let run = run_fleet(&config, &model, false).expect("run");
    let full_s = start.elapsed().as_secs_f64();
    println!(
        "run_fleet 1 thread: {full_s:.3}s  ({:.0} inv/s, {} cold starts)",
        n as f64 / full_s,
        run.cold_starts
    );
    println!(
        "breakdown: generate {:.0}%, route {:.0}%, process+merge {:.0}%",
        100.0 * gen_s / full_s,
        100.0 * (route_s - gen_s) / full_s,
        100.0 * (full_s - route_s) / full_s
    );

    // Fixed per-run overhead: a run with almost no invocations isolates
    // population synthesis, host construction, and the merge phase.
    let tiny = FleetConfig {
        invocations: 16,
        ..config.clone()
    };
    let start = Instant::now();
    let _ = run_fleet(&tiny, &model, false).expect("tiny run");
    println!("fixed overhead (16 invocations): {:.1}ms", start.elapsed().as_secs_f64() * 1e3);

    // Quick-scale shape: the CI bench point (16 hosts × 5,000 inv/host).
    let quick = FleetConfig {
        invocations: 16 * 5_000,
        ..config.clone()
    };
    for _ in 0..2 {
        let start = Instant::now();
        let run = run_fleet(&quick, &model, false).expect("quick run");
        let s = start.elapsed().as_secs_f64();
        println!(
            "quick scale 1 thread: {:.1}ms ({:.0} inv/s)",
            s * 1e3,
            run.invocations as f64 / s
        );
    }

    // Cluster-scale shape: the bench's ≥2,048-host headline row, split
    // into fixed overhead (tiny stream) vs streaming work. Sweeping the
    // host count exposes the scaling exponent of the fixed part.
    for headline_hosts in [512usize, 1_024, 2_048] {
        for threads in [1usize, 8] {
            let headline = FleetConfig {
                hosts: headline_hosts,
                threads,
                invocations: headline_hosts * 64,
                population: 4 * headline_hosts,
                ..FleetConfig::default()
            };
            let tiny = FleetConfig {
                invocations: 16,
                ..headline.clone()
            };
            let start = Instant::now();
            let _ = run_fleet(&tiny, &model, false).expect("tiny headline run");
            let fixed_s = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let run = run_fleet(&headline, &model, false).expect("headline run");
            let s = start.elapsed().as_secs_f64();
            println!(
                "headline {} hosts, {} threads: fixed {:.0}ms, full {:.0}ms ({:.0} inv/s)",
                headline_hosts,
                threads,
                fixed_s * 1e3,
                s * 1e3,
                run.invocations as f64 / s
            );
        }
    }
}
