//! Deterministic health checking: probe-driven circuit breakers per host.
//!
//! The front end probes every host on a fixed interval. A probe fails
//! while the host is down or degraded (per the chaos timeline);
//! `failure_threshold` consecutive failures open the breaker
//! ([`HealthStatus::Unhealthy`]) and the router fails over around the
//! host. Once a probe succeeds again the breaker goes *half-open* — the
//! router may send traffic, but hedges it — and `recovery_threshold`
//! consecutive successes close it fully.
//!
//! The view is advanced to each arrival's timestamp during the
//! *sequential* routing phase, so its state is a pure function of the
//! config and arrival order — no wall clocks, no background threads, and
//! therefore no thread-count dependence.

use luke_common::SimError;

use crate::chaos::{ChaosPlan, HostState};

/// Health-probe knobs (always present on the config; only consulted when
/// chaos is enabled, so the defaults are bit-transparent otherwise).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthConfig {
    /// Interval between probe rounds, ms.
    pub probe_interval_ms: f64,
    /// Consecutive failed probes that open the breaker.
    pub failure_threshold: u32,
    /// Consecutive successful probes that close a half-open breaker.
    pub recovery_threshold: u32,
}

impl Default for HealthConfig {
    /// Probe every 500ms; 2 failures open, 2 successes close.
    fn default() -> Self {
        HealthConfig {
            probe_interval_ms: 500.0,
            failure_threshold: 2,
            recovery_threshold: 2,
        }
    }
}

impl HealthConfig {
    /// Validates the knobs, naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.probe_interval_ms > 0.0 && self.probe_interval_ms.is_finite()) {
            return Err(SimError::invalid_config(
                "health.probe_interval_ms",
                format!("must be positive and finite, got {}", self.probe_interval_ms),
            ));
        }
        if self.failure_threshold == 0 {
            return Err(SimError::invalid_config(
                "health.failure_threshold",
                "at least one failed probe must be required",
            ));
        }
        if self.recovery_threshold == 0 {
            return Err(SimError::invalid_config(
                "health.recovery_threshold",
                "at least one successful probe must be required",
            ));
        }
        Ok(())
    }
}

/// A host's breaker state as the front end sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthStatus {
    /// Closed breaker: route normally.
    Healthy,
    /// Recovering: routable, but a hedge candidate.
    HalfOpen,
    /// Open breaker: fail over around this host.
    Unhealthy,
}

#[derive(Clone, Copy, Debug)]
struct Breaker {
    status: HealthStatus,
    consecutive_failures: u32,
    consecutive_successes: u32,
}

/// The front end's deterministic view of every host's health.
#[derive(Clone, Debug)]
pub struct HealthView {
    config: HealthConfig,
    breakers: Vec<Breaker>,
    /// Probe rounds already processed (round k fires at k × interval).
    rounds_done: u64,
}

impl HealthView {
    /// A view over `hosts` hosts, all initially healthy.
    pub fn new(hosts: usize, config: HealthConfig) -> Self {
        HealthView {
            config,
            breakers: vec![
                Breaker {
                    status: HealthStatus::Healthy,
                    consecutive_failures: 0,
                    consecutive_successes: 0,
                };
                hosts
            ],
            rounds_done: 0,
        }
    }

    /// Processes every probe round due at or before `now_ms` against the
    /// chaos timeline. Probes observe the *scheduled* state: down and
    /// degraded hosts fail their probes.
    pub fn advance_to(&mut self, now_ms: f64, plan: &ChaosPlan) {
        loop {
            let next_round = self.rounds_done + 1;
            let t = next_round as f64 * self.config.probe_interval_ms;
            if t > now_ms {
                return;
            }
            for (host, breaker) in self.breakers.iter_mut().enumerate() {
                let ok = plan.state_at(host, t) == HostState::Up;
                if ok {
                    breaker.consecutive_failures = 0;
                    breaker.consecutive_successes += 1;
                    match breaker.status {
                        HealthStatus::Unhealthy => {
                            breaker.status = HealthStatus::HalfOpen;
                            breaker.consecutive_successes = 1;
                        }
                        HealthStatus::HalfOpen
                            if breaker.consecutive_successes >= self.config.recovery_threshold =>
                        {
                            breaker.status = HealthStatus::Healthy;
                        }
                        _ => {}
                    }
                } else {
                    breaker.consecutive_successes = 0;
                    breaker.consecutive_failures += 1;
                    if breaker.consecutive_failures >= self.config.failure_threshold {
                        breaker.status = HealthStatus::Unhealthy;
                    }
                }
            }
            self.rounds_done = next_round;
        }
    }

    /// Host `h`'s breaker status.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn status(&self, h: usize) -> HealthStatus {
        self.breakers[h].status
    }

    /// Hosts currently not `Unhealthy`.
    pub fn routable_count(&self) -> usize {
        self.breakers
            .iter()
            .filter(|b| b.status != HealthStatus::Unhealthy)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::HostSchedule;

    /// Host 0 is down 10s–15s; host 1 never misbehaves.
    fn crashing_plan() -> ChaosPlan {
        ChaosPlan::from_schedules(vec![
            HostSchedule::explicit(&[(10_000.0, 15_000.0)], &[]),
            HostSchedule::none(),
        ])
    }

    #[test]
    fn default_health_config_is_valid_and_bad_knobs_are_named() {
        assert!(HealthConfig::default().validate().is_ok());
        for (config, field) in [
            (
                HealthConfig {
                    probe_interval_ms: 0.0,
                    ..HealthConfig::default()
                },
                "health.probe_interval_ms",
            ),
            (
                HealthConfig {
                    failure_threshold: 0,
                    ..HealthConfig::default()
                },
                "health.failure_threshold",
            ),
            (
                HealthConfig {
                    recovery_threshold: 0,
                    ..HealthConfig::default()
                },
                "health.recovery_threshold",
            ),
        ] {
            let err = config.validate().unwrap_err();
            assert!(format!("{err}").contains(field), "{err}");
        }
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let plan = crashing_plan();
        let mut view = HealthView::new(2, HealthConfig::default());
        // Probes every 500ms; the outage spans 10s–15s.
        view.advance_to(9_999.0, &plan);
        assert_eq!(view.status(0), HealthStatus::Healthy);
        // Two failed probes (10.5s, 11s) open the breaker.
        view.advance_to(11_001.0, &plan);
        assert_eq!(view.status(0), HealthStatus::Unhealthy);
        assert_eq!(view.status(1), HealthStatus::Healthy);
        assert_eq!(view.routable_count(), 1);
        // First success after recovery (15s probe) half-opens it.
        view.advance_to(15_100.0, &plan);
        assert_eq!(view.status(0), HealthStatus::HalfOpen);
        // The second success closes it.
        view.advance_to(15_600.0, &plan);
        assert_eq!(view.status(0), HealthStatus::Healthy);
    }

    #[test]
    fn advancing_in_pieces_equals_advancing_at_once() {
        let plan = crashing_plan();
        for target in [10_700.0, 12_000.0, 15_200.0, 30_000.0] {
            let mut stepped = HealthView::new(2, HealthConfig::default());
            let mut jumped = HealthView::new(2, HealthConfig::default());
            let mut t = 0.0f64;
            while t < target {
                t = (t + 137.0).min(target);
                stepped.advance_to(t, &plan);
            }
            jumped.advance_to(target, &plan);
            for h in 0..2 {
                assert_eq!(stepped.status(h), jumped.status(h), "host {h} at {target}");
            }
        }
    }

    #[test]
    fn empty_plan_keeps_everyone_healthy() {
        let mut view = HealthView::new(4, HealthConfig::default());
        view.advance_to(1e7, &ChaosPlan::none());
        assert_eq!(view.routable_count(), 4);
    }
}
