//! luke-fleet: a cluster-scale fleet simulator with deterministic
//! parallel sharding.
//!
//! The paper characterizes *one* lukewarm host; this crate scales the
//! question up to a fleet. N hosts — each an instance pool with
//! keep-alive, an optional fault plan, and a per-host
//! interleaving-degree estimate that prices warm hits through the
//! cache-decay model — sit behind a load balancer with pluggable
//! routing ([`RoutingPolicy`]): round-robin, least-loaded, or
//! keep-alive-aware consistent hashing. Traffic is a Zipf-skewed
//! population of deployed functions mapped onto the 20-function paper
//! suite, driven as Poisson arrival lanes. Cold starts are priced by a
//! pluggable [`ColdStartModel`]: a flat boot cost (`Instant`), a
//! lazily-paged snapshot restore, or a REAP-style prefetch of the
//! recorded page working set (see the `luke-snapshot` crate).
//!
//! The headline property is **deterministic parallelism**: host shards
//! run across `std::thread::scope` workers, yet a 1-thread run is
//! bit-identical to an N-thread run — same telemetry snapshot, same
//! latency histogram, same exported JSON. See the `run` module docs for
//! the three-phase argument (sequential route, shared-nothing process,
//! ordered merge) and `tests/fleet_determinism.rs` for the proof.
//!
//! # Examples
//!
//! ```
//! use luke_fleet::{run_fleet_pair, FleetConfig, RoutingPolicy, ServiceModel};
//!
//! let config = FleetConfig {
//!     hosts: 4,
//!     invocations: 2_000,
//!     population: 40,
//!     policy: RoutingPolicy::KeepAliveAware,
//!     ..FleetConfig::default()
//! };
//! let model = ServiceModel::analytic(&workloads::paper_suite()).expect("suite is valid");
//! let pair = run_fleet_pair(&config, &model).expect("config is valid");
//! assert!(pair.speedup() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod event;
pub mod health;
pub mod host;
pub mod route;
pub mod run;
pub mod tenant;
pub mod timing;
pub mod traffic;

pub use chaos::{ChaosConfig, ChaosPlan, HostSchedule, HostState};
pub use config::FleetConfig;
pub use event::{CalendarQueue, FleetEvent, FleetEventKind};
pub use health::{HealthConfig, HealthStatus, HealthView};
pub use host::{FleetHost, HedgeOutcome, RoutedInvocation};
pub use luke_predict::PrewarmConfig;
pub use luke_snapshot::{ColdStartModel, SnapshotTimings};
pub use luke_tenancy::{ContentionConfig, TenancyConfig};
pub use route::{HedgeConfig, RouteDecision, Router, RoutingPolicy};
pub use run::{run_fleet, run_fleet_pair, FleetComparison, FleetRun, HostSummary};
pub use server::{AdmissionConfig, RetryBudget};
pub use tenant::HostTenancy;
pub use timing::{FunctionTiming, ServiceModel, FREQ_GHZ};
pub use traffic::{ArrivalStream, Population, SurgeConfig, SurgeTraffic};
