//! Fleet orchestration: a streaming route producer, work-stealing
//! deterministic shards, ordered merge.
//!
//! The run is one event-driven pipeline with a sharp determinism
//! argument at each stage:
//!
//! 1. **Route** (one producer): the arrival stream is drawn lane-by-lane
//!    from the traffic generator and pushed through the router in
//!    arrival order. Router state (round-robin cursor, load ledger,
//!    health view) only ever sees this one canonical order. Routed
//!    copies stream into *bounded* per-shard batch queues — peak routed
//!    work in flight is O(shards × batches), independent of the
//!    invocation count — and the producer blocks when a shard's queue is
//!    full (backpressure), overlapping routing with processing.
//! 2. **Process** (work-stealing workers): hosts are grouped into
//!    contiguous shards, several per worker. A shard becomes *runnable*
//!    when its queue holds work and exactly one worker owns it at a
//!    time (the `scheduled` flag), so each host still consumes its
//!    arrivals in canonical route order while idle workers steal
//!    whichever shard has work instead of waiting on the hottest static
//!    chunk. Hosts share nothing — each owns its pool, fault stream,
//!    calendar queue of timers, counters, and event ring — so the
//!    stealing schedule cannot influence any host's state.
//! 3. **Merge** (sequential): per-host state is folded into fleet
//!    totals, one registry, one histogram, and one event ring *in host-id
//!    order*, which is independent of which thread ran which shard.
//!
//! With `threads == 1` the pipeline degenerates to a fully sequential
//! loop that routes each arrival and processes it on its host
//! immediately — the reference semantics, with peak memory O(hosts).
//! Either way `threads` never appears in any result, and
//! `tests/fleet_determinism.rs` asserts a 1-thread and an N-thread run
//! export byte-identical JSON.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use luke_common::SimError;
use luke_obs::span::{sort_canonical, trace_id, Span, SpanKind, SpanRing};
use luke_obs::{
    Dataset, EventRing, Export, Histogram, Registry, Snapshot, TimeWindows, Value, WindowRow,
};

use crate::chaos::ChaosPlan;
use crate::config::FleetConfig;
use crate::health::HealthView;
use crate::host::{FleetHost, HedgeOutcome, RoutedInvocation};
use crate::route::{Router, RoutingPolicy};
use crate::timing::ServiceModel;
use crate::traffic::{ArrivalStream, Population};

/// Per-host slice of a [`FleetRun`].
#[derive(Clone, Debug, PartialEq)]
pub struct HostSummary {
    /// Host index.
    pub host: usize,
    /// Invocations this host served.
    pub invocations: u64,
    /// Cold starts (first touches, expiries, evictions, crash respawns).
    pub cold_starts: u64,
    /// Warm hits below the lukewarm threshold.
    pub warm_hits: u64,
    /// Warm hits at or above it.
    pub lukewarm_hits: u64,
    /// Mean interleaving degree over warm hits.
    pub mean_degree: f64,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Instances still warm at the end of the run.
    pub warm_instances: usize,
}

/// Result of one fleet run. Contains no trace of how many threads
/// produced it.
#[derive(Clone, Debug)]
pub struct FleetRun {
    /// Routing policy that shaped the run.
    pub policy: RoutingPolicy,
    /// Fleet size.
    pub hosts: usize,
    /// Whether warm service times used the Jukebox factor.
    pub jukebox: bool,
    /// Total invocations.
    pub invocations: u64,
    /// Fleet-wide cold starts.
    pub cold_starts: u64,
    /// Fleet-wide warm (non-lukewarm) hits.
    pub warm_hits: u64,
    /// Fleet-wide lukewarm hits.
    pub lukewarm_hits: u64,
    /// Invocations that completed (fault layer).
    pub completed: u64,
    /// Invocations abandoned by the retry policy.
    pub abandoned: u64,
    /// Sum of end-to-end latencies, ms.
    pub latency_sum_ms: f64,
    /// Merged latency distribution, µs.
    pub latency_us: Histogram,
    /// Per-host breakdown, in host order.
    pub per_host: Vec<HostSummary>,
    /// Merged telemetry snapshot (pool, fault, and fleet series).
    pub snapshot: Snapshot,
    /// Merged lifecycle trace, hosts concatenated in id order (empty
    /// when `events_capacity` is 0).
    pub events: EventRing,
    /// Whole-host chaos crashes applied across the fleet.
    pub host_crashes: u64,
    /// Dispatches routed around an unhealthy preferred host.
    pub failovers: u64,
    /// Hedged dispatches issued (each added one extra copy of load).
    pub hedges: u64,
    /// Retries spent fleet-wide: fault-layer re-attempts plus down-host
    /// reconnects.
    pub retries: u64,
    /// Arrivals rejected by the admission ladder.
    pub shed: u64,
    /// Cold starts degraded to lazy-paging restores under memory
    /// pressure.
    pub degraded_restores: u64,
    /// Whether any resilience knob was on (gates the resilience
    /// dataset so disabled runs export byte-identical output).
    pub resilient: bool,
    /// Span trees of every sampled invocation, canonically ordered by
    /// (trace lane, span id) — empty when `trace_sample` is 0.
    pub spans: Vec<Span>,
    /// Windowed time-series rows in time order — empty when
    /// `series_window_ms` is 0.
    pub timeline: Vec<WindowRow>,
    /// Whether span tracing was on (gates the spans dataset).
    pub traced: bool,
    /// Whether the windowed series was on (gates the timeline dataset).
    pub windowed: bool,
    /// Warm-pool occupancy in instance-milliseconds through the last
    /// arrival — what a provider pays to run the keep-alive policy.
    /// Always computed (fixed policies have a memory bill too); only
    /// exported as a dataset when prediction was on.
    pub memory_ms: f64,
    /// Pre-restores the prediction policy scheduled (0 when off).
    pub prewarms_scheduled: u64,
    /// Pre-restores actually spawned ahead of a predicted arrival.
    pub prewarm_spawns: u64,
    /// Arrivals that landed on a pre-warmed instance.
    pub prewarm_hits: u64,
    /// Arrivals processed under a tightened (below-cap) adaptive hold.
    pub early_decays: u64,
    /// Whether prediction was on (gates the prewarm dataset).
    pub prewarmed: bool,
    /// Dispatches scored by the placement-aware policy (0 otherwise).
    pub placement_routed: u64,
    /// Distinct shared pages registered across all hosts.
    pub shared_pages: u64,
    /// Shared-page registrations that found the page already resident.
    pub dedup_hits: u64,
    /// Bytes dedup avoided materializing fleet-wide.
    pub dedup_bytes_saved: u64,
    /// Total latency contention pressure added across the fleet, ms.
    pub contention_extra_ms: f64,
    /// Invocations that ran with a contention slowdown above 1.
    pub slowed_invocations: u64,
    /// Whether any tenancy knob was on (gates the tenancy dataset).
    pub tenant: bool,
}

impl FleetRun {
    /// Mean end-to-end latency, ms, over the invocations the latency
    /// histogram tracked (hedged pairs count once, shed arrivals not at
    /// all; without resilience this is exactly `invocations`).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latency_us.count() == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.latency_us.count() as f64
        }
    }

    /// Retry amplification: dispatched attempts per admitted arrival
    /// (1.0 when nothing ever retried).
    pub fn retry_amplification(&self) -> f64 {
        if self.invocations == 0 {
            1.0
        } else {
            1.0 + self.retries as f64 / self.invocations as f64
        }
    }

    /// Fleet-wide shared-page hit rate: the share of shareable page
    /// registrations that found the page already resident on the host
    /// (0.0 when nothing registered — dedup off or tenancy disabled).
    pub fn shared_page_hit_rate(&self) -> f64 {
        let touched = self.shared_pages + self.dedup_hits;
        if touched == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / touched as f64
        }
    }

    /// Median end-to-end latency, ms (0.0 when nothing completed — an
    /// all-shed run has no tail to report).
    pub fn p50_ms(&self) -> f64 {
        self.latency_us
            .try_percentile(50.0)
            .map_or(0.0, |us| us as f64 / 1000.0)
    }

    /// Tail end-to-end latency, ms (0.0 when nothing completed).
    pub fn p99_ms(&self) -> f64 {
        self.latency_us
            .try_percentile(99.0)
            .map_or(0.0, |us| us as f64 / 1000.0)
    }

    /// Fraction of invocations that found no warm instance.
    pub fn cold_start_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.invocations as f64
        }
    }

    /// Fraction of invocations served warm but microarchitecturally
    /// cold — the paper's lukewarm share.
    pub fn lukewarm_fraction(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.lukewarm_hits as f64 / self.invocations as f64
        }
    }

    /// Warm-pool occupancy in instance-seconds — the frontier's x-axis
    /// in its natural unit.
    pub fn memory_instance_s(&self) -> f64 {
        self.memory_ms / 1000.0
    }
}

/// Items per routed batch handed from the producer to a shard queue.
/// Large enough that queue lock/wake traffic amortizes to noise even
/// when the workers time-slice a single core.
const BATCH_ITEMS: usize = 1024;
/// Bound on undrained batches per shard before the producer blocks —
/// the streaming pipeline's backpressure window. Peak routed work in
/// flight is O(shards × `MAX_QUEUED_BATCHES` × [`BATCH_ITEMS`]),
/// independent of the invocation count.
const MAX_QUEUED_BATCHES: usize = 8;
/// Work-stealing shards per worker thread: several small shards per
/// worker let an idle worker steal the tail of a skewed routing
/// distribution instead of waiting on the hottest static chunk.
const SHARDS_PER_WORKER: usize = 4;

/// One routed copy addressed to a host *within* its shard.
type ShardItem = (usize, RoutedInvocation);

/// One shard's bounded batch queue — the producer side of the pipeline.
struct ShardQueue {
    state: Mutex<ShardQueueState>,
    /// Signals the backpressured producer when a full queue drains.
    drained: Condvar,
}

struct ShardQueueState {
    batches: VecDeque<Vec<ShardItem>>,
    /// Whether the shard is runnable-or-running. Set by the producer
    /// when it enqueues into an idle shard, cleared by the owning
    /// worker in the same critical section that observes the queue
    /// empty — so exactly one worker ever owns a shard, and each host
    /// consumes its arrivals in canonical route order regardless of
    /// which worker stole the shard.
    scheduled: bool,
}

/// The work-stealing scheduler: shards with undrained work, plus the
/// producer-finished flag that lets workers exit.
struct Scheduler {
    state: Mutex<SchedulerState>,
    runnable: Condvar,
}

struct SchedulerState {
    queue: VecDeque<usize>,
    finished: bool,
}

/// Enqueues one batch for `shard`, blocking while the shard's queue is
/// at the backpressure bound, and marks the shard runnable if no worker
/// currently owns it.
fn push_batch(
    queues: &[ShardQueue],
    scheduler: &Scheduler,
    shard: usize,
    batch: Vec<ShardItem>,
) {
    let make_runnable = {
        let mut q = queues[shard].state.lock().expect("shard queue mutex");
        while q.batches.len() >= MAX_QUEUED_BATCHES {
            q = queues[shard].drained.wait(q).expect("shard queue mutex");
        }
        q.batches.push_back(batch);
        let first = !q.scheduled;
        q.scheduled = true;
        first
    };
    if make_runnable {
        let mut sched = scheduler.state.lock().expect("scheduler mutex");
        sched.queue.push_back(shard);
        scheduler.runnable.notify_one();
    }
}

/// One worker: claim a runnable shard, drain its queue to empty, hand
/// the shard back, repeat until the producer has finished and nothing is
/// runnable. Every enqueue that makes a shard runnable happens-before
/// the producer's `finished` store (both go through the scheduler
/// mutex), so a worker that sees `finished` with an empty runnable list
/// knows every batch is either drained or owned by a worker that will
/// drain it.
fn worker_loop(
    queues: &[ShardQueue],
    scheduler: &Scheduler,
    shards: &[Mutex<Vec<FleetHost>>],
    config: &FleetConfig,
    model: &ServiceModel,
    jukebox: bool,
) {
    loop {
        let shard = {
            let mut sched = scheduler.state.lock().expect("scheduler mutex");
            loop {
                if let Some(shard) = sched.queue.pop_front() {
                    break shard;
                }
                if sched.finished {
                    return;
                }
                sched = scheduler.runnable.wait(sched).expect("scheduler mutex");
            }
        };
        // The `scheduled` flag guarantees exclusive ownership, so this
        // lock is uncontended; it exists to carry `&mut` across threads.
        let mut hosts = shards[shard].lock().expect("shard hosts mutex");
        loop {
            let batch = {
                let mut q = queues[shard].state.lock().expect("shard queue mutex");
                match q.batches.pop_front() {
                    Some(batch) => {
                        queues[shard].drained.notify_one();
                        Some(batch)
                    }
                    None => {
                        q.scheduled = false;
                        None
                    }
                }
            };
            let Some(batch) = batch else { break };
            for (local, routed) in batch {
                hosts[local].process(config, model, jukebox, routed);
            }
        }
    }
}

/// Drives the traffic generator through the router in the one canonical
/// arrival order, handing every routed copy to `emit`, and returns the
/// last arrival time — the memory-accounting horizon. Both execution
/// modes share this exact code path (the sequential loop `emit`s
/// straight into a host, the streaming producer into bounded shard
/// queues), so routing state never sees anything but the canonical
/// order. Under chaos the router consults a health view advanced to
/// each arrival — probe rounds, breaker transitions, failover walks,
/// and hedge decisions all happen here, which is what keeps them
/// thread-count-independent.
fn route_stream(
    config: &FleetConfig,
    model: &ServiceModel,
    router: &mut Router,
    route_spans: &mut SpanRing,
    mut emit: impl FnMut(usize, RoutedInvocation),
) -> Result<f64, SimError> {
    let population = Population::synthesize(config);
    let mut stream = ArrivalStream::synthesize(config, &population)?;
    let chaos_plan = ChaosPlan::synthesize(config);
    let mut health = HealthView::new(config.hosts, config.health);
    // Warm-service estimates per suite profile, hoisted off the
    // per-arrival path (the router charges this estimate to its load
    // ledger on every dispatch).
    let warm_ms: Vec<f64> = (0..model.functions())
        .map(|profile| model.timing(profile).warm_ms)
        .collect();
    let route_span = |dispatch: u64, hedge_lane: bool, host: u64, failed_over: bool| Span {
        trace: trace_id(dispatch, hedge_lane),
        id: 1,
        parent: 0,
        kind: SpanKind::Route,
        start_us: 0,
        dur_us: 0,
        a: host,
        b: u64::from(failed_over),
    };
    let mut end_ms = 0.0_f64;
    for (dispatch, event) in (0_u64..).zip(stream.by_ref().take(config.invocations)) {
        end_ms = end_ms.max(event.at_ms);
        let function = event.instance;
        let expected_ms = warm_ms[function % warm_ms.len()];
        if chaos_plan.is_none() {
            let host = router.route(function, expected_ms);
            if config.samples(dispatch) {
                route_spans.record(route_span(dispatch, false, host as u64, false));
            }
            emit(
                host,
                RoutedInvocation {
                    at_ms: event.at_ms,
                    function,
                    dispatch,
                    hedge: false,
                    duplicate: false,
                },
            );
        } else {
            health.advance_to(event.at_ms, &chaos_plan);
            if chaos_plan.all_down_at(event.at_ms) {
                return Err(SimError::all_hosts_down(event.at_ms as u64));
            }
            let decision = router.route_resilient(function, expected_ms, &health, &config.hedge);
            let hedge = decision.hedge.is_some();
            if config.samples(dispatch) {
                route_spans.record(route_span(
                    dispatch,
                    false,
                    decision.host as u64,
                    decision.failed_over,
                ));
                if let Some(second) = decision.hedge {
                    route_spans.record(Span {
                        trace: trace_id(dispatch, false),
                        id: 2,
                        parent: 0,
                        kind: SpanKind::Hedge,
                        start_us: 0,
                        dur_us: 0,
                        a: decision.host as u64,
                        b: second as u64,
                    });
                    route_spans.record(route_span(dispatch, true, second as u64, false));
                }
            }
            emit(
                decision.host,
                RoutedInvocation {
                    at_ms: event.at_ms,
                    function,
                    dispatch,
                    hedge,
                    duplicate: false,
                },
            );
            if let Some(second) = decision.hedge {
                emit(
                    second,
                    RoutedInvocation {
                        at_ms: event.at_ms,
                        function,
                        dispatch,
                        hedge: true,
                        duplicate: true,
                    },
                );
            }
        }
    }
    Ok(end_ms)
}

/// The span-ring capacity for route-phase spans of sampled dispatches
/// (ids 1–3 on each lane; the host side owns the root and ids from 4).
fn route_span_capacity(config: &FleetConfig) -> usize {
    if config.trace_sample > 0 {
        (config.invocations / config.trace_sample as usize + 1) * 4
    } else {
        0
    }
}

/// Runs the fleet once. `model` prices service times; `jukebox` selects
/// which lukewarm factor warm hits pay.
pub fn run_fleet(
    config: &FleetConfig,
    model: &ServiceModel,
    jukebox: bool,
) -> Result<FleetRun, SimError> {
    config.validate()?;

    let threads = config.threads.min(config.hosts);
    let mut hosts: Vec<FleetHost> = (0..config.hosts)
        .map(|id| FleetHost::new(config, id))
        .collect();
    // The placement-aware policy scores hosts by same-language affinity,
    // so it routes with the suite's language table; every other policy
    // keeps the language-blind constructor (identical state, bit for
    // bit).
    let mut router = if config.policy == RoutingPolicy::PlacementAware {
        let lang_of: Vec<u8> = workloads::paper_suite()
            .iter()
            .map(|profile| luke_tenancy::language_slot(profile.language))
            .collect();
        Router::with_languages(config.policy, config.hosts, lang_of)
    } else {
        Router::new(config.policy, config.hosts)
    };
    let mut route_spans = SpanRing::with_capacity(route_span_capacity(config));

    let end_ms = if threads <= 1 {
        // Sequential reference path: route each arrival and process it
        // on its host immediately. Per-host arrival order equals the
        // canonical route order by construction, and peak memory is
        // O(hosts) — no routed queue is ever materialized.
        route_stream(config, model, &mut router, &mut route_spans, |host, routed| {
            hosts[host].process(config, model, jukebox, routed);
        })?
    } else {
        // Streaming pipeline: one producer routes in canonical order
        // and feeds bounded per-shard queues; workers steal runnable
        // shards. Shard boundaries are contiguous host chunks, so
        // reassembling the shards in order restores host-id order no
        // matter which worker ran what.
        let shard_count = (threads * SHARDS_PER_WORKER).min(config.hosts);
        let shard_len = config.hosts.div_ceil(shard_count);
        let mut shards: Vec<Mutex<Vec<FleetHost>>> = Vec::new();
        {
            let mut it = hosts.drain(..);
            loop {
                let chunk: Vec<FleetHost> = it.by_ref().take(shard_len).collect();
                if chunk.is_empty() {
                    break;
                }
                shards.push(Mutex::new(chunk));
            }
        }
        let queues: Vec<ShardQueue> = (0..shards.len())
            .map(|_| ShardQueue {
                state: Mutex::new(ShardQueueState {
                    batches: VecDeque::new(),
                    scheduled: false,
                }),
                drained: Condvar::new(),
            })
            .collect();
        let scheduler = Scheduler {
            state: Mutex::new(SchedulerState {
                queue: VecDeque::new(),
                finished: false,
            }),
            runnable: Condvar::new(),
        };

        let routed: Result<f64, SimError> = std::thread::scope(|scope| {
            let queues = &queues;
            let scheduler = &scheduler;
            let shards_ref = &shards;
            for _ in 0..threads {
                scope.spawn(move || {
                    worker_loop(queues, scheduler, shards_ref, config, model, jukebox);
                });
            }
            // The producer runs on this thread; its open batches flush
            // either at BATCH_ITEMS or when the stream ends.
            let mut open: Vec<Vec<ShardItem>> = vec![Vec::new(); queues.len()];
            let result = route_stream(
                config,
                model,
                &mut router,
                &mut route_spans,
                |host, routed| {
                    let shard = host / shard_len;
                    let batch = &mut open[shard];
                    batch.push((host % shard_len, routed));
                    if batch.len() >= BATCH_ITEMS {
                        push_batch(queues, scheduler, shard, std::mem::take(batch));
                    }
                },
            );
            if result.is_ok() {
                for (shard, batch) in open.iter_mut().enumerate() {
                    if !batch.is_empty() {
                        push_batch(queues, scheduler, shard, std::mem::take(batch));
                    }
                }
            }
            let mut sched = scheduler.state.lock().expect("scheduler mutex");
            sched.finished = true;
            scheduler.runnable.notify_all();
            drop(sched);
            result
        });
        let end_ms = routed?;
        for shard in shards {
            hosts.extend(shard.into_inner().expect("shard hosts mutex"));
        }
        end_ms
    };

    // Merge (sequential, host-id order).
    let mut registry = Registry::new();
    let mut latency_us = Histogram::new();
    let mut events = EventRing::with_capacity(config.merged_events_capacity());
    let mut run = FleetRun {
        policy: config.policy,
        hosts: config.hosts,
        jukebox,
        invocations: 0,
        cold_starts: 0,
        warm_hits: 0,
        lukewarm_hits: 0,
        completed: 0,
        abandoned: 0,
        latency_sum_ms: 0.0,
        latency_us: Histogram::new(),
        per_host: Vec::with_capacity(config.hosts),
        snapshot: Registry::new().snapshot(),
        events: EventRing::disabled(),
        host_crashes: 0,
        failovers: router.failovers(),
        hedges: router.hedges(),
        retries: 0,
        shed: 0,
        degraded_restores: 0,
        resilient: config.resilience_enabled(),
        spans: Vec::new(),
        timeline: Vec::new(),
        traced: config.tracing_enabled(),
        windowed: config.series_enabled(),
        memory_ms: 0.0,
        prewarms_scheduled: 0,
        prewarm_spawns: 0,
        prewarm_hits: 0,
        early_decays: 0,
        prewarmed: config.prewarm_enabled(),
        placement_routed: router.placement_routed(),
        shared_pages: 0,
        dedup_hits: 0,
        dedup_bytes_saved: 0,
        contention_extra_ms: 0.0,
        slowed_invocations: 0,
        tenant: config.tenancy_enabled(),
    };
    let mut spans: Vec<Span> = route_spans.take_spans();
    let mut series = TimeWindows::new(config.series_window_ms);
    let mut hedge_pairs: BTreeMap<u64, HedgeOutcome> = BTreeMap::new();
    for host in &hosts {
        host.fill_registry(&mut registry);
        latency_us.merge(&host.latency_us);
        events.extend_from(&host.events);
        spans.extend(host.spans.spans());
        series.merge(&host.series);
        run.invocations += host.invocations;
        run.cold_starts += host.cold_starts;
        run.warm_hits += host.warm_hits;
        run.lukewarm_hits += host.lukewarm_hits;
        run.completed += host.fault_stats.completed;
        run.abandoned += host.fault_stats.abandoned;
        run.latency_sum_ms += host.latency_sum_ms;
        run.host_crashes += host.host_crashes;
        run.retries += host.retries + host.down_retries;
        run.memory_ms += host.memory_ms_through(end_ms);
        run.prewarms_scheduled += host.prewarms_scheduled();
        run.prewarm_spawns += host.prewarm_spawns;
        run.prewarm_hits += host.prewarm_hits;
        run.early_decays += host.early_decays();
        if let Some(ctl) = host.admission() {
            run.shed += ctl.shed();
            run.degraded_restores += ctl.degraded_restores();
        }
        if let Some(tenancy) = host.tenancy() {
            run.shared_pages += tenancy.shared_pages();
            run.dedup_hits += tenancy.dedup_hits();
            run.dedup_bytes_saved += tenancy.dedup_bytes_saved();
            run.contention_extra_ms += tenancy.extra_ms();
            run.slowed_invocations += tenancy.slowed();
        }
        // Hedge copies share a dispatch id: keep the better fate (a
        // completion beats a failure, then the faster latency wins).
        for &outcome in &host.hedge_outcomes {
            hedge_pairs
                .entry(outcome.dispatch)
                .and_modify(|best| {
                    let better = (outcome.completed, !best.completed) == (true, true)
                        || (outcome.completed == best.completed
                            && outcome.latency_ms < best.latency_ms);
                    if better {
                        *best = outcome;
                    }
                })
                .or_insert(outcome);
        }
        run.per_host.push(HostSummary {
            host: host.host_id,
            invocations: host.invocations,
            cold_starts: host.cold_starts,
            warm_hits: host.warm_hits,
            lukewarm_hits: host.lukewarm_hits,
            mean_degree: host.mean_degree(),
            mean_latency_ms: if host.latency_us.count() == 0 {
                0.0
            } else {
                host.latency_sum_ms / host.latency_us.count() as f64
            },
            warm_instances: host.warm_instances(),
        });
    }
    // Each hedged dispatch lands in the fleet histogram exactly once,
    // as its joined (faster) outcome — in dispatch order, which is
    // host-schedule-independent. The time-series records the joined
    // pair the same way: one arrival, one outcome.
    for outcome in hedge_pairs.values() {
        let latency_us_value = (outcome.latency_ms * 1000.0).round() as u64;
        latency_us.record(latency_us_value);
        run.latency_sum_ms += outcome.latency_ms;
        series.record_arrival(outcome.at_ms);
        series.record_outcome(
            outcome.at_ms,
            latency_us_value,
            outcome.class,
            config.series_slo_ms > 0.0 && outcome.latency_ms > config.series_slo_ms,
        );
    }
    // Canonical span order: (trace lane, span id), independent of which
    // thread ran which shard.
    sort_canonical(&mut spans);
    run.spans = spans;
    run.timeline = series.rows();
    registry.gauge_set("fleet.hosts", config.hosts as f64);
    if run.resilient {
        registry.counter_add("fleet.failovers", run.failovers);
        registry.counter_add("fleet.hedges", run.hedges);
    }
    // Route-phase placement counter, only under the policy that scores
    // placements — every other policy keeps its exact export shape.
    if config.policy == RoutingPolicy::PlacementAware {
        registry.counter_add("fleet.placement_routed", run.placement_routed);
    }
    run.snapshot = registry.snapshot();
    run.latency_us = latency_us;
    run.events = events;
    if config.admission.enabled && run.invocations == 0 && run.shed > 0 {
        return Err(SimError::admission_rejected(run.shed));
    }
    Ok(run)
}

/// A base-vs-Jukebox pair over identical traffic.
#[derive(Clone, Debug)]
pub struct FleetComparison {
    /// Run without the prefetcher.
    pub base: FleetRun,
    /// Run with Jukebox pricing on warm hits.
    pub jukebox: FleetRun,
}

impl FleetComparison {
    /// Mean-latency speedup of Jukebox over base.
    pub fn speedup(&self) -> f64 {
        let jb = self.jukebox.mean_latency_ms();
        if jb == 0.0 {
            1.0
        } else {
            self.base.mean_latency_ms() / jb
        }
    }
}

/// Runs the same config twice — without and with Jukebox — over
/// identical traffic, routing, and fault draws.
pub fn run_fleet_pair(
    config: &FleetConfig,
    model: &ServiceModel,
) -> Result<FleetComparison, SimError> {
    Ok(FleetComparison {
        base: run_fleet(config, model, false)?,
        jukebox: run_fleet(config, model, true)?,
    })
}

/// Hosts shown individually in the `Display` table before eliding.
const DISPLAY_HOST_ROWS: usize = 12;

impl std::fmt::Display for FleetRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} hosts, policy {}, jukebox {}",
            self.hosts,
            self.policy,
            if self.jukebox { "on" } else { "off" }
        )?;
        writeln!(
            f,
            "  {} invocations | cold {:.1}% | lukewarm {:.1}% | mean {:.3}ms | p50 {:.3}ms | p99 {:.3}ms",
            self.invocations,
            100.0 * self.cold_start_rate(),
            100.0 * self.lukewarm_fraction(),
            self.mean_latency_ms(),
            self.p50_ms(),
            self.p99_ms(),
        )?;
        if self.traced {
            let roots = self.spans.iter().filter(|s| s.id == 0).count();
            writeln!(
                f,
                "  tracing: {} spans over {} sampled lanes",
                self.spans.len(),
                roots
            )?;
        }
        if self.windowed {
            writeln!(f, "  timeline: {} windows", self.timeline.len())?;
        }
        if self.prewarmed {
            writeln!(
                f,
                "  prewarm: {:.0} instance-s memory | {} scheduled | {} spawned | {} hits | {} early decays",
                self.memory_instance_s(),
                self.prewarms_scheduled,
                self.prewarm_spawns,
                self.prewarm_hits,
                self.early_decays,
            )?;
        }
        if self.tenant {
            writeln!(
                f,
                "  tenancy: {} shared pages | {:.1}% hit rate | {:.2} MiB deduped | {} placement-routed | {} slowed | {:.1}ms contention",
                self.shared_pages,
                100.0 * self.shared_page_hit_rate(),
                self.dedup_bytes_saved as f64 / (1024.0 * 1024.0),
                self.placement_routed,
                self.slowed_invocations,
                self.contention_extra_ms,
            )?;
        }
        if self.resilient {
            writeln!(
                f,
                "  resilience: {} host crashes | {} failovers | {} hedges | {} retries | {} shed | {} degraded restores",
                self.host_crashes,
                self.failovers,
                self.hedges,
                self.retries,
                self.shed,
                self.degraded_restores,
            )?;
        }
        writeln!(
            f,
            "  {:>4}  {:>8}  {:>6}  {:>6}  {:>8}  {:>7}  {:>9}",
            "host", "invocs", "cold", "warm", "lukewarm", "degree", "mean ms"
        )?;
        for summary in self.per_host.iter().take(DISPLAY_HOST_ROWS) {
            writeln!(
                f,
                "  {:>4}  {:>8}  {:>6}  {:>6}  {:>8}  {:>7.3}  {:>9.3}",
                summary.host,
                summary.invocations,
                summary.cold_starts,
                summary.warm_hits,
                summary.lukewarm_hits,
                summary.mean_degree,
                summary.mean_latency_ms,
            )?;
        }
        if self.per_host.len() > DISPLAY_HOST_ROWS {
            writeln!(
                f,
                "  ... {} more hosts",
                self.per_host.len() - DISPLAY_HOST_ROWS
            )?;
        }
        Ok(())
    }
}

impl Export for FleetRun {
    fn datasets(&self) -> Vec<Dataset> {
        let mut summary = Dataset::new(
            "fleet.summary",
            &[
                "policy",
                "hosts",
                "jukebox",
                "invocations",
                "cold_start_rate",
                "lukewarm_fraction",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "completed",
                "abandoned",
            ],
        );
        summary.push_row(vec![
            Value::str(self.policy.label()),
            Value::UInt(self.hosts as u64),
            Value::UInt(u64::from(self.jukebox)),
            Value::UInt(self.invocations),
            Value::Float(self.cold_start_rate()),
            Value::Float(self.lukewarm_fraction()),
            Value::Float(self.mean_latency_ms()),
            Value::Float(self.p50_ms()),
            Value::Float(self.p99_ms()),
            Value::UInt(self.completed),
            Value::UInt(self.abandoned),
        ]);
        let mut hosts = Dataset::new(
            "fleet.hosts",
            &[
                "host",
                "invocations",
                "cold_starts",
                "warm_hits",
                "lukewarm_hits",
                "mean_degree",
                "mean_latency_ms",
                "warm_instances",
            ],
        );
        for s in &self.per_host {
            hosts.push_row(vec![
                Value::UInt(s.host as u64),
                Value::UInt(s.invocations),
                Value::UInt(s.cold_starts),
                Value::UInt(s.warm_hits),
                Value::UInt(s.lukewarm_hits),
                Value::Float(s.mean_degree),
                Value::Float(s.mean_latency_ms),
                Value::UInt(s.warm_instances as u64),
            ]);
        }
        let mut out = vec![summary, hosts];
        // The prediction dataset only exists when the policy was on —
        // disabled runs keep their exact pre-prediction export shape.
        if self.prewarmed {
            let mut prewarm = Dataset::new(
                "fleet.prewarm",
                &[
                    "memory_instance_s",
                    "prewarms_scheduled",
                    "prewarm_spawns",
                    "prewarm_hits",
                    "early_decays",
                    "cold_starts",
                ],
            );
            prewarm.push_row(vec![
                Value::Float(self.memory_instance_s()),
                Value::UInt(self.prewarms_scheduled),
                Value::UInt(self.prewarm_spawns),
                Value::UInt(self.prewarm_hits),
                Value::UInt(self.early_decays),
                Value::UInt(self.cold_starts),
            ]);
            out.push(prewarm);
        }
        // The tenancy dataset only exists when some tenancy knob was on
        // — disabled runs keep their exact pre-tenancy export shape.
        if self.tenant {
            let mut tenancy = Dataset::new(
                "fleet.tenancy",
                &[
                    "memory_instance_s",
                    "shared_pages",
                    "dedup_hits",
                    "dedup_bytes_saved",
                    "hit_rate",
                    "placement_routed",
                    "slowed_invocations",
                    "contention_extra_ms",
                    "cold_starts",
                ],
            );
            tenancy.push_row(vec![
                Value::Float(self.memory_instance_s()),
                Value::UInt(self.shared_pages),
                Value::UInt(self.dedup_hits),
                Value::UInt(self.dedup_bytes_saved),
                Value::Float(self.shared_page_hit_rate()),
                Value::UInt(self.placement_routed),
                Value::UInt(self.slowed_invocations),
                Value::Float(self.contention_extra_ms),
                Value::UInt(self.cold_starts),
            ]);
            out.push(tenancy);
        }
        // Resilience is a third dataset only when some knob was on —
        // default runs keep their exact pre-resilience export shape.
        if self.resilient {
            let mut resilience = Dataset::new(
                "fleet.resilience",
                &[
                    "host_crashes",
                    "failovers",
                    "hedges",
                    "retries",
                    "retry_amplification",
                    "shed",
                    "degraded_restores",
                    "abandoned",
                ],
            );
            resilience.push_row(vec![
                Value::UInt(self.host_crashes),
                Value::UInt(self.failovers),
                Value::UInt(self.hedges),
                Value::UInt(self.retries),
                Value::Float(self.retry_amplification()),
                Value::UInt(self.shed),
                Value::UInt(self.degraded_restores),
                Value::UInt(self.abandoned),
            ]);
            out.push(resilience);
        }
        // The causal span forest, only when sampling was on: default
        // runs keep their exact export shape.
        if self.traced {
            let mut spans = Dataset::new(
                "fleet.spans",
                &[
                    "trace", "span", "parent", "kind", "start_us", "dur_us", "a", "b",
                ],
            );
            for s in &self.spans {
                spans.push_row(vec![
                    Value::UInt(s.trace),
                    Value::UInt(u64::from(s.id)),
                    Value::UInt(u64::from(s.parent)),
                    Value::UInt(s.kind as u64),
                    Value::UInt(s.start_us),
                    Value::UInt(s.dur_us),
                    Value::UInt(s.a),
                    Value::UInt(s.b),
                ]);
            }
            out.push(spans);
        }
        // The windowed timeline, only when a window width was set. Empty
        // percentiles export as NaN, which the JSON writer renders null.
        if self.windowed {
            let mut timeline = Dataset::new(
                "fleet.timeline",
                &[
                    "window_start_ms",
                    "arrivals",
                    "p50_ms",
                    "p99_ms",
                    "shed_rate",
                    "slo_burn",
                    "cold_frac",
                    "luke_frac",
                    "warm_frac",
                ],
            );
            for r in &self.timeline {
                timeline.push_row(vec![
                    Value::Float(r.start_ms),
                    Value::UInt(r.arrivals),
                    Value::Float(r.p50_ms.unwrap_or(f64::NAN)),
                    Value::Float(r.p99_ms.unwrap_or(f64::NAN)),
                    Value::Float(r.shed_rate),
                    Value::Float(r.slo_burn),
                    Value::Float(r.cold_frac),
                    Value::Float(r.luke_frac),
                    Value::Float(r.warm_frac),
                ]);
            }
            out.push(timeline);
        }
        out
    }
}

impl std::fmt::Display for FleetComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.base)?;
        write!(f, "{}", self.jukebox)?;
        writeln!(f, "jukebox mean-latency speedup: {:.3}x", self.speedup())
    }
}

impl Export for FleetComparison {
    fn datasets(&self) -> Vec<Dataset> {
        let mut out = Vec::new();
        for (tag, run) in [("base", &self.base), ("jukebox", &self.jukebox)] {
            for mut ds in run.datasets() {
                ds.name = format!("{}.{tag}", ds.name);
                out.push(ds);
            }
        }
        let mut speedup = Dataset::new("fleet.speedup", &["policy", "hosts", "speedup"]);
        speedup.push_row(vec![
            Value::str(self.base.policy.label()),
            Value::UInt(self.base.hosts as u64),
            Value::Float(self.speedup()),
        ]);
        out.push(speedup);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::paper_suite;

    fn quick_config() -> FleetConfig {
        FleetConfig {
            hosts: 4,
            invocations: 4_000,
            population: 40,
            ..FleetConfig::default()
        }
    }

    fn model() -> ServiceModel {
        ServiceModel::analytic(&paper_suite()).unwrap()
    }

    #[test]
    fn conservation_every_invocation_is_accounted_for() {
        let run = run_fleet(&quick_config(), &model(), false).unwrap();
        assert_eq!(run.invocations, 4_000);
        assert_eq!(
            run.cold_starts + run.warm_hits + run.lukewarm_hits,
            run.invocations
        );
        assert_eq!(run.completed, run.invocations); // no faults configured
        assert_eq!(run.abandoned, 0);
        assert_eq!(run.latency_us.count(), run.invocations);
        let by_host: u64 = run.per_host.iter().map(|h| h.invocations).sum();
        assert_eq!(by_host, run.invocations);
        assert_eq!(run.snapshot.counter("fleet.invocations"), run.invocations);
        assert_eq!(run.snapshot.gauge("fleet.hosts"), Some(4.0));
    }

    #[test]
    fn empty_latency_histogram_reports_zero_percentiles() {
        let mut run = run_fleet(&quick_config(), &model(), false).unwrap();
        assert!(run.p50_ms() > 0.0);
        assert!(run.p99_ms() >= run.p50_ms());
        // A run whose histogram tracked nothing (every arrival shed)
        // must report 0, not panic inside the percentile lookup.
        run.latency_us = Histogram::new();
        assert_eq!(run.p50_ms(), 0.0);
        assert_eq!(run.p99_ms(), 0.0);
    }

    #[test]
    fn keep_alive_aware_beats_round_robin_on_lukewarm_fraction() {
        let m = model();
        let kaa = run_fleet(
            &FleetConfig {
                policy: RoutingPolicy::KeepAliveAware,
                ..quick_config()
            },
            &m,
            false,
        )
        .unwrap();
        let rr = run_fleet(
            &FleetConfig {
                policy: RoutingPolicy::RoundRobin,
                ..quick_config()
            },
            &m,
            false,
        )
        .unwrap();
        // Scattering functions across hosts multiplies per-host gaps and
        // first-touch cold starts.
        assert!(
            kaa.lukewarm_fraction() < rr.lukewarm_fraction(),
            "kaa {} vs rr {}",
            kaa.lukewarm_fraction(),
            rr.lukewarm_fraction()
        );
        assert!(
            kaa.cold_start_rate() < rr.cold_start_rate(),
            "kaa {} vs rr {}",
            kaa.cold_start_rate(),
            rr.cold_start_rate()
        );
    }

    #[test]
    fn jukebox_pair_shows_speedup_over_identical_traffic() {
        let pair = run_fleet_pair(&quick_config(), &model()).unwrap();
        // Same traffic, same routing, same cold starts — only warm
        // pricing differs.
        assert_eq!(pair.base.cold_starts, pair.jukebox.cold_starts);
        assert_eq!(pair.base.invocations, pair.jukebox.invocations);
        assert!(pair.speedup() > 1.0, "speedup {}", pair.speedup());
    }

    #[test]
    fn default_run_computes_memory_but_exports_no_prewarm_dataset() {
        let run = run_fleet(&quick_config(), &model(), false).unwrap();
        assert!(!run.prewarmed);
        assert!(run.memory_ms > 0.0, "fixed policies have a memory bill too");
        assert_eq!(run.prewarm_spawns, 0);
        assert!(!luke_obs::export::to_json(&run.datasets()).contains("fleet.prewarm"));
    }

    #[test]
    fn prewarm_run_exports_the_prewarm_dataset() {
        let config = FleetConfig {
            keep_alive_ms: 30_000.0,
            prewarm: luke_predict::PrewarmConfig::default_enabled(),
            ..quick_config()
        };
        let run = run_fleet(&config, &model(), false).unwrap();
        assert!(run.prewarmed);
        assert!(run.early_decays > 0, "the adaptive policy never engaged");
        let json = luke_obs::export::to_json(&run.datasets());
        assert!(json.contains("fleet.prewarm"));
        assert!(json.contains("memory_instance_s"));
        assert!(run.snapshot.counter("predict.early_decays") > 0);
    }

    #[test]
    fn prewarm_run_is_thread_count_invariant() {
        let m = model();
        let config = FleetConfig {
            keep_alive_ms: 30_000.0,
            prewarm: luke_predict::PrewarmConfig::default_enabled(),
            ..quick_config()
        };
        let one = run_fleet(&config, &m, false).unwrap();
        let four = run_fleet(
            &FleetConfig {
                threads: 4,
                ..config
            },
            &m,
            false,
        )
        .unwrap();
        assert_eq!(one.snapshot.to_json(), four.snapshot.to_json());
        assert_eq!(one.memory_ms, four.memory_ms);
        assert_eq!(
            luke_obs::export::to_json(&one.datasets()),
            luke_obs::export::to_json(&four.datasets())
        );
    }

    #[test]
    fn tenancy_run_exports_the_tenancy_dataset_and_dedup_pays_off() {
        let m = model();
        let base = run_fleet(&quick_config(), &m, false).unwrap();
        assert!(!base.tenant);
        assert!(!luke_obs::export::to_json(&base.datasets()).contains("fleet.tenancy"));
        let config = FleetConfig {
            cold_start_model: luke_snapshot::ColdStartModel::ReapPrefetch,
            tenancy: luke_tenancy::TenancyConfig::dedup_enabled(),
            ..quick_config()
        };
        let run = run_fleet(&config, &m, false).unwrap();
        assert!(run.tenant);
        assert!(run.shared_pages > 0, "suite functions share runtime pages");
        assert!(run.dedup_hits > 0, "co-resident instances must dedup");
        assert!(run.shared_page_hit_rate() > 0.0);
        let json = luke_obs::export::to_json(&run.datasets());
        assert!(json.contains("fleet.tenancy"));
        assert!(json.contains("dedup_bytes_saved"));
        assert!(run.snapshot.counter("tenancy.dedup_hits") == run.dedup_hits);
        // Deduped restores skip resident pages and deduped footprints
        // weigh less: the memory bill must shrink against the same
        // traffic without tenancy.
        let full = run_fleet(
            &FleetConfig {
                cold_start_model: luke_snapshot::ColdStartModel::ReapPrefetch,
                ..quick_config()
            },
            &m,
            false,
        )
        .unwrap();
        assert!(
            run.memory_ms < full.memory_ms,
            "dedup {} vs full {}",
            run.memory_ms,
            full.memory_ms
        );
        assert!(
            run.mean_latency_ms() <= full.mean_latency_ms(),
            "shared restores must not cost extra: {} vs {}",
            run.mean_latency_ms(),
            full.mean_latency_ms()
        );
    }

    #[test]
    fn contention_pressure_slows_crowded_hosts() {
        let m = model();
        let config = FleetConfig {
            tenancy: luke_tenancy::TenancyConfig {
                contention: luke_tenancy::ContentionConfig {
                    // Tight capacity so a 40-function population on 4
                    // hosts crosses the knee.
                    capacity_bytes: 4 << 20,
                    ..luke_tenancy::ContentionConfig::default_enabled()
                },
                ..luke_tenancy::TenancyConfig::default_enabled()
            },
            ..quick_config()
        };
        let run = run_fleet(&config, &m, false).unwrap();
        assert!(run.slowed_invocations > 0, "pressure never crossed the knee");
        assert!(run.contention_extra_ms > 0.0);
        let base = run_fleet(&quick_config(), &m, false).unwrap();
        assert!(
            run.mean_latency_ms() > base.mean_latency_ms(),
            "contention {} vs base {}",
            run.mean_latency_ms(),
            base.mean_latency_ms()
        );
        assert_eq!(
            run.snapshot.counter("tenancy.slowed_invocations"),
            run.slowed_invocations
        );
    }

    #[test]
    fn placement_aware_consolidates_languages_and_counts_routes() {
        let m = model();
        let config = FleetConfig {
            policy: RoutingPolicy::PlacementAware,
            cold_start_model: luke_snapshot::ColdStartModel::ReapPrefetch,
            tenancy: luke_tenancy::TenancyConfig::dedup_enabled(),
            ..quick_config()
        };
        let run = run_fleet(&config, &m, false).unwrap();
        assert_eq!(run.placement_routed, run.invocations);
        assert_eq!(
            run.snapshot.counter("fleet.placement_routed"),
            run.placement_routed
        );
        assert!(run.shared_page_hit_rate() > 0.0);
        // The affinity credit makes a host that already carries a
        // language *more* attractive, so functions stop wandering to
        // whichever host is momentarily lightest — fewer first-touch
        // cold starts than pure least-loaded.
        let ll = run_fleet(
            &FleetConfig {
                policy: RoutingPolicy::LeastLoaded,
                ..config
            },
            &m,
            false,
        )
        .unwrap();
        assert_eq!(ll.placement_routed, 0);
        assert!(
            run.cold_starts < ll.cold_starts,
            "placement-aware {} vs least-loaded {}",
            run.cold_starts,
            ll.cold_starts
        );
    }

    #[test]
    fn tenancy_run_is_thread_count_invariant() {
        let m = model();
        let config = FleetConfig {
            policy: RoutingPolicy::PlacementAware,
            cold_start_model: luke_snapshot::ColdStartModel::ReapPrefetch,
            tenancy: luke_tenancy::TenancyConfig::default_enabled(),
            ..quick_config()
        };
        let one = run_fleet(&config, &m, false).unwrap();
        let four = run_fleet(
            &FleetConfig {
                threads: 4,
                ..config
            },
            &m,
            false,
        )
        .unwrap();
        assert_eq!(one.snapshot.to_json(), four.snapshot.to_json());
        assert_eq!(one.memory_ms, four.memory_ms);
        assert_eq!(one.contention_extra_ms, four.contention_extra_ms);
        assert_eq!(
            luke_obs::export::to_json(&one.datasets()),
            luke_obs::export::to_json(&four.datasets())
        );
    }

    #[test]
    fn adaptive_policy_spends_less_memory_than_its_fixed_cap() {
        let m = model();
        let fixed = run_fleet(&quick_config(), &m, false).unwrap();
        let adaptive = run_fleet(
            &FleetConfig {
                prewarm: luke_predict::PrewarmConfig::default_enabled(),
                ..quick_config()
            },
            &m,
            false,
        )
        .unwrap();
        // Same traffic, same 10-minute cap: early decay can only shed
        // residency the fixed window would have held.
        assert!(
            adaptive.memory_ms < fixed.memory_ms,
            "adaptive {} vs fixed {}",
            adaptive.memory_ms,
            fixed.memory_ms
        );
    }

    #[test]
    fn thread_count_does_not_change_the_snapshot() {
        let m = model();
        let one = run_fleet(&quick_config(), &m, false).unwrap();
        let four = run_fleet(
            &FleetConfig {
                threads: 4,
                ..quick_config()
            },
            &m,
            false,
        )
        .unwrap();
        assert_eq!(one.snapshot.to_json(), four.snapshot.to_json());
        assert_eq!(one.latency_us, four.latency_us);
        assert_eq!(one.per_host, four.per_host);
        assert_eq!(
            luke_obs::export::to_json(&one.datasets()),
            luke_obs::export::to_json(&four.datasets())
        );
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped_to_hosts() {
        let run = run_fleet(
            &FleetConfig {
                threads: 64,
                ..quick_config()
            },
            &model(),
            false,
        )
        .unwrap();
        assert_eq!(run.invocations, 4_000);
    }

    #[test]
    fn events_merge_in_host_order() {
        let config = FleetConfig {
            events_capacity: 100_000,
            ..quick_config()
        };
        let run = run_fleet(&config, &model(), false).unwrap();
        if cfg!(feature = "obs_disabled") {
            assert!(run.events.is_empty(), "recording is compiled out");
            return;
        }
        assert!(!run.events.is_empty(), "tracing was enabled");
        // Dispatch events carry the host id in `b`; host order must be
        // non-decreasing across the merged ring.
        let hosts: Vec<u64> = run
            .events
            .events()
            .iter()
            .filter(|e| e.kind == luke_obs::EventKind::Dispatch)
            .map(|e| e.b)
            .collect();
        assert!(hosts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn invalid_config_is_rejected_before_any_work() {
        let err = run_fleet(
            &FleetConfig {
                hosts: 0,
                ..quick_config()
            },
            &model(),
            false,
        );
        assert!(err.is_err());
    }

    use crate::chaos::ChaosConfig;
    use crate::route::HedgeConfig;
    use crate::traffic::SurgeConfig;
    use server::{AdmissionConfig, RetryBudget};

    fn chaotic_config() -> FleetConfig {
        FleetConfig {
            chaos: ChaosConfig {
                host_mtbf_ms: 15_000.0,
                crash_downtime_ms: 3_000.0,
                degrade_mtbf_ms: 20_000.0,
                degrade_duration_ms: 4_000.0,
                degrade_slowdown: 2.0,
            },
            hedge: HedgeConfig {
                enabled: true,
                max_fraction: 0.1,
            },
            retry_budget: RetryBudget::new(10.0, 0.1).unwrap(),
            ..quick_config()
        }
    }

    #[test]
    fn chaos_crashes_hosts_and_routing_fails_over() {
        let run = run_fleet(&chaotic_config(), &model(), false).unwrap();
        assert!(run.resilient);
        assert!(run.host_crashes > 0, "15s MTBF over ~50s must crash");
        assert!(run.failovers > 0, "open breakers must divert traffic");
        assert_eq!(run.snapshot.counter("fleet.host_crashes"), run.host_crashes);
        assert_eq!(run.snapshot.counter("fleet.failovers"), run.failovers);
        let datasets = run.datasets();
        assert_eq!(datasets.len(), 3, "resilience dataset must appear");
        assert_eq!(datasets[2].name, "fleet.resilience");
        // Hedged pairs collapse to one histogram entry each; shed
        // arrivals to none. Served = non-hedged + joined pairs.
        assert!(run.latency_us.count() <= run.invocations);
    }

    #[test]
    fn default_run_exports_no_resilience_series() {
        let run = run_fleet(&quick_config(), &model(), false).unwrap();
        assert!(!run.resilient);
        assert_eq!(run.datasets().len(), 2);
        let json = run.snapshot.to_json();
        for key in ["fleet.host_crashes", "fleet.failovers", "admission.", "fleet.retries"] {
            assert!(!json.contains(key), "{key} leaked into a default run");
        }
    }

    #[test]
    fn tight_admission_sheds_and_survives() {
        let run = run_fleet(
            &FleetConfig {
                admission: AdmissionConfig {
                    enabled: true,
                    reserved_concurrency: 1,
                    burst_concurrency: 0,
                    host_concurrency: 2,
                    memory_pressure_instances: 0,
                },
                surge: SurgeConfig {
                    flash_multiplier: 30.0,
                    flash_start_ms: 0.0,
                    flash_duration_ms: 60_000.0,
                    ..SurgeConfig::none()
                },
                ..quick_config()
            },
            &model(),
            false,
        )
        .unwrap();
        assert!(run.shed > 0, "a 30x flash crowd over 1-deep limits must shed");
        assert_eq!(run.snapshot.counter("admission.shed"), run.shed);
        assert_eq!(run.invocations + run.shed, 4_000, "shed + served = arrivals");
    }

    #[test]
    fn permanently_down_fleet_is_a_typed_error() {
        let err = run_fleet(
            &FleetConfig {
                hosts: 1,
                chaos: ChaosConfig {
                    // Crash almost immediately, stay down for the whole
                    // run: every arrival lands inside the outage.
                    host_mtbf_ms: 0.001,
                    crash_downtime_ms: 1e9,
                    ..ChaosConfig::none()
                },
                ..quick_config()
            },
            &model(),
            false,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        assert!(format!("{err}").contains("all hosts down"), "{err}");
    }

    #[test]
    fn sampled_run_emits_exact_critical_path_span_trees() {
        let config = FleetConfig {
            trace_sample: 4,
            series_window_ms: 5_000.0,
            series_slo_ms: 50.0,
            ..chaotic_config()
        };
        let run = run_fleet(&config, &model(), false).unwrap();
        assert!(run.traced && run.windowed);
        let datasets = run.datasets();
        let names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"fleet.spans"));
        assert!(names.contains(&"fleet.timeline"));
        if cfg!(feature = "obs_disabled") {
            assert!(run.spans.is_empty(), "obs_disabled compiles recording out");
            return;
        }
        assert!(!run.spans.is_empty());
        assert!(!run.timeline.is_empty());
        let mut by_trace: BTreeMap<u64, Vec<&luke_obs::Span>> = BTreeMap::new();
        for s in &run.spans {
            by_trace.entry(s.trace).or_default().push(s);
        }
        for (trace, spans) in &by_trace {
            let roots: Vec<_> = spans.iter().filter(|s| s.id == 0).collect();
            assert_eq!(roots.len(), 1, "trace {trace} must have exactly one root");
            let children_us: u64 = spans.iter().filter(|s| s.id != 0).map(|s| s.dur_us).sum();
            assert_eq!(
                children_us, roots[0].dur_us,
                "trace {trace}: children must telescope to the root"
            );
        }
    }

    #[test]
    fn chaos_thread_count_still_does_not_change_results() {
        let m = model();
        let one = run_fleet(&chaotic_config(), &m, false).unwrap();
        let four = run_fleet(
            &FleetConfig {
                threads: 4,
                ..chaotic_config()
            },
            &m,
            false,
        )
        .unwrap();
        assert_eq!(one.snapshot.to_json(), four.snapshot.to_json());
        assert_eq!(one.latency_us, four.latency_us);
        assert_eq!(one.per_host, four.per_host);
        assert_eq!(
            luke_obs::export::to_json(&one.datasets()),
            luke_obs::export::to_json(&four.datasets())
        );
    }
}
