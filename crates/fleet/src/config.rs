//! Fleet-level configuration and validation.

use crate::chaos::ChaosConfig;
use crate::health::HealthConfig;
use crate::route::{HedgeConfig, RoutingPolicy};
use crate::traffic::SurgeConfig;
use luke_common::SimError;
use luke_predict::PrewarmConfig;
use luke_snapshot::{ColdStartModel, SnapshotTimings};
use luke_tenancy::TenancyConfig;
use server::{AdmissionConfig, FaultRates, InstancePool, RetryBudget, RetryPolicy};

/// Configuration of one fleet run.
///
/// `threads` controls only how many workers the host shards are spread
/// across — it has **no effect on results**: a 1-thread run is
/// bit-identical to an N-thread run with the same config (asserted by
/// `tests/fleet_determinism.rs`).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of hosts behind the load balancer.
    pub hosts: usize,
    /// Worker threads the hosts are sharded across (results-neutral).
    pub threads: usize,
    /// Total invocations synthesized fleet-wide.
    pub invocations: usize,
    /// Keep-alive window applied by every host's instance pool, ms.
    pub keep_alive_ms: f64,
    /// Front-end routing policy.
    pub policy: RoutingPolicy,
    /// Root seed; every random stream (traffic lanes, per-host fault
    /// plans) is split from it, so the whole fleet is a pure function of
    /// this value and the config.
    pub seed: u64,
    /// Number of *deployed* logical functions across the fleet. Each
    /// maps onto one of the 20 paper-suite performance profiles
    /// (`population % 20`); popularity follows the suite's Zipf-like
    /// traffic weights with a deterministic heavy-tail spread.
    pub population: usize,
    /// Mean invocation rate per host, in invocations per second. The
    /// fleet-wide arrival rate is `hosts × per_host_rate_per_sec`.
    pub per_host_rate_per_sec: f64,
    /// Fault-injection rates applied by every host (each host draws
    /// from its own split stream). All-zero means no fault layer at all.
    pub fault_rates: FaultRates,
    /// Cold-start (spawn) overhead charged by the latency model, ms.
    /// Only used when `cold_start_model` is `Instant` (no snapshots: a
    /// cold start is a full boot); the snapshot models price restores
    /// from the working set instead.
    pub cold_start_ms: f64,
    /// How cold starts bring memory up: `Instant` (flat boot cost,
    /// pre-snapshot behavior), `LazyPaging` (snapshot restore, one
    /// fault per page) or `ReapPrefetch` (record-and-prefetch).
    pub cold_start_model: ColdStartModel,
    /// Restore-path latency parameters for the snapshot models.
    pub snapshot_timings: SnapshotTimings,
    /// Deadline burned by a timed-out attempt, ms.
    pub timeout_ms: f64,
    /// Retry policy applied by every host.
    pub retry: RetryPolicy,
    /// Per-host event-ring capacity (0 disables lifecycle tracing).
    pub events_capacity: usize,
    /// Host fault domains: seeded crash/degrade schedules.
    /// [`ChaosConfig::none`] (the default) is bit-transparent.
    pub chaos: ChaosConfig,
    /// Health-probe knobs driving failover routing (only consulted when
    /// chaos is enabled).
    pub health: HealthConfig,
    /// Hedged re-dispatch toward half-open hosts.
    /// [`HedgeConfig::disabled`] (the default) is bit-transparent.
    pub hedge: HedgeConfig,
    /// Token-bucket retry budget per function, applied host-locally.
    /// [`RetryBudget::unlimited`] (the default) is bit-transparent.
    pub retry_budget: RetryBudget,
    /// SLO-driven admission control (reserved/burst concurrency and the
    /// load-shedding ladder). Disabled by default — bit-transparent.
    pub admission: AdmissionConfig,
    /// Non-stationary traffic shape (diurnal ramp + flash crowd).
    /// [`SurgeConfig::none`] (the default) is bit-transparent.
    pub surge: SurgeConfig,
    /// Predictive pre-warming and per-function adaptive keep-alive.
    /// [`PrewarmConfig::disabled`] (the default) is bit-transparent.
    pub prewarm: PrewarmConfig,
    /// Cross-function page sharing and multi-tenant contention.
    /// [`TenancyConfig::disabled`] (the default) is bit-transparent.
    pub tenancy: TenancyConfig,
    /// Causal span sampling: every `trace_sample`-th dispatch records a
    /// full span tree (route → admission → restore → execute →
    /// backoff). `0` (the default) disables tracing and is
    /// bit-transparent.
    pub trace_sample: u64,
    /// Windowed time-series width in simulated milliseconds: per-window
    /// latency percentiles, shed rate, SLO burn and cold/luke/warm mix.
    /// `0` (the default) disables the series and is bit-transparent.
    pub series_window_ms: f64,
    /// Latency SLO for the series' burn rate, ms. `0` means no SLO —
    /// the burn column stays all-zero.
    pub series_slo_ms: f64,
}

/// Hard cap on the merged fleet-wide event-ring capacity
/// (`events_capacity × hosts`). Beyond this the allocation itself is the
/// bug: 16 Mi events is already ~0.5 GiB of ring.
pub const MAX_MERGED_EVENTS: usize = 1 << 24;

impl Default for FleetConfig {
    /// A 16-host fleet under keep-alive-aware routing: 20k invocations,
    /// 10-minute keep-alive, 200 deployed functions, 20 invocations per
    /// host-second, no faults, no event tracing.
    fn default() -> Self {
        FleetConfig {
            hosts: 16,
            threads: 1,
            invocations: 20_000,
            keep_alive_ms: 10.0 * 60_000.0,
            policy: RoutingPolicy::KeepAliveAware,
            seed: 0x6C75_6B65,
            population: 200,
            per_host_rate_per_sec: 20.0,
            fault_rates: FaultRates::zero(),
            cold_start_ms: 125.0,
            cold_start_model: ColdStartModel::Instant,
            snapshot_timings: SnapshotTimings::default(),
            timeout_ms: 250.0,
            retry: RetryPolicy::default(),
            events_capacity: 0,
            chaos: ChaosConfig::none(),
            health: HealthConfig::default(),
            hedge: HedgeConfig::disabled(),
            retry_budget: RetryBudget::unlimited(),
            admission: AdmissionConfig::disabled(),
            surge: SurgeConfig::none(),
            prewarm: PrewarmConfig::disabled(),
            tenancy: TenancyConfig::disabled(),
            trace_sample: 0,
            series_window_ms: 0.0,
            series_slo_ms: 0.0,
        }
    }
}

impl FleetConfig {
    /// Validates every field, naming the offending one.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.hosts == 0 {
            return Err(SimError::invalid_config(
                "fleet.hosts",
                "at least one host is required",
            ));
        }
        if self.threads == 0 {
            return Err(SimError::invalid_config(
                "fleet.threads",
                "at least one worker thread is required",
            ));
        }
        if self.invocations == 0 {
            return Err(SimError::invalid_config(
                "fleet.invocations",
                "at least one invocation is required",
            ));
        }
        if self.population == 0 {
            return Err(SimError::invalid_config(
                "fleet.population",
                "at least one deployed function is required",
            ));
        }
        if !(self.per_host_rate_per_sec > 0.0 && self.per_host_rate_per_sec.is_finite()) {
            return Err(SimError::invalid_config(
                "fleet.per_host_rate_per_sec",
                format!(
                    "per-host rate must be positive and finite, got {}",
                    self.per_host_rate_per_sec
                ),
            ));
        }
        for (field, value) in [
            ("fleet.cold_start_ms", self.cold_start_ms),
            ("fleet.timeout_ms", self.timeout_ms),
            ("fleet.series_window_ms", self.series_window_ms),
            ("fleet.series_slo_ms", self.series_slo_ms),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(SimError::invalid_config(
                    field,
                    format!("must be ≥ 0 and finite, got {value}"),
                ));
            }
        }
        match self.events_capacity.checked_mul(self.hosts) {
            Some(merged) if merged <= MAX_MERGED_EVENTS => {}
            _ => {
                return Err(SimError::invalid_config(
                    "fleet.events_capacity",
                    format!(
                        "events_capacity × hosts must not exceed {MAX_MERGED_EVENTS} \
                         ({} × {} overflows the merged ring)",
                        self.events_capacity, self.hosts
                    ),
                ));
            }
        }
        // Reuse the pool's, fault layer's and snapshot layer's own
        // validation.
        InstancePool::try_new(self.keep_alive_ms)?;
        server::FaultPlan::new(self.seed, self.fault_rates)?;
        self.snapshot_timings.validate()?;
        self.chaos.validate()?;
        self.health.validate()?;
        self.hedge.validate()?;
        self.retry_budget.validate()?;
        self.admission.validate()?;
        self.surge.validate()?;
        self.prewarm.validate()?;
        self.tenancy.validate()?;
        if self.prewarm.enabled && self.prewarm.min_hold_ms > self.keep_alive_ms {
            return Err(SimError::invalid_config(
                "prewarm.min_hold_ms",
                format!(
                    "hold floor must not exceed the keep-alive window ({} ms)",
                    self.keep_alive_ms
                ),
            ));
        }
        Ok(())
    }

    /// Whether predictive pre-warming / adaptive keep-alive is on. When
    /// false, hosts take the exact fixed-keep-alive code path and export
    /// byte-identical output — the disabled feature doesn't exist.
    pub fn prewarm_enabled(&self) -> bool {
        self.prewarm.enabled
    }

    /// Whether any tenancy modeling (page-sharing dedup or contention)
    /// is on. When false, hosts take the exact pre-tenancy code path
    /// and export byte-identical output — the disabled feature doesn't
    /// exist.
    pub fn tenancy_enabled(&self) -> bool {
        self.tenancy.enabled()
    }

    /// Fleet-wide arrival rate in invocations per second.
    pub fn total_rate_per_sec(&self) -> f64 {
        self.hosts as f64 * self.per_host_rate_per_sec
    }

    /// Capacity of the merged fleet-wide event ring. Guaranteed not to
    /// overflow (and to sit under [`MAX_MERGED_EVENTS`]) by
    /// [`FleetConfig::validate`].
    pub fn merged_events_capacity(&self) -> usize {
        self.events_capacity.saturating_mul(self.hosts)
    }

    /// Whether span tracing is on (some dispatches are sampled).
    pub fn tracing_enabled(&self) -> bool {
        self.trace_sample > 0
    }

    /// Whether dispatch `dispatch` records a span tree under this
    /// config's sampling stride.
    pub fn samples(&self, dispatch: u64) -> bool {
        self.trace_sample > 0 && dispatch.is_multiple_of(self.trace_sample)
    }

    /// Whether the windowed time-series is on.
    pub fn series_enabled(&self) -> bool {
        self.series_window_ms > 0.0
    }

    /// Whether any resilience machinery is switched on. When false, the
    /// run takes the exact pre-resilience code path and exports
    /// byte-identical output — disabled features don't exist.
    pub fn resilience_enabled(&self) -> bool {
        !self.chaos.is_none()
            || self.hedge.enabled
            || self.retry_budget.is_limited()
            || self.admission.enabled
            || !self.surge.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use luke_tenancy::ContentionConfig;

    #[test]
    fn default_config_is_valid() {
        assert!(FleetConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_fields_are_named() {
        let cases: Vec<(FleetConfig, &str)> = vec![
            (
                FleetConfig {
                    hosts: 0,
                    ..FleetConfig::default()
                },
                "fleet.hosts",
            ),
            (
                FleetConfig {
                    threads: 0,
                    ..FleetConfig::default()
                },
                "fleet.threads",
            ),
            (
                FleetConfig {
                    invocations: 0,
                    ..FleetConfig::default()
                },
                "fleet.invocations",
            ),
            (
                FleetConfig {
                    population: 0,
                    ..FleetConfig::default()
                },
                "fleet.population",
            ),
            (
                FleetConfig {
                    per_host_rate_per_sec: 0.0,
                    ..FleetConfig::default()
                },
                "fleet.per_host_rate_per_sec",
            ),
            (
                FleetConfig {
                    cold_start_ms: f64::NAN,
                    ..FleetConfig::default()
                },
                "fleet.cold_start_ms",
            ),
            (
                FleetConfig {
                    series_window_ms: -1.0,
                    ..FleetConfig::default()
                },
                "fleet.series_window_ms",
            ),
            (
                FleetConfig {
                    series_slo_ms: f64::NAN,
                    ..FleetConfig::default()
                },
                "fleet.series_slo_ms",
            ),
            (
                FleetConfig {
                    events_capacity: usize::MAX / 2,
                    ..FleetConfig::default()
                },
                "fleet.events_capacity",
            ),
            (
                FleetConfig {
                    events_capacity: MAX_MERGED_EVENTS,
                    hosts: 2,
                    ..FleetConfig::default()
                },
                "fleet.events_capacity",
            ),
            (
                FleetConfig {
                    snapshot_timings: SnapshotTimings {
                        page_fault_us: f64::NAN,
                        ..SnapshotTimings::default()
                    },
                    ..FleetConfig::default()
                },
                "snapshot.page_fault_us",
            ),
            (
                FleetConfig {
                    keep_alive_ms: -5.0,
                    ..FleetConfig::default()
                },
                "pool.keep_alive_ms",
            ),
            (
                FleetConfig {
                    fault_rates: FaultRates::uniform(1.5),
                    ..FleetConfig::default()
                },
                "fault.crash",
            ),
            (
                FleetConfig {
                    chaos: ChaosConfig {
                        host_mtbf_ms: -1.0,
                        ..ChaosConfig::none()
                    },
                    ..FleetConfig::default()
                },
                "chaos.host_mtbf_ms",
            ),
            (
                FleetConfig {
                    health: HealthConfig {
                        probe_interval_ms: 0.0,
                        ..HealthConfig::default()
                    },
                    ..FleetConfig::default()
                },
                "health.probe_interval_ms",
            ),
            (
                FleetConfig {
                    hedge: HedgeConfig {
                        enabled: true,
                        max_fraction: 2.0,
                    },
                    ..FleetConfig::default()
                },
                "hedge.max_fraction",
            ),
            (
                FleetConfig {
                    retry_budget: RetryBudget {
                        max_tokens: f64::NAN,
                        token_ratio: 0.1,
                    },
                    ..FleetConfig::default()
                },
                "retry_budget.max_tokens",
            ),
            (
                FleetConfig {
                    admission: AdmissionConfig {
                        enabled: true,
                        host_concurrency: 0,
                        ..AdmissionConfig::disabled()
                    },
                    ..FleetConfig::default()
                },
                "admission.host_concurrency",
            ),
            (
                FleetConfig {
                    surge: SurgeConfig {
                        diurnal_amplitude: 1.5,
                        ..SurgeConfig::none()
                    },
                    ..FleetConfig::default()
                },
                "surge.diurnal_amplitude",
            ),
            (
                FleetConfig {
                    prewarm: PrewarmConfig {
                        decay_quantile: 1.5,
                        ..PrewarmConfig::default_enabled()
                    },
                    ..FleetConfig::default()
                },
                "prewarm.decay_quantile",
            ),
            (
                FleetConfig {
                    keep_alive_ms: 500.0,
                    prewarm: PrewarmConfig::default_enabled(), // 1 s floor
                    ..FleetConfig::default()
                },
                "prewarm.min_hold_ms",
            ),
            (
                FleetConfig {
                    tenancy: TenancyConfig {
                        cow_dirty_fraction: 1.5,
                        ..TenancyConfig::default_enabled()
                    },
                    ..FleetConfig::default()
                },
                "tenancy.cow_dirty_fraction",
            ),
            (
                FleetConfig {
                    tenancy: TenancyConfig {
                        contention: ContentionConfig {
                            knee: 1.0,
                            ..ContentionConfig::default_enabled()
                        },
                        ..TenancyConfig::default_enabled()
                    },
                    ..FleetConfig::default()
                },
                "tenancy.knee",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err();
            let msg = format!("{err}");
            assert!(msg.contains(field), "expected {field} in {msg}");
            assert_eq!(err.exit_code(), 3);
        }
    }

    #[test]
    fn resilience_is_off_by_default_and_each_knob_flips_it() {
        assert!(!FleetConfig::default().resilience_enabled());
        let flipped = [
            FleetConfig {
                chaos: ChaosConfig {
                    host_mtbf_ms: 10_000.0,
                    crash_downtime_ms: 1_000.0,
                    ..ChaosConfig::none()
                },
                ..FleetConfig::default()
            },
            FleetConfig {
                hedge: HedgeConfig {
                    enabled: true,
                    max_fraction: 0.1,
                },
                ..FleetConfig::default()
            },
            FleetConfig {
                retry_budget: RetryBudget::new(10.0, 0.1).unwrap(),
                ..FleetConfig::default()
            },
            FleetConfig {
                admission: AdmissionConfig {
                    enabled: true,
                    reserved_concurrency: 1,
                    burst_concurrency: 4,
                    host_concurrency: 64,
                    memory_pressure_instances: 0,
                },
                ..FleetConfig::default()
            },
            FleetConfig {
                surge: SurgeConfig {
                    flash_multiplier: 5.0,
                    flash_duration_ms: 1_000.0,
                    ..SurgeConfig::none()
                },
                ..FleetConfig::default()
            },
        ];
        for config in flipped {
            assert!(config.resilience_enabled());
            assert!(config.validate().is_ok());
        }
    }

    #[test]
    fn prewarm_is_off_by_default_and_validates_when_enabled() {
        assert!(!FleetConfig::default().prewarm_enabled());
        let on = FleetConfig {
            prewarm: PrewarmConfig::default_enabled(),
            ..FleetConfig::default()
        };
        assert!(on.prewarm_enabled());
        assert!(on.validate().is_ok());
    }

    #[test]
    fn tenancy_is_off_by_default_and_either_knob_flips_it() {
        assert!(!FleetConfig::default().tenancy_enabled());
        let dedup_only = FleetConfig {
            tenancy: TenancyConfig::dedup_enabled(),
            ..FleetConfig::default()
        };
        assert!(dedup_only.tenancy_enabled());
        assert!(dedup_only.validate().is_ok());
        let both = FleetConfig {
            tenancy: TenancyConfig::default_enabled(),
            ..FleetConfig::default()
        };
        assert!(both.tenancy_enabled());
        assert!(both.validate().is_ok());
    }

    #[test]
    fn merged_events_capacity_is_validated_and_exact() {
        let config = FleetConfig {
            events_capacity: 256,
            hosts: 64,
            ..FleetConfig::default()
        };
        assert!(config.validate().is_ok());
        assert_eq!(config.merged_events_capacity(), 256 * 64);
        let at_cap = FleetConfig {
            events_capacity: MAX_MERGED_EVENTS / 16,
            hosts: 16,
            ..FleetConfig::default()
        };
        assert!(at_cap.validate().is_ok());
        assert_eq!(at_cap.merged_events_capacity(), MAX_MERGED_EVENTS);
    }

    #[test]
    fn total_rate_scales_with_hosts() {
        let config = FleetConfig {
            hosts: 32,
            per_host_rate_per_sec: 10.0,
            ..FleetConfig::default()
        };
        assert_eq!(config.total_rate_per_sec(), 320.0);
    }
}
