//! Fleet-level configuration and validation.

use crate::route::RoutingPolicy;
use luke_common::SimError;
use luke_snapshot::{ColdStartModel, SnapshotTimings};
use server::{FaultRates, InstancePool, RetryPolicy};

/// Configuration of one fleet run.
///
/// `threads` controls only how many workers the host shards are spread
/// across — it has **no effect on results**: a 1-thread run is
/// bit-identical to an N-thread run with the same config (asserted by
/// `tests/fleet_determinism.rs`).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of hosts behind the load balancer.
    pub hosts: usize,
    /// Worker threads the hosts are sharded across (results-neutral).
    pub threads: usize,
    /// Total invocations synthesized fleet-wide.
    pub invocations: usize,
    /// Keep-alive window applied by every host's instance pool, ms.
    pub keep_alive_ms: f64,
    /// Front-end routing policy.
    pub policy: RoutingPolicy,
    /// Root seed; every random stream (traffic lanes, per-host fault
    /// plans) is split from it, so the whole fleet is a pure function of
    /// this value and the config.
    pub seed: u64,
    /// Number of *deployed* logical functions across the fleet. Each
    /// maps onto one of the 20 paper-suite performance profiles
    /// (`population % 20`); popularity follows the suite's Zipf-like
    /// traffic weights with a deterministic heavy-tail spread.
    pub population: usize,
    /// Mean invocation rate per host, in invocations per second. The
    /// fleet-wide arrival rate is `hosts × per_host_rate_per_sec`.
    pub per_host_rate_per_sec: f64,
    /// Fault-injection rates applied by every host (each host draws
    /// from its own split stream). All-zero means no fault layer at all.
    pub fault_rates: FaultRates,
    /// Cold-start (spawn) overhead charged by the latency model, ms.
    /// Only used when `cold_start_model` is `Instant` (no snapshots: a
    /// cold start is a full boot); the snapshot models price restores
    /// from the working set instead.
    pub cold_start_ms: f64,
    /// How cold starts bring memory up: `Instant` (flat boot cost,
    /// pre-snapshot behavior), `LazyPaging` (snapshot restore, one
    /// fault per page) or `ReapPrefetch` (record-and-prefetch).
    pub cold_start_model: ColdStartModel,
    /// Restore-path latency parameters for the snapshot models.
    pub snapshot_timings: SnapshotTimings,
    /// Deadline burned by a timed-out attempt, ms.
    pub timeout_ms: f64,
    /// Retry policy applied by every host.
    pub retry: RetryPolicy,
    /// Per-host event-ring capacity (0 disables lifecycle tracing).
    pub events_capacity: usize,
}

impl Default for FleetConfig {
    /// A 16-host fleet under keep-alive-aware routing: 20k invocations,
    /// 10-minute keep-alive, 200 deployed functions, 20 invocations per
    /// host-second, no faults, no event tracing.
    fn default() -> Self {
        FleetConfig {
            hosts: 16,
            threads: 1,
            invocations: 20_000,
            keep_alive_ms: 10.0 * 60_000.0,
            policy: RoutingPolicy::KeepAliveAware,
            seed: 0x6C75_6B65,
            population: 200,
            per_host_rate_per_sec: 20.0,
            fault_rates: FaultRates::zero(),
            cold_start_ms: 125.0,
            cold_start_model: ColdStartModel::Instant,
            snapshot_timings: SnapshotTimings::default(),
            timeout_ms: 250.0,
            retry: RetryPolicy::default(),
            events_capacity: 0,
        }
    }
}

impl FleetConfig {
    /// Validates every field, naming the offending one.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.hosts == 0 {
            return Err(SimError::invalid_config(
                "fleet.hosts",
                "at least one host is required",
            ));
        }
        if self.threads == 0 {
            return Err(SimError::invalid_config(
                "fleet.threads",
                "at least one worker thread is required",
            ));
        }
        if self.invocations == 0 {
            return Err(SimError::invalid_config(
                "fleet.invocations",
                "at least one invocation is required",
            ));
        }
        if self.population == 0 {
            return Err(SimError::invalid_config(
                "fleet.population",
                "at least one deployed function is required",
            ));
        }
        if !(self.per_host_rate_per_sec > 0.0 && self.per_host_rate_per_sec.is_finite()) {
            return Err(SimError::invalid_config(
                "fleet.per_host_rate_per_sec",
                format!(
                    "per-host rate must be positive and finite, got {}",
                    self.per_host_rate_per_sec
                ),
            ));
        }
        for (field, value) in [
            ("fleet.cold_start_ms", self.cold_start_ms),
            ("fleet.timeout_ms", self.timeout_ms),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(SimError::invalid_config(
                    field,
                    format!("must be ≥ 0 and finite, got {value}"),
                ));
            }
        }
        // Reuse the pool's, fault layer's and snapshot layer's own
        // validation.
        InstancePool::try_new(self.keep_alive_ms)?;
        server::FaultPlan::new(self.seed, self.fault_rates)?;
        self.snapshot_timings.validate()?;
        Ok(())
    }

    /// Fleet-wide arrival rate in invocations per second.
    pub fn total_rate_per_sec(&self) -> f64 {
        self.hosts as f64 * self.per_host_rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(FleetConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_fields_are_named() {
        let cases: Vec<(FleetConfig, &str)> = vec![
            (
                FleetConfig {
                    hosts: 0,
                    ..FleetConfig::default()
                },
                "fleet.hosts",
            ),
            (
                FleetConfig {
                    threads: 0,
                    ..FleetConfig::default()
                },
                "fleet.threads",
            ),
            (
                FleetConfig {
                    invocations: 0,
                    ..FleetConfig::default()
                },
                "fleet.invocations",
            ),
            (
                FleetConfig {
                    population: 0,
                    ..FleetConfig::default()
                },
                "fleet.population",
            ),
            (
                FleetConfig {
                    per_host_rate_per_sec: 0.0,
                    ..FleetConfig::default()
                },
                "fleet.per_host_rate_per_sec",
            ),
            (
                FleetConfig {
                    cold_start_ms: f64::NAN,
                    ..FleetConfig::default()
                },
                "fleet.cold_start_ms",
            ),
            (
                FleetConfig {
                    snapshot_timings: SnapshotTimings {
                        page_fault_us: f64::NAN,
                        ..SnapshotTimings::default()
                    },
                    ..FleetConfig::default()
                },
                "snapshot.page_fault_us",
            ),
            (
                FleetConfig {
                    keep_alive_ms: -5.0,
                    ..FleetConfig::default()
                },
                "pool.keep_alive_ms",
            ),
            (
                FleetConfig {
                    fault_rates: FaultRates::uniform(1.5),
                    ..FleetConfig::default()
                },
                "fault.crash",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err();
            let msg = format!("{err}");
            assert!(msg.contains(field), "expected {field} in {msg}");
            assert_eq!(err.exit_code(), 3);
        }
    }

    #[test]
    fn total_rate_scales_with_hosts() {
        let config = FleetConfig {
            hosts: 32,
            per_host_rate_per_sec: 10.0,
            ..FleetConfig::default()
        };
        assert_eq!(config.total_rate_per_sec(), 320.0);
    }
}
