//! Front-end load balancing: where an invocation lands decides how warm
//! the instance that serves it is.
//!
//! The paper's core observation (§2) is that latency is governed not by
//! cold starts but by *interleaving*: how many foreign invocations run
//! on a host between two invocations of the same function. Routing
//! controls exactly that. Spreading a function across many hosts
//! ([`RoutingPolicy::RoundRobin`]) multiplies its per-host inter-arrival
//! gap by the fleet size, pushing every hit into the lukewarm regime;
//! pinning it to one host ([`RoutingPolicy::KeepAliveAware`]) keeps the
//! per-host gap at the fleet-wide gap, the best case for cache residency
//! — at the price of load imbalance, which
//! [`RoutingPolicy::LeastLoaded`] optimizes for instead.

use luke_common::rng::DetRng;
use luke_common::SimError;

/// Seed-space tag for the consistent-hash ring's virtual-node hashes.
const RING_STREAM: u64 = 0x7269_6E67; // "ring"
/// Seed-space tag for routing keys (function → ring position).
const KEY_STREAM: u64 = 0x6B_65_79; // "key"
/// Virtual nodes per host on the consistent-hash ring.
const VNODES_PER_HOST: usize = 16;

/// Front-end routing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Cycle through hosts regardless of function identity: perfect
    /// spatial balance, worst-case interleaving (every host sees every
    /// function rarely).
    RoundRobin,
    /// Send each invocation to the host with the least assigned work so
    /// far: balances temporal load, still scatters functions.
    LeastLoaded,
    /// Consistent-hash each *function* to a stable host so repeat
    /// invocations find their warm instance: the keep-alive-friendly
    /// policy the paper's characterization argues for.
    KeepAliveAware,
}

impl RoutingPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [RoutingPolicy; 3] = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::KeepAliveAware,
    ];

    /// Stable CLI/display label.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::KeepAliveAware => "keep-alive-aware",
        }
    }

    /// Parses a CLI label (accepts the canonical labels plus short
    /// aliases `rr`, `ll`, `kaa`).
    pub fn parse(text: &str) -> Result<Self, SimError> {
        match text {
            "round-robin" | "rr" => Ok(RoutingPolicy::RoundRobin),
            "least-loaded" | "ll" => Ok(RoutingPolicy::LeastLoaded),
            "keep-alive-aware" | "kaa" => Ok(RoutingPolicy::KeepAliveAware),
            other => Err(SimError::invalid_config(
                "fleet.policy",
                format!(
                    "unknown routing policy '{other}' (expected round-robin, least-loaded, or keep-alive-aware)"
                ),
            )),
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic front-end router. One instance routes one run's entire
/// arrival stream sequentially, so its internal state (round-robin
/// cursor, assigned-work ledger) is a pure function of the arrival
/// order.
#[derive(Clone, Debug)]
pub struct Router {
    policy: RoutingPolicy,
    hosts: usize,
    rr_next: usize,
    /// Expected service milliseconds assigned to each host so far.
    assigned_ms: Vec<f64>,
    /// Consistent-hash ring: (hash, host) sorted by hash. Built
    /// eagerly for every policy (it is tiny) so switching policies
    /// never changes struct layout.
    ring: Vec<(u64, usize)>,
}

impl Router {
    /// Builds a router over `hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero (validated upstream by
    /// `FleetConfig::validate`).
    pub fn new(policy: RoutingPolicy, hosts: usize) -> Self {
        assert!(hosts > 0, "router needs at least one host");
        let mut ring = Vec::with_capacity(hosts * VNODES_PER_HOST);
        for host in 0..hosts {
            let host_stream = DetRng::new(RING_STREAM).split(host as u64);
            for vnode in 0..VNODES_PER_HOST {
                ring.push((host_stream.split(vnode as u64).seed(), host));
            }
        }
        ring.sort_unstable();
        Router {
            policy,
            hosts,
            rr_next: 0,
            assigned_ms: vec![0.0; hosts],
            ring,
        }
    }

    /// Routes one invocation of `function`, whose expected cost is
    /// `expected_ms`, returning the target host index. `expected_ms`
    /// feeds the least-loaded ledger (all policies maintain it, so
    /// observability is policy-independent).
    pub fn route(&mut self, function: usize, expected_ms: f64) -> usize {
        let host = match self.policy {
            RoutingPolicy::RoundRobin => {
                let host = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.hosts;
                host
            }
            RoutingPolicy::LeastLoaded => {
                // min_by with total_cmp is stable here: equal loads
                // resolve to the lowest host index.
                self.assigned_ms
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
            RoutingPolicy::KeepAliveAware => {
                let key = DetRng::new(KEY_STREAM).split(function as u64).seed();
                // First vnode clockwise from the key; wrap to ring[0].
                let at = self.ring.partition_point(|&(hash, _)| hash < key);
                self.ring[at % self.ring.len()].1
            }
        };
        self.assigned_ms[host] += expected_ms;
        host
    }

    /// Expected-work ledger (ms per host), for imbalance reporting.
    pub fn assigned_ms(&self) -> &[f64] {
        &self.assigned_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for policy in RoutingPolicy::ALL {
            assert_eq!(RoutingPolicy::parse(policy.label()).unwrap(), policy);
        }
        assert_eq!(
            RoutingPolicy::parse("kaa").unwrap(),
            RoutingPolicy::KeepAliveAware
        );
        let err = RoutingPolicy::parse("random").unwrap_err();
        assert!(format!("{err}").contains("fleet.policy"));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut router = Router::new(RoutingPolicy::RoundRobin, 4);
        let targets: Vec<usize> = (0..8).map(|f| router.route(f, 1.0)).collect();
        assert_eq!(targets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_tracks_expected_work() {
        let mut router = Router::new(RoutingPolicy::LeastLoaded, 3);
        assert_eq!(router.route(0, 10.0), 0); // all tied → lowest index
        assert_eq!(router.route(1, 1.0), 1);
        assert_eq!(router.route(2, 1.0), 2);
        // Host 0 carries 10ms; the cheap hosts absorb the next work.
        assert_eq!(router.route(3, 1.0), 1);
        assert_eq!(router.route(4, 1.0), 2);
        assert_eq!(router.route(5, 1.0), 1);
    }

    #[test]
    fn keep_alive_aware_is_sticky_per_function() {
        let mut router = Router::new(RoutingPolicy::KeepAliveAware, 8);
        for function in 0..50 {
            let first = router.route(function, 1.0);
            for _ in 0..5 {
                assert_eq!(router.route(function, 1.0), first);
            }
        }
    }

    #[test]
    fn keep_alive_aware_spreads_functions_across_hosts() {
        let mut router = Router::new(RoutingPolicy::KeepAliveAware, 8);
        let mut used = std::collections::BTreeSet::new();
        for function in 0..200 {
            used.insert(router.route(function, 1.0));
        }
        // 200 functions over 8 hosts with 16 vnodes each: every host
        // should own a slice of the key space.
        assert_eq!(used.len(), 8, "hosts used: {used:?}");
    }

    #[test]
    fn consistent_hash_moves_few_keys_when_fleet_grows() {
        let mut small = Router::new(RoutingPolicy::KeepAliveAware, 8);
        let mut large = Router::new(RoutingPolicy::KeepAliveAware, 9);
        let moved = (0..1000)
            .filter(|&f| {
                let a = small.route(f, 1.0);
                let b = large.route(f, 1.0);
                a != b
            })
            .count();
        // Plain modulo hashing would move ~8/9 of keys; consistent
        // hashing should move roughly 1/9. Allow generous slack.
        assert!(moved < 350, "{moved} of 1000 keys moved");
    }

    #[test]
    fn routers_are_deterministic() {
        let mut a = Router::new(RoutingPolicy::KeepAliveAware, 16);
        let mut b = Router::new(RoutingPolicy::KeepAliveAware, 16);
        for f in 0..500 {
            assert_eq!(a.route(f % 37, 1.0), b.route(f % 37, 1.0));
        }
    }
}
