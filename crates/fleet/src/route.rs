//! Front-end load balancing: where an invocation lands decides how warm
//! the instance that serves it is.
//!
//! The paper's core observation (§2) is that latency is governed not by
//! cold starts but by *interleaving*: how many foreign invocations run
//! on a host between two invocations of the same function. Routing
//! controls exactly that. Spreading a function across many hosts
//! ([`RoutingPolicy::RoundRobin`]) multiplies its per-host inter-arrival
//! gap by the fleet size, pushing every hit into the lukewarm regime;
//! pinning it to one host ([`RoutingPolicy::KeepAliveAware`]) keeps the
//! per-host gap at the fleet-wide gap, the best case for cache residency
//! — at the price of load imbalance, which
//! [`RoutingPolicy::LeastLoaded`] optimizes for instead.
//!
//! Under chaos, every policy composes with *failover*: the router
//! consults the deterministic [`HealthView`](crate::health::HealthView)
//! and walks past hosts whose breaker is open, and can *hedge* an
//! invocation toward a half-open host by dispatching a second copy
//! elsewhere ([`HedgeConfig`]). Both decisions happen in the sequential
//! routing phase, so they preserve the 1-thread ≡ N-thread contract.

use luke_common::rng::DetRng;
use luke_common::SimError;

use crate::health::{HealthStatus, HealthView};

/// Seed-space tag for the consistent-hash ring's virtual-node hashes.
const RING_STREAM: u64 = 0x7269_6E67; // "ring"
/// Seed-space tag for routing keys (function → ring position).
const KEY_STREAM: u64 = 0x6B_65_79; // "key"
/// Virtual nodes per host on the consistent-hash ring.
const VNODES_PER_HOST: usize = 16;
/// How much of a host's *same-language* assigned work the
/// placement-aware score credits back as shared-page affinity: the
/// score is `assigned − AFFINITY_CREDIT × same_language_assigned`, so
/// same-language work counts half (its runtime and library pages are
/// already resident) while foreign work counts full (pure contention
/// pressure).
const AFFINITY_CREDIT: f64 = 0.5;

/// Front-end routing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Cycle through hosts regardless of function identity: perfect
    /// spatial balance, worst-case interleaving (every host sees every
    /// function rarely).
    RoundRobin,
    /// Send each invocation to the host with the least assigned work so
    /// far: balances temporal load, still scatters functions.
    LeastLoaded,
    /// Consistent-hash each *function* to a stable host so repeat
    /// invocations find their warm instance: the keep-alive-friendly
    /// policy the paper's characterization argues for.
    KeepAliveAware,
    /// Tenancy-aware placement: score hosts by shared-page affinity
    /// (same-language work already assigned there dedupes runtime and
    /// library pages) minus contention pressure (total assigned work),
    /// and send the invocation to the best score. Consolidates each
    /// language onto few hosts while still spreading aggregate load —
    /// see the `luke-tenancy` crate for the sharing model.
    PlacementAware,
}

impl RoutingPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [RoutingPolicy; 4] = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::KeepAliveAware,
        RoutingPolicy::PlacementAware,
    ];

    /// Stable CLI/display label.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::KeepAliveAware => "keep-alive-aware",
            RoutingPolicy::PlacementAware => "placement-aware",
        }
    }

    /// Parses a CLI label (accepts the canonical labels plus short
    /// aliases `rr`, `ll`, `kaa`, `pa`).
    pub fn parse(text: &str) -> Result<Self, SimError> {
        match text {
            "round-robin" | "rr" => Ok(RoutingPolicy::RoundRobin),
            "least-loaded" | "ll" => Ok(RoutingPolicy::LeastLoaded),
            "keep-alive-aware" | "kaa" => Ok(RoutingPolicy::KeepAliveAware),
            "placement-aware" | "pa" => Ok(RoutingPolicy::PlacementAware),
            other => Err(SimError::invalid_config(
                "fleet.policy",
                format!(
                    "unknown routing policy '{other}' (expected round-robin, least-loaded, keep-alive-aware, or placement-aware)"
                ),
            )),
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hedged-request knobs. [`HedgeConfig::disabled`] (the default) is
/// bit-transparent: no hedge copies, no extra counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Master switch.
    pub enabled: bool,
    /// Cap on hedged dispatches as a fraction of all dispatches — the
    /// hedge *budget* (e.g. 0.05 = at most 5% extra load).
    pub max_fraction: f64,
}

impl HedgeConfig {
    /// The disabled sentinel.
    pub fn disabled() -> Self {
        HedgeConfig {
            enabled: false,
            max_fraction: 0.0,
        }
    }

    /// Validates the knobs, naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.enabled && !(self.max_fraction > 0.0 && self.max_fraction <= 1.0) {
            return Err(SimError::invalid_config(
                "hedge.max_fraction",
                format!("must be in (0, 1] when enabled, got {}", self.max_fraction),
            ));
        }
        Ok(())
    }
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Where one invocation goes under failover routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteDecision {
    /// The primary target host.
    pub host: usize,
    /// Whether the policy's preferred host was skipped because its
    /// breaker was open.
    pub failed_over: bool,
    /// A second host to dispatch a hedge copy to (the primary is
    /// half-open and the hedge budget has room).
    pub hedge: Option<usize>,
}

/// Deterministic front-end router. One instance routes one run's entire
/// arrival stream sequentially, so its internal state (round-robin
/// cursor, assigned-work ledger) is a pure function of the arrival
/// order.
#[derive(Clone, Debug)]
pub struct Router {
    policy: RoutingPolicy,
    hosts: usize,
    rr_next: usize,
    /// Expected service milliseconds assigned to each host so far.
    assigned_ms: Vec<f64>,
    /// Consistent-hash ring: (hash, host) sorted by hash. Built
    /// eagerly for every policy (it is tiny) so switching policies
    /// never changes struct layout.
    ring: Vec<(u64, usize)>,
    /// Memoized ring lookups per function id. The ring is immutable for
    /// the router's lifetime, so `function → host` is a pure function;
    /// caching it turns the hot keep-alive-aware path from a hash +
    /// binary search into one indexed load. Grows on demand.
    kaa_cache: Vec<Option<usize>>,
    /// Language slot per function profile (`function % lang_of.len()`),
    /// for placement-aware affinity scoring. Empty means "one
    /// language": every function scores as the same tenant.
    lang_of: Vec<u8>,
    /// Number of distinct language slots.
    lang_count: usize,
    /// Expected milliseconds assigned per `host × language`, flattened
    /// `host * lang_count + lang` — the shared-page affinity ledger.
    lang_assigned: Vec<f64>,
    /// Dispatches routed so far (hedge copies not included).
    dispatches: u64,
    /// Dispatches that skipped an unhealthy preferred host.
    failovers: u64,
    /// Hedge copies issued.
    hedges: u64,
    /// Dispatches scored by the placement-aware policy.
    placement_routed: u64,
}

impl Router {
    /// Builds a router over `hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero (validated upstream by
    /// `FleetConfig::validate`).
    pub fn new(policy: RoutingPolicy, hosts: usize) -> Self {
        Self::with_languages(policy, hosts, Vec::new())
    }

    /// Builds a router that also knows each function profile's language
    /// slot (`function % lang_of.len()` maps functions onto profiles,
    /// the fleet-wide convention), so the placement-aware policy can
    /// score shared-page affinity. An empty table degenerates to a
    /// single language.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero (validated upstream by
    /// `FleetConfig::validate`).
    pub fn with_languages(policy: RoutingPolicy, hosts: usize, lang_of: Vec<u8>) -> Self {
        assert!(hosts > 0, "router needs at least one host");
        let mut ring = Vec::with_capacity(hosts * VNODES_PER_HOST);
        for host in 0..hosts {
            let host_stream = DetRng::new(RING_STREAM).split(host as u64);
            for vnode in 0..VNODES_PER_HOST {
                ring.push((host_stream.split(vnode as u64).seed(), host));
            }
        }
        ring.sort_unstable();
        let lang_count = lang_of.iter().map(|&l| l as usize + 1).max().unwrap_or(1);
        Router {
            policy,
            hosts,
            rr_next: 0,
            assigned_ms: vec![0.0; hosts],
            ring,
            kaa_cache: Vec::new(),
            lang_of,
            lang_count,
            lang_assigned: vec![0.0; hosts * lang_count],
            dispatches: 0,
            failovers: 0,
            hedges: 0,
            placement_routed: 0,
        }
    }

    /// The language slot of `function` under the profile mapping.
    fn language_of(&self, function: usize) -> usize {
        if self.lang_of.is_empty() {
            0
        } else {
            self.lang_of[function % self.lang_of.len()] as usize
        }
    }

    /// The host the policy would pick, advancing policy-internal state
    /// (the round-robin cursor) but not charging the work ledger.
    fn preferred(&mut self, function: usize) -> usize {
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let host = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.hosts;
                host
            }
            RoutingPolicy::LeastLoaded => {
                // min_by with total_cmp is stable here: equal loads
                // resolve to the lowest host index.
                self.assigned_ms
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
            RoutingPolicy::KeepAliveAware => {
                if function >= self.kaa_cache.len() {
                    self.kaa_cache.resize(function + 1, None);
                }
                match self.kaa_cache[function] {
                    Some(host) => host,
                    None => {
                        let key = DetRng::new(KEY_STREAM).split(function as u64).seed();
                        // First vnode clockwise from the key; wrap to
                        // ring[0].
                        let at = self.ring.partition_point(|&(hash, _)| hash < key);
                        let host = self.ring[at % self.ring.len()].1;
                        self.kaa_cache[function] = Some(host);
                        host
                    }
                }
            }
            RoutingPolicy::PlacementAware => {
                // Shared-page affinity minus contention pressure: a
                // host's total assigned work is its pressure, and
                // same-language work earns affinity credit because its
                // runtime and library pages are already resident there.
                // min_by with total_cmp resolves ties to the lowest
                // host index, like least-loaded.
                let lang = self.language_of(function);
                let lang_count = self.lang_count;
                let lang_assigned = &self.lang_assigned;
                self.assigned_ms
                    .iter()
                    .enumerate()
                    .map(|(host, &assigned)| {
                        (host, assigned - AFFINITY_CREDIT * lang_assigned[host * lang_count + lang])
                    })
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(host, _)| host)
                    .unwrap_or(0)
            }
        }
    }

    /// Charges `expected_ms` of work on `host` to the load ledgers —
    /// the total ledger always, the per-language affinity ledger only
    /// under the placement-aware policy (so every other policy leaves
    /// it untouched and bit-cold).
    fn charge(&mut self, host: usize, function: usize, expected_ms: f64) {
        self.assigned_ms[host] += expected_ms;
        if self.policy == RoutingPolicy::PlacementAware {
            let lang = self.language_of(function);
            self.lang_assigned[host * self.lang_count + lang] += expected_ms;
        }
    }

    /// Routes one invocation of `function`, whose expected cost is
    /// `expected_ms`, returning the target host index. `expected_ms`
    /// feeds the least-loaded ledger (all policies maintain it, so
    /// observability is policy-independent).
    pub fn route(&mut self, function: usize, expected_ms: f64) -> usize {
        let host = self.preferred(function);
        self.charge(host, function, expected_ms);
        self.dispatches += 1;
        if self.policy == RoutingPolicy::PlacementAware {
            self.placement_routed += 1;
        }
        host
    }

    /// Routes one invocation around open breakers: the preferred host is
    /// used unless `health` marks it `Unhealthy`, in which case the
    /// walk `preferred+1, preferred+2, …` (mod hosts) lands on the first
    /// routable host. If *every* breaker is open the router fails open
    /// back to the preferred host — the caller's all-down check decides
    /// whether that is a hard error.
    ///
    /// When the chosen host is `HalfOpen` and `hedge` is enabled with
    /// budget to spare, a hedge target (the next routable host) is
    /// returned too; the caller dispatches both copies and keeps the
    /// faster completion.
    pub fn route_resilient(
        &mut self,
        function: usize,
        expected_ms: f64,
        health: &HealthView,
        hedge: &HedgeConfig,
    ) -> RouteDecision {
        let preferred = self.preferred(function);
        let mut host = preferred;
        let mut failed_over = false;
        if health.status(preferred) == HealthStatus::Unhealthy {
            for step in 1..self.hosts {
                let candidate = (preferred + step) % self.hosts;
                if health.status(candidate) != HealthStatus::Unhealthy {
                    host = candidate;
                    failed_over = true;
                    break;
                }
            }
        }
        self.charge(host, function, expected_ms);
        self.dispatches += 1;
        if self.policy == RoutingPolicy::PlacementAware {
            self.placement_routed += 1;
        }
        if failed_over {
            self.failovers += 1;
        }
        let mut hedge_target = None;
        if hedge.enabled
            && health.status(host) == HealthStatus::HalfOpen
            && (self.hedges + 1) as f64 <= hedge.max_fraction * self.dispatches as f64
        {
            // Hedge toward the next routable host after the primary.
            for step in 1..self.hosts {
                let candidate = (host + step) % self.hosts;
                if health.status(candidate) != HealthStatus::Unhealthy {
                    hedge_target = Some(candidate);
                    break;
                }
            }
            if let Some(h) = hedge_target {
                self.charge(h, function, expected_ms);
                self.hedges += 1;
            }
        }
        RouteDecision {
            host,
            failed_over,
            hedge: hedge_target,
        }
    }

    /// Expected-work ledger (ms per host), for imbalance reporting.
    pub fn assigned_ms(&self) -> &[f64] {
        &self.assigned_ms
    }

    /// Dispatches that skipped an unhealthy preferred host.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Hedge copies issued so far.
    pub fn hedges(&self) -> u64 {
        self.hedges
    }

    /// Dispatches scored by the placement-aware policy (0 under every
    /// other policy).
    pub fn placement_routed(&self) -> u64 {
        self.placement_routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for policy in RoutingPolicy::ALL {
            assert_eq!(RoutingPolicy::parse(policy.label()).unwrap(), policy);
        }
        assert_eq!(
            RoutingPolicy::parse("kaa").unwrap(),
            RoutingPolicy::KeepAliveAware
        );
        let err = RoutingPolicy::parse("random").unwrap_err();
        assert!(format!("{err}").contains("fleet.policy"));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut router = Router::new(RoutingPolicy::RoundRobin, 4);
        let targets: Vec<usize> = (0..8).map(|f| router.route(f, 1.0)).collect();
        assert_eq!(targets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_tracks_expected_work() {
        let mut router = Router::new(RoutingPolicy::LeastLoaded, 3);
        assert_eq!(router.route(0, 10.0), 0); // all tied → lowest index
        assert_eq!(router.route(1, 1.0), 1);
        assert_eq!(router.route(2, 1.0), 2);
        // Host 0 carries 10ms; the cheap hosts absorb the next work.
        assert_eq!(router.route(3, 1.0), 1);
        assert_eq!(router.route(4, 1.0), 2);
        assert_eq!(router.route(5, 1.0), 1);
    }

    #[test]
    fn keep_alive_aware_is_sticky_per_function() {
        let mut router = Router::new(RoutingPolicy::KeepAliveAware, 8);
        for function in 0..50 {
            let first = router.route(function, 1.0);
            for _ in 0..5 {
                assert_eq!(router.route(function, 1.0), first);
            }
        }
    }

    #[test]
    fn keep_alive_aware_spreads_functions_across_hosts() {
        let mut router = Router::new(RoutingPolicy::KeepAliveAware, 8);
        let mut used = std::collections::BTreeSet::new();
        for function in 0..200 {
            used.insert(router.route(function, 1.0));
        }
        // 200 functions over 8 hosts with 16 vnodes each: every host
        // should own a slice of the key space.
        assert_eq!(used.len(), 8, "hosts used: {used:?}");
    }

    #[test]
    fn consistent_hash_moves_few_keys_when_fleet_grows() {
        let mut small = Router::new(RoutingPolicy::KeepAliveAware, 8);
        let mut large = Router::new(RoutingPolicy::KeepAliveAware, 9);
        let moved = (0..1000)
            .filter(|&f| {
                let a = small.route(f, 1.0);
                let b = large.route(f, 1.0);
                a != b
            })
            .count();
        // Plain modulo hashing would move ~8/9 of keys; consistent
        // hashing should move roughly 1/9. Allow generous slack.
        assert!(moved < 350, "{moved} of 1000 keys moved");
    }

    #[test]
    fn placement_aware_consolidates_languages_under_even_load() {
        // Two languages, four hosts, uniform work: the affinity credit
        // should pull each language onto its own host subset instead of
        // scattering both everywhere.
        let lang_of = vec![0u8, 1u8];
        let mut router = Router::with_languages(RoutingPolicy::PlacementAware, 4, lang_of);
        let mut per_host_lang = vec![std::collections::BTreeSet::new(); 4];
        for f in 0..400 {
            let host = router.route(f, 1.0);
            per_host_lang[host].insert(f % 2);
        }
        let mixed = per_host_lang.iter().filter(|langs| langs.len() > 1).count();
        assert!(
            mixed <= 1,
            "placement-aware should keep languages apart: {per_host_lang:?}"
        );
        // Aggregate load still spreads: no host is idle.
        assert!(router.assigned_ms().iter().all(|&ms| ms > 0.0));
        assert_eq!(router.placement_routed(), 400);
    }

    #[test]
    fn placement_aware_prefers_the_same_language_host_over_an_equally_loaded_one() {
        let mut router =
            Router::with_languages(RoutingPolicy::PlacementAware, 2, vec![0u8, 1u8]);
        // Function 0 (lang 0) lands on host 0 (tie → lowest index).
        assert_eq!(router.route(0, 1.0), 0);
        // Another lang-0 function: host 0 carries 1ms total but earns
        // 0.5ms affinity credit (score 0.5) vs host 1's 0 — still the
        // pressure-optimal pick is host 1, and with credit the choice
        // depends on magnitudes. Charge host 1 with foreign work first
        // so the affinity decision is isolated:
        assert_eq!(router.route(1, 1.0), 1); // lang 1 → host 1 (least loaded)
        // Now both hosts carry 1.0ms. A lang-0 invocation scores
        // host 0 at 1.0 − 0.5×1.0 = 0.5 and host 1 at 1.0 → host 0.
        assert_eq!(router.route(2, 1.0), 0);
        // And a lang-1 invocation symmetrically sticks to host 1.
        assert_eq!(router.route(3, 1.0), 1);
    }

    #[test]
    fn placement_aware_without_languages_degenerates_to_load_spreading() {
        // An empty language table means every function shares one
        // language: the score is (1 − credit) × assigned, which orders
        // hosts exactly like least-loaded.
        let mut placement = Router::new(RoutingPolicy::PlacementAware, 3);
        let mut least = Router::new(RoutingPolicy::LeastLoaded, 3);
        for f in 0..60 {
            let cost = 1.0 + (f % 5) as f64;
            assert_eq!(placement.route(f, cost), least.route(f, cost));
        }
        assert_eq!(placement.placement_routed(), 60);
        assert_eq!(least.placement_routed(), 0, "only placement-aware counts");
    }

    #[test]
    fn routers_are_deterministic() {
        let mut a = Router::new(RoutingPolicy::KeepAliveAware, 16);
        let mut b = Router::new(RoutingPolicy::KeepAliveAware, 16);
        for f in 0..500 {
            assert_eq!(a.route(f % 37, 1.0), b.route(f % 37, 1.0));
        }
    }

    mod resilient {
        use super::*;
        use crate::chaos::{ChaosPlan, HostSchedule};
        use crate::health::HealthConfig;

        /// A health view over `hosts` hosts with host 0 in the given
        /// breaker state, derived the real way: probes against an
        /// explicit chaos window.
        fn view_with_host0(hosts: usize, status: HealthStatus) -> HealthView {
            let mut schedules = vec![HostSchedule::none(); hosts];
            schedules[0] = HostSchedule::explicit(&[(0.0, 5_000.0)], &[]);
            let plan = ChaosPlan::from_schedules(schedules);
            let mut view = HealthView::new(hosts, HealthConfig::default());
            match status {
                HealthStatus::Healthy => {}
                // Probes at 500…4500 fail; the 5000 one succeeds.
                HealthStatus::Unhealthy => view.advance_to(4_500.0, &plan),
                HealthStatus::HalfOpen => view.advance_to(5_000.0, &plan),
            }
            assert_eq!(view.status(0), status);
            view
        }

        #[test]
        fn healthy_fleet_routes_exactly_like_the_plain_path() {
            let view = view_with_host0(4, HealthStatus::Healthy);
            for policy in RoutingPolicy::ALL {
                let mut plain = Router::new(policy, 4);
                let mut resilient = Router::new(policy, 4);
                for f in 0..200 {
                    let d = resilient.route_resilient(f % 31, 1.0, &view, &HedgeConfig::disabled());
                    assert_eq!(d.host, plain.route(f % 31, 1.0));
                    assert!(!d.failed_over);
                    assert_eq!(d.hedge, None);
                }
                assert_eq!(resilient.failovers(), 0);
                assert_eq!(plain.assigned_ms(), resilient.assigned_ms());
            }
        }

        #[test]
        fn open_breaker_diverts_to_the_next_routable_host() {
            let view = view_with_host0(3, HealthStatus::Unhealthy);
            let mut router = Router::new(RoutingPolicy::RoundRobin, 3);
            // Round-robin wants 0, 1, 2, 0, … — every host-0 slot lands
            // on host 1 instead.
            let hosts: Vec<usize> = (0..6)
                .map(|f| {
                    router
                        .route_resilient(f, 1.0, &view, &HedgeConfig::disabled())
                        .host
                })
                .collect();
            assert_eq!(hosts, vec![1, 1, 2, 1, 1, 2]);
            assert_eq!(router.failovers(), 2);
            assert_eq!(router.assigned_ms()[0], 0.0);
        }

        #[test]
        fn every_breaker_open_fails_open_to_the_preferred_host() {
            let plan = ChaosPlan::from_schedules(vec![
                HostSchedule::explicit(&[(0.0, 1e6)], &[]),
                HostSchedule::explicit(&[(0.0, 1e6)], &[]),
            ]);
            let mut view = HealthView::new(2, HealthConfig::default());
            view.advance_to(10_000.0, &plan);
            assert_eq!(view.routable_count(), 0);
            let mut router = Router::new(RoutingPolicy::RoundRobin, 2);
            let d = router.route_resilient(0, 1.0, &view, &HedgeConfig::disabled());
            assert_eq!(d.host, 0, "nothing to fail over to — keep the preference");
            assert!(!d.failed_over);
        }

        #[test]
        fn half_open_primary_hedges_within_budget() {
            let view = view_with_host0(3, HealthStatus::HalfOpen);
            let hedge = HedgeConfig {
                enabled: true,
                max_fraction: 0.4,
            };
            let mut router = Router::new(RoutingPolicy::RoundRobin, 3);
            let mut hedged = 0u64;
            for f in 0..30 {
                let d = router.route_resilient(f, 1.0, &view, &hedge);
                if let Some(h) = d.hedge {
                    assert_eq!(d.host, 0, "only the half-open host is hedged");
                    assert_ne!(h, 0, "the hedge copy goes elsewhere");
                    hedged += 1;
                }
            }
            assert!(hedged > 0, "some host-0 dispatches must hedge");
            assert_eq!(hedged, router.hedges());
            // 30 dispatches at max_fraction 0.4 → at most 12 hedges.
            assert!(hedged <= 12, "{hedged} hedges blew the budget");
            // Disabled hedging never hedges, even when half-open.
            let mut plain = Router::new(RoutingPolicy::RoundRobin, 3);
            for f in 0..30 {
                let d = plain.route_resilient(f, 1.0, &view, &HedgeConfig::disabled());
                assert_eq!(d.hedge, None);
            }
        }

        #[test]
        fn bad_hedge_fraction_is_named() {
            assert!(HedgeConfig::disabled().validate().is_ok());
            let err = HedgeConfig {
                enabled: true,
                max_fraction: 0.0,
            }
            .validate()
            .unwrap_err();
            assert!(format!("{err}").contains("hedge.max_fraction"), "{err}");
        }
    }
}
