//! Per-function service-time model: where the per-host interleaving
//! degree meets the `sim` timing model.
//!
//! Each function has a warm (back-to-back) service time and two latency
//! multipliers — fully lukewarm without and with Jukebox. The fleet
//! estimates a per-invocation *interleaving degree* in `[0, 1]` from the
//! host's arrival rate and the instance's idle gap (the
//! [`server::InterleaveModel`] cache-decay law), and interpolates:
//! `service = warm × (1 + degree × (factor − 1))`.
//!
//! Two constructors: [`ServiceModel::analytic`] derives timings from the
//! function profiles in closed form (cheap, used by the CLI and unit
//! tests), while [`ServiceModel::from_timings`] accepts timings
//! *calibrated from the cycle-accurate simulator* — the
//! `experiments::fleet_scale` module measures each profile's warm,
//! lukewarm, and lukewarm+Jukebox CPI with `runner::run` and feeds the
//! ratios in here, closing the loop between fleet scheduling and the
//! microarchitectural model.

use luke_common::SimError;
use server::InterleaveModel;
use workloads::FunctionProfile;

/// Skylake core frequency (Table 1), for the analytic cycles→ms map.
pub const FREQ_GHZ: f64 = 2.6;

/// Skylake private L2: 1MB of 64B lines (Table 1).
pub const L2_LINES: usize = 16_384;

/// Skylake shared LLC: 8MB of 64B lines (Table 1).
pub const LLC_LINES: usize = 131_072;

/// Warm-path CPI assumed by the analytic model (§4: warm CPI ≈ 1).
const ANALYTIC_WARM_CPI: f64 = 0.9;

/// Fraction of the lukewarm penalty Jukebox recovers in the analytic
/// model (§6: Jukebox eliminates most of the instruction-fetch share of
/// the penalty; 18–46% end-to-end speedups).
const ANALYTIC_JUKEBOX_RECOVERY: f64 = 0.65;

/// Weight of the (slow-decaying) LLC term in the blended degree; the
/// private-level term carries the rest. Mirrors Figure 1's two-knee
/// shape: private levels die in tens of milliseconds, the LLC in
/// seconds.
const LLC_DEGREE_WEIGHT: f64 = 0.3;

/// One function's calibrated timings.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionTiming {
    /// Function name (paper-suite name for suite profiles).
    pub name: String,
    /// Warm (back-to-back) service time, ms.
    pub warm_ms: f64,
    /// Latency multiplier at full interleaving, no prefetcher
    /// (Figure 2's 31–114% degradations → 1.31–2.14).
    pub lukewarm_factor: f64,
    /// Latency multiplier at full interleaving with Jukebox.
    pub jukebox_factor: f64,
}

/// The fleet's service-time model (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceModel {
    timings: Vec<FunctionTiming>,
    /// Cache-decay law; its `other_invocations_per_sec` is overridden
    /// per call with the host's observed foreign rate.
    pub interleave: InterleaveModel,
    /// Private-cache capacity driving the fast decay term, lines.
    pub l2_lines: usize,
    /// Shared-LLC capacity driving the slow decay term, lines.
    pub llc_lines: usize,
    /// Warm hits with a degree at or above this are classified
    /// *lukewarm* (the paper's "warm but microarchitecturally cold").
    pub lukewarm_threshold: f64,
}

impl ServiceModel {
    /// Builds a model from explicit (e.g. simulator-calibrated) timings.
    pub fn from_timings(timings: Vec<FunctionTiming>) -> Result<Self, SimError> {
        if timings.is_empty() {
            return Err(SimError::invalid_config(
                "fleet.timings",
                "at least one function timing is required",
            ));
        }
        for t in &timings {
            if !(t.warm_ms > 0.0 && t.warm_ms.is_finite()) {
                return Err(SimError::invalid_config(
                    "fleet.timings.warm_ms",
                    format!("{}: warm service time must be positive, got {}", t.name, t.warm_ms),
                ));
            }
            if !(t.lukewarm_factor >= 1.0 && t.lukewarm_factor.is_finite()) {
                return Err(SimError::invalid_config(
                    "fleet.timings.lukewarm_factor",
                    format!(
                        "{}: lukewarm factor must be ≥ 1, got {}",
                        t.name, t.lukewarm_factor
                    ),
                ));
            }
            if !(t.jukebox_factor >= 1.0 && t.jukebox_factor <= t.lukewarm_factor) {
                return Err(SimError::invalid_config(
                    "fleet.timings.jukebox_factor",
                    format!(
                        "{}: jukebox factor must be in [1, lukewarm], got {}",
                        t.name, t.jukebox_factor
                    ),
                ));
            }
        }
        Ok(ServiceModel {
            timings,
            interleave: InterleaveModel::high_occupancy(),
            l2_lines: L2_LINES,
            llc_lines: LLC_LINES,
            lukewarm_threshold: 0.25,
        })
    }

    /// Closed-form timings straight from the profiles: warm time from
    /// the instruction count at Skylake frequency, lukewarm penalty
    /// scaling with the code footprint (Figure 2 correlates degradation
    /// with footprint), Jukebox recovering a fixed share of it.
    pub fn analytic(profiles: &[FunctionProfile]) -> Result<Self, SimError> {
        let timings = profiles
            .iter()
            .map(|p| {
                let cycles = p.instructions as f64 * ANALYTIC_WARM_CPI;
                let warm_ms = cycles / (FREQ_GHZ * 1e6);
                // 830KB (Pay-N) is the suite's largest footprint; map
                // 300–830KB onto ≈1.3–2.15, Figure 2's observed band.
                let footprint_share = p.code_footprint.as_kib() / 830.0;
                let lukewarm_factor = (1.3 + 0.85 * footprint_share).min(2.2);
                let jukebox_factor =
                    1.0 + (lukewarm_factor - 1.0) * (1.0 - ANALYTIC_JUKEBOX_RECOVERY);
                FunctionTiming {
                    name: p.name.clone(),
                    warm_ms,
                    lukewarm_factor,
                    jukebox_factor,
                }
            })
            .collect();
        Self::from_timings(timings)
    }

    /// Number of modeled functions.
    pub fn functions(&self) -> usize {
        self.timings.len()
    }

    /// Timing of function `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn timing(&self, idx: usize) -> &FunctionTiming {
        &self.timings[idx]
    }

    /// Interleaving degree in `[0, 1]` for an instance that sat idle
    /// `gap_ms` on a host whose *other* instances arrive at
    /// `other_per_sec`: a blend of private-level and LLC decay.
    pub fn degree(&self, other_per_sec: f64, gap_ms: f64) -> f64 {
        let m = InterleaveModel {
            other_invocations_per_sec: other_per_sec.max(0.0),
            ..self.interleave
        };
        let private = m.decay_fraction(self.l2_lines, gap_ms);
        let llc = m.llc_decay_fraction(self.llc_lines, gap_ms);
        (1.0 - LLC_DEGREE_WEIGHT) * private + LLC_DEGREE_WEIGHT * llc
    }

    /// Service time of function `idx` at interleaving `degree`, with or
    /// without Jukebox.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn service_ms(&self, idx: usize, degree: f64, jukebox: bool) -> f64 {
        let t = &self.timings[idx];
        let factor = if jukebox {
            t.jukebox_factor
        } else {
            t.lukewarm_factor
        };
        t.warm_ms * (1.0 + degree.clamp(0.0, 1.0) * (factor - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::paper_suite;

    fn model() -> ServiceModel {
        ServiceModel::analytic(&paper_suite()).unwrap()
    }

    #[test]
    fn analytic_covers_the_suite_with_sane_magnitudes() {
        let m = model();
        assert_eq!(m.functions(), 20);
        for i in 0..m.functions() {
            let t = m.timing(i);
            // Sub-millisecond warm functions (§2.2's ~1ms example).
            assert!(t.warm_ms > 0.05 && t.warm_ms < 5.0, "{}: {}", t.name, t.warm_ms);
            // Figure 2's 31–114% degradation band.
            assert!(
                (1.25..=2.2).contains(&t.lukewarm_factor),
                "{}: {}",
                t.name,
                t.lukewarm_factor
            );
            assert!(t.jukebox_factor >= 1.0 && t.jukebox_factor < t.lukewarm_factor);
        }
    }

    #[test]
    fn larger_footprint_larger_penalty() {
        let m = model();
        let suite = paper_suite();
        let pay_n = suite.iter().position(|p| p.name == "Pay-N").unwrap();
        let prodl_g = suite.iter().position(|p| p.name == "ProdL-G").unwrap();
        assert!(m.timing(pay_n).lukewarm_factor > m.timing(prodl_g).lukewarm_factor);
    }

    #[test]
    fn degree_grows_with_gap_and_rate() {
        let m = model();
        assert_eq!(m.degree(500.0, 0.0), 0.0);
        let short = m.degree(500.0, 5.0);
        let long = m.degree(500.0, 500.0);
        assert!(short < long, "{short} vs {long}");
        assert!(long <= 1.0);
        assert!(m.degree(50.0, 100.0) < m.degree(500.0, 100.0));
    }

    #[test]
    fn service_time_interpolates_between_warm_and_lukewarm() {
        let m = model();
        let warm = m.service_ms(0, 0.0, false);
        let half = m.service_ms(0, 0.5, false);
        let full = m.service_ms(0, 1.0, false);
        assert_eq!(warm, m.timing(0).warm_ms);
        assert!(warm < half && half < full);
        assert!((full / warm - m.timing(0).lukewarm_factor).abs() < 1e-12);
        // Jukebox strictly reduces the interleaved penalty.
        assert!(m.service_ms(0, 1.0, true) < full);
        assert_eq!(m.service_ms(0, 0.0, true), warm);
    }

    #[test]
    fn bad_timings_are_rejected() {
        assert!(ServiceModel::from_timings(vec![]).is_err());
        let bad = FunctionTiming {
            name: "x".into(),
            warm_ms: 0.0,
            lukewarm_factor: 1.5,
            jukebox_factor: 1.2,
        };
        assert!(ServiceModel::from_timings(vec![bad]).is_err());
        let inverted = FunctionTiming {
            name: "x".into(),
            warm_ms: 1.0,
            lukewarm_factor: 1.2,
            jukebox_factor: 1.5,
        };
        assert!(ServiceModel::from_timings(vec![inverted]).is_err());
    }
}
