//! Host fault domains: seeded crash/degrade/recover schedules.
//!
//! A chaos schedule is a *pure function* of `(config, host_id)`: windows
//! are synthesized by splitting the fleet seed, never by consuming shared
//! RNG state. That means the sequential routing phase and each
//! shared-nothing host can independently derive byte-identical views of
//! the same outage timeline — the property that lets failover routing,
//! health probing, and host-local crash handling coexist with the
//! 1-thread ≡ N-thread determinism contract.
//!
//! [`ChaosPlan::none`] mirrors `FaultPlan::none()`: it draws no RNG,
//! schedules nothing, and a fleet configured without chaos exports
//! byte-identical output to a build that has never heard of this module.

use luke_common::rng::DetRng;
use luke_common::SimError;

use crate::config::FleetConfig;

/// Seed-space tag for chaos schedules.
const CHAOS_STREAM: u64 = 0x6368_616F; // "chao"
/// Sub-stream for crash (down) windows.
const CRASH_LANE: u64 = 0;
/// Sub-stream for degrade (slow) windows.
const DEGRADE_LANE: u64 = 1;
/// Horizon slack past the expected arrival span, so late arrivals from
/// the Poisson tail still fall inside scheduled windows.
const HORIZON_MARGIN: f64 = 1.5;
/// Flat horizon pad, ms.
const HORIZON_PAD_MS: f64 = 60_000.0;
/// Minimum length of any synthesized window, ms.
const MIN_WINDOW_MS: f64 = 1.0;

/// Host availability at an instant, as the chaos timeline dictates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostState {
    /// Serving normally.
    Up,
    /// Serving, but every invocation's service time is multiplied by the
    /// configured slowdown (thermal throttling, a noisy neighbour, a
    /// failing disk).
    Degraded,
    /// Crashed: connections fail, the pool is wiped, keep-alive state is
    /// gone.
    Down,
}

/// Chaos-injection knobs. All-zero MTBFs ([`ChaosConfig::none`], the
/// default) mean no chaos at all — bit-transparent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Mean time between host crashes, ms (0 disables crashes).
    pub host_mtbf_ms: f64,
    /// Mean downtime per crash, ms.
    pub crash_downtime_ms: f64,
    /// Mean time between degrade episodes, ms (0 disables them).
    pub degrade_mtbf_ms: f64,
    /// Mean length of a degrade episode, ms.
    pub degrade_duration_ms: f64,
    /// Service-time multiplier while degraded (≥ 1).
    pub degrade_slowdown: f64,
}

impl ChaosConfig {
    /// The disabled sentinel: no crashes, no degrades, no RNG draws.
    pub fn none() -> Self {
        ChaosConfig {
            host_mtbf_ms: 0.0,
            crash_downtime_ms: 0.0,
            degrade_mtbf_ms: 0.0,
            degrade_duration_ms: 0.0,
            degrade_slowdown: 1.0,
        }
    }

    /// Whether this config schedules nothing at all.
    pub fn is_none(&self) -> bool {
        self.host_mtbf_ms == 0.0 && self.degrade_mtbf_ms == 0.0
    }

    /// Validates the knobs, naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        for (field, value) in [
            ("chaos.host_mtbf_ms", self.host_mtbf_ms),
            ("chaos.crash_downtime_ms", self.crash_downtime_ms),
            ("chaos.degrade_mtbf_ms", self.degrade_mtbf_ms),
            ("chaos.degrade_duration_ms", self.degrade_duration_ms),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(SimError::invalid_config(
                    field,
                    format!("must be ≥ 0 and finite, got {value}"),
                ));
            }
        }
        if self.host_mtbf_ms > 0.0 && self.crash_downtime_ms <= 0.0 {
            return Err(SimError::invalid_config(
                "chaos.crash_downtime_ms",
                "crashes need a positive mean downtime",
            ));
        }
        if self.degrade_mtbf_ms > 0.0 && self.degrade_duration_ms <= 0.0 {
            return Err(SimError::invalid_config(
                "chaos.degrade_duration_ms",
                "degrade episodes need a positive mean duration",
            ));
        }
        if !(self.degrade_slowdown >= 1.0 && self.degrade_slowdown.is_finite()) {
            return Err(SimError::invalid_config(
                "chaos.degrade_slowdown",
                format!("must be ≥ 1 and finite, got {}", self.degrade_slowdown),
            ));
        }
        Ok(())
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// One scheduled availability window `[start_ms, end_ms)`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct ChaosWindow {
    start_ms: f64,
    end_ms: f64,
    state: HostState,
}

/// One host's full chaos timeline for a run: a sorted set of down and
/// degraded windows over the run's horizon. Down wins on overlap.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostSchedule {
    windows: Vec<ChaosWindow>,
    /// Start times of down windows, ascending — the crash boundaries a
    /// host applies as it advances through its arrival queue.
    crash_starts: Vec<f64>,
}

impl HostSchedule {
    /// An empty schedule (the host never misbehaves).
    pub fn none() -> Self {
        HostSchedule::default()
    }

    /// Synthesizes host `host_id`'s timeline from the fleet config — a
    /// pure function, so router and host derive identical copies
    /// independently. Inter-event gaps and window lengths are
    /// exponential draws from per-host, per-lane seed splits.
    pub fn synthesize(config: &FleetConfig, host_id: usize) -> Self {
        let chaos = &config.chaos;
        if chaos.is_none() {
            return HostSchedule::none();
        }
        let horizon = chaos_horizon_ms(config);
        let root = DetRng::new(config.seed)
            .split(CHAOS_STREAM)
            .split(host_id as u64);
        let mut windows = Vec::new();
        let mut crash_starts = Vec::new();
        if chaos.host_mtbf_ms > 0.0 {
            let mut rng = root.split(CRASH_LANE);
            let mut t = rng.exponential(chaos.host_mtbf_ms);
            while t < horizon {
                let down = rng.exponential(chaos.crash_downtime_ms).max(MIN_WINDOW_MS);
                windows.push(ChaosWindow {
                    start_ms: t,
                    end_ms: t + down,
                    state: HostState::Down,
                });
                crash_starts.push(t);
                t += down + rng.exponential(chaos.host_mtbf_ms);
            }
        }
        if chaos.degrade_mtbf_ms > 0.0 {
            let mut rng = root.split(DEGRADE_LANE);
            let mut t = rng.exponential(chaos.degrade_mtbf_ms);
            while t < horizon {
                let slow = rng
                    .exponential(chaos.degrade_duration_ms)
                    .max(MIN_WINDOW_MS);
                windows.push(ChaosWindow {
                    start_ms: t,
                    end_ms: t + slow,
                    state: HostState::Degraded,
                });
                t += slow + rng.exponential(chaos.degrade_mtbf_ms);
            }
        }
        windows.sort_by(|a, b| {
            a.start_ms
                .total_cmp(&b.start_ms)
                .then((a.state == HostState::Degraded).cmp(&(b.state == HostState::Degraded)))
        });
        HostSchedule {
            windows,
            crash_starts,
        }
    }

    /// Builds a schedule from explicit `(start_ms, end_ms)` windows — for
    /// constructing exact outage scenarios in tests and experiments
    /// without going through the seeded synthesizer.
    pub fn explicit(down: &[(f64, f64)], degraded: &[(f64, f64)]) -> Self {
        let mut windows: Vec<ChaosWindow> = down
            .iter()
            .map(|&(start_ms, end_ms)| ChaosWindow {
                start_ms,
                end_ms,
                state: HostState::Down,
            })
            .chain(degraded.iter().map(|&(start_ms, end_ms)| ChaosWindow {
                start_ms,
                end_ms,
                state: HostState::Degraded,
            }))
            .collect();
        windows.sort_by(|a, b| {
            a.start_ms
                .total_cmp(&b.start_ms)
                .then((a.state == HostState::Degraded).cmp(&(b.state == HostState::Degraded)))
        });
        let mut crash_starts: Vec<f64> = down.iter().map(|&(s, _)| s).collect();
        crash_starts.sort_by(f64::total_cmp);
        HostSchedule {
            windows,
            crash_starts,
        }
    }

    /// The host's state at time `t_ms`. Down windows shadow degraded
    /// ones.
    pub fn state_at(&self, t_ms: f64) -> HostState {
        let mut state = HostState::Up;
        for w in &self.windows {
            if w.start_ms > t_ms {
                break;
            }
            if t_ms < w.end_ms {
                if w.state == HostState::Down {
                    return HostState::Down;
                }
                state = HostState::Degraded;
            }
        }
        state
    }

    /// Number of scheduled crashes.
    pub fn crash_count(&self) -> usize {
        self.crash_starts.len()
    }

    /// Start time of crash `idx` (ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn crash_start(&self, idx: usize) -> f64 {
        self.crash_starts[idx]
    }

    /// Whether the schedule is empty.
    pub fn is_none(&self) -> bool {
        self.windows.is_empty()
    }
}

/// The horizon chaos windows are synthesized over: the expected arrival
/// span with margin. Purely config-derived, so every derivation site
/// agrees.
fn chaos_horizon_ms(config: &FleetConfig) -> f64 {
    let expected_span_ms = config.invocations as f64 / config.total_rate_per_sec() * 1000.0;
    expected_span_ms * HORIZON_MARGIN + HORIZON_PAD_MS
}

/// The fleet-wide chaos view: one [`HostSchedule`] per host, used by the
/// routing phase's health probes and outage checks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    schedules: Vec<HostSchedule>,
}

impl ChaosPlan {
    /// The bit-transparent empty plan: no schedules, no RNG, nothing
    /// exported.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Builds a plan from explicit per-host schedules (see
    /// [`HostSchedule::explicit`]).
    pub fn from_schedules(schedules: Vec<HostSchedule>) -> Self {
        ChaosPlan { schedules }
    }

    /// Synthesizes every host's schedule (each one identical to what
    /// that host derives for itself).
    pub fn synthesize(config: &FleetConfig) -> Self {
        if config.chaos.is_none() {
            return ChaosPlan::none();
        }
        ChaosPlan {
            schedules: (0..config.hosts)
                .map(|h| HostSchedule::synthesize(config, h))
                .collect(),
        }
    }

    /// Whether the plan schedules nothing.
    pub fn is_none(&self) -> bool {
        self.schedules.is_empty()
    }

    /// Host `h`'s schedule.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range (plans are built per fleet).
    pub fn schedule(&self, h: usize) -> &HostSchedule {
        &self.schedules[h]
    }

    /// Host `h`'s state at `t_ms` (always `Up` for the empty plan).
    pub fn state_at(&self, h: usize, t_ms: f64) -> HostState {
        if self.schedules.is_empty() {
            HostState::Up
        } else {
            self.schedules[h].state_at(t_ms)
        }
    }

    /// Whether *every* host is inside a down window at `t_ms` — the
    /// fleet-wide outage that surfaces as `SimError::AllHostsDown`.
    pub fn all_down_at(&self, t_ms: f64) -> bool {
        !self.schedules.is_empty()
            && self
                .schedules
                .iter()
                .all(|s| s.state_at(t_ms) == HostState::Down)
    }

    /// Total crashes scheduled across the fleet.
    pub fn total_crashes(&self) -> usize {
        self.schedules.iter().map(HostSchedule::crash_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_config() -> FleetConfig {
        FleetConfig {
            hosts: 4,
            invocations: 8_000,
            chaos: ChaosConfig {
                host_mtbf_ms: 20_000.0,
                crash_downtime_ms: 2_000.0,
                degrade_mtbf_ms: 15_000.0,
                degrade_duration_ms: 3_000.0,
                degrade_slowdown: 2.0,
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn none_is_default_and_schedules_nothing() {
        assert!(ChaosConfig::none().is_none());
        assert_eq!(ChaosConfig::default(), ChaosConfig::none());
        let plan = ChaosPlan::none();
        assert!(plan.is_none());
        assert!(!plan.all_down_at(0.0));
        assert_eq!(plan.state_at(3, 1e9), HostState::Up);
        let config = FleetConfig::default();
        assert!(ChaosPlan::synthesize(&config).is_none());
        assert!(HostSchedule::synthesize(&config, 0).is_none());
    }

    #[test]
    fn invalid_knobs_are_named() {
        let cases = [
            (
                ChaosConfig {
                    host_mtbf_ms: -1.0,
                    ..ChaosConfig::none()
                },
                "chaos.host_mtbf_ms",
            ),
            (
                ChaosConfig {
                    host_mtbf_ms: 1000.0,
                    crash_downtime_ms: 0.0,
                    ..ChaosConfig::none()
                },
                "chaos.crash_downtime_ms",
            ),
            (
                ChaosConfig {
                    degrade_mtbf_ms: 1000.0,
                    degrade_duration_ms: 0.0,
                    ..ChaosConfig::none()
                },
                "chaos.degrade_duration_ms",
            ),
            (
                ChaosConfig {
                    degrade_slowdown: 0.5,
                    ..ChaosConfig::none()
                },
                "chaos.degrade_slowdown",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err();
            assert!(format!("{err}").contains(field), "{err}");
        }
    }

    #[test]
    fn schedules_are_pure_functions_of_config_and_host() {
        let config = chaotic_config();
        let a = HostSchedule::synthesize(&config, 2);
        let b = HostSchedule::synthesize(&config, 2);
        assert_eq!(a, b);
        let plan = ChaosPlan::synthesize(&config);
        assert_eq!(plan.schedule(2), &a, "plan and host views must agree");
        // Different hosts draw from split streams — timelines differ.
        assert_ne!(a, HostSchedule::synthesize(&config, 3));
        // Different seeds reshuffle everything.
        let other = HostSchedule::synthesize(
            &FleetConfig {
                seed: 99,
                ..chaotic_config()
            },
            2,
        );
        assert_ne!(a, other);
    }

    #[test]
    fn crashes_actually_schedule_and_state_follows_windows() {
        let config = chaotic_config();
        let plan = ChaosPlan::synthesize(&config);
        assert!(plan.total_crashes() > 0, "MTBF 20s over ~125s must crash");
        let schedule = plan.schedule(0);
        for i in 0..schedule.crash_count() {
            let start = schedule.crash_start(i);
            assert_eq!(schedule.state_at(start), HostState::Down);
            assert_ne!(schedule.state_at(start - 0.5), HostState::Down);
        }
    }

    #[test]
    fn down_shadows_degraded() {
        let schedule = HostSchedule {
            windows: vec![
                ChaosWindow {
                    start_ms: 10.0,
                    end_ms: 30.0,
                    state: HostState::Degraded,
                },
                ChaosWindow {
                    start_ms: 15.0,
                    end_ms: 20.0,
                    state: HostState::Down,
                },
            ],
            crash_starts: vec![15.0],
        };
        assert_eq!(schedule.state_at(5.0), HostState::Up);
        assert_eq!(schedule.state_at(12.0), HostState::Degraded);
        assert_eq!(schedule.state_at(17.0), HostState::Down);
        assert_eq!(schedule.state_at(25.0), HostState::Degraded);
        assert_eq!(schedule.state_at(35.0), HostState::Up);
    }

    #[test]
    fn all_down_needs_every_host_down() {
        let config = chaotic_config();
        let plan = ChaosPlan::synthesize(&config);
        // Find a crash on host 0 — the fleet should (almost surely) have
        // another host up at that instant.
        let t = plan.schedule(0).crash_start(0);
        assert_eq!(plan.state_at(0, t), HostState::Down);
        assert!(!plan.all_down_at(t), "4 hosts rarely all crash at once");
    }
}
