//! The calendar-queue event core: one arena-allocated event type, one
//! total order, every timer in the fleet.
//!
//! The fleet loop is a discrete-event simulation in disguise. Arrivals
//! stream out of the traffic generator in canonical order; everything
//! *between* arrivals — keep-alive expiries, adaptive-decay re-checks,
//! scheduled pre-restores, chaos boundaries — is a timer that must fire
//! at a deterministic point relative to that stream. This module gives
//! all of them one representation ([`FleetEvent`]) and one container
//! ([`CalendarQueue`]): events are allocated out of a slab arena (a
//! `Vec` with a free list, so steady-state scheduling never touches the
//! allocator) and ordered by the total key
//! `(time, host_id, kind rank, seq)`.
//!
//! The tie-break is the load-bearing part. `seq` is assigned by the
//! queue at push time, so events at the same instant fire in *schedule*
//! order — a pure function of the event history, never of which worker
//! thread happened to get there first. That is what lets the
//! work-stealing shard scheduler in [`run`](crate::run) reorder *work*
//! freely while every observable stays byte-identical to the 1-thread
//! run: each host owns a private `CalendarQueue`, its drains happen at
//! arrival boundaries that are themselves deterministic, and the queue's
//! pop order is a pure function of its push history.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a scheduled event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetEventKind {
    /// A routed invocation arriving at a host (the streaming producer's
    /// lane; hosts consume these in route order rather than scheduling
    /// them individually).
    Arrival,
    /// A whole-host chaos boundary (crash or degrade edge).
    ChaosTransition,
    /// A scheduled pre-restore firing ahead of a predicted arrival.
    PrewarmTimer,
    /// A keep-alive expiry deadline for one function's live instance.
    KeepAliveExpiry,
    /// An adaptive-decay re-check: prediction tightened a function's
    /// hold below its outstanding expiry deadline, so the expiry must be
    /// re-evaluated earlier than originally scheduled.
    AdaptiveDecay,
    /// The merge joining the two copies of a hedged dispatch (fires at
    /// merge time; carried here so every lifecycle step shares the one
    /// event vocabulary).
    HedgeJoin,
}

impl FleetEventKind {
    /// Rank refining the order among events at the same `(time, host)`.
    /// Pre-restores outrank expiries at equal instants: a pre-warm
    /// scheduled exactly at an expiry deadline must see the pool state
    /// the lazy sweep would have shown it (the instance still resident,
    /// since expiry is strict). Either order produces the same state —
    /// both handlers re-check the expiry predicate — but the rank makes
    /// the pop order itself canonical.
    pub fn rank(self) -> u8 {
        match self {
            FleetEventKind::Arrival => 0,
            FleetEventKind::ChaosTransition => 1,
            FleetEventKind::PrewarmTimer => 2,
            FleetEventKind::KeepAliveExpiry => 3,
            FleetEventKind::AdaptiveDecay => 4,
            FleetEventKind::HedgeJoin => 5,
        }
    }
}

/// One scheduled event, stored in the queue's arena.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetEvent {
    /// When the event fires, in simulated milliseconds.
    pub time_ms: f64,
    /// The host whose state the event mutates.
    pub host_id: u32,
    /// What firing does.
    pub kind: FleetEventKind,
    /// The logical function the event concerns (0 for host-wide
    /// events).
    pub function: u32,
    /// Queue-assigned schedule sequence number — the final tie-break.
    pub seq: u64,
}

/// Heap key: everything needed to order an event without touching the
/// arena. `slot` rides along to locate the payload on pop.
#[derive(Clone, Copy, Debug)]
struct HeapKey {
    time_ms: f64,
    host_id: u32,
    rank: u8,
    seq: u64,
    slot: u32,
}

impl HeapKey {
    /// The total order `(time, host_id, kind rank, seq)`. `total_cmp`
    /// keeps the key a genuine total order even for exotic floats.
    fn order(&self, other: &Self) -> Ordering {
        self.time_ms
            .total_cmp(&other.time_ms)
            .then(self.host_id.cmp(&other.host_id))
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops
        // first.
        other.order(self)
    }
}

/// Arena slot: either a live event payload or a link in the free list.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Live(FleetEvent),
    Free { next: u32 },
}

/// Sentinel for "no next free slot".
const NO_SLOT: u32 = u32::MAX;

/// A deterministic calendar queue over arena-allocated [`FleetEvent`]s.
///
/// Pops come back in `(time, host_id, kind rank, seq)` order. Payloads
/// live in a slab: pushing after pops reuses retired slots, so a
/// steady-state simulation (one expiry retired per expiry scheduled)
/// allocates nothing after warm-up.
#[derive(Clone, Debug, Default)]
pub struct CalendarQueue {
    arena: Vec<Slot>,
    free_head: u32,
    heap: BinaryHeap<HeapKey>,
    next_seq: u64,
}

impl CalendarQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            arena: Vec::new(),
            free_head: NO_SLOT,
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with arena and heap space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        CalendarQueue {
            arena: Vec::with_capacity(capacity),
            free_head: NO_SLOT,
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules an event and returns its queue-assigned sequence
    /// number (the tie-break among events at the same instant).
    pub fn push(
        &mut self,
        time_ms: f64,
        host_id: u32,
        kind: FleetEventKind,
        function: u32,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = FleetEvent {
            time_ms,
            host_id,
            kind,
            function,
            seq,
        };
        let slot = if self.free_head != NO_SLOT {
            let slot = self.free_head;
            match self.arena[slot as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Live(_) => unreachable!("free list points at a live slot"),
            }
            self.arena[slot as usize] = Slot::Live(event);
            slot
        } else {
            self.arena.push(Slot::Live(event));
            (self.arena.len() - 1) as u32
        };
        self.heap.push(HeapKey {
            time_ms,
            host_id,
            rank: kind.rank(),
            seq,
            slot,
        });
        seq
    }

    /// The earliest scheduled event, without firing it.
    pub fn peek(&self) -> Option<FleetEvent> {
        self.heap.peek().map(|key| match self.arena[key.slot as usize] {
            Slot::Live(event) => event,
            Slot::Free { .. } => unreachable!("heap key points at a freed slot"),
        })
    }

    /// Fires (removes and returns) the earliest scheduled event.
    pub fn pop(&mut self) -> Option<FleetEvent> {
        let key = self.heap.pop()?;
        let event = match self.arena[key.slot as usize] {
            Slot::Live(event) => event,
            Slot::Free { .. } => unreachable!("heap key points at a freed slot"),
        };
        self.arena[key.slot as usize] = Slot::Free {
            next: self.free_head,
        };
        self.free_head = key.slot;
        Some(event)
    }

    /// Scheduled events not yet fired.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Arena slots allocated so far (live + reusable) — the queue's
    /// high-water mark.
    pub fn arena_capacity(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(30.0, 0, FleetEventKind::KeepAliveExpiry, 1);
        q.push(10.0, 0, FleetEventKind::PrewarmTimer, 2);
        q.push(20.0, 0, FleetEventKind::ChaosTransition, 0);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time_ms)).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn ties_break_by_host_then_rank_then_seq() {
        let mut q = CalendarQueue::new();
        let s0 = q.push(5.0, 1, FleetEventKind::KeepAliveExpiry, 0);
        let s1 = q.push(5.0, 0, FleetEventKind::KeepAliveExpiry, 1);
        let s2 = q.push(5.0, 0, FleetEventKind::PrewarmTimer, 2);
        let s3 = q.push(5.0, 0, FleetEventKind::KeepAliveExpiry, 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        // Host 0 before host 1; within host 0 the pre-warm outranks the
        // expiries, which fall back to push order.
        assert_eq!(order, vec![s2, s1, s3, s0]);
    }

    #[test]
    fn arena_slots_are_reused_after_pops() {
        let mut q = CalendarQueue::new();
        for i in 0..8 {
            q.push(i as f64, 0, FleetEventKind::KeepAliveExpiry, i);
        }
        for _ in 0..8 {
            q.pop();
        }
        assert!(q.is_empty());
        for i in 0..8 {
            q.push(100.0 + i as f64, 0, FleetEventKind::PrewarmTimer, i);
        }
        assert_eq!(q.arena_capacity(), 8, "retired slots must be reused");
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(2.0, 3, FleetEventKind::AdaptiveDecay, 7);
        q.push(1.0, 9, FleetEventKind::HedgeJoin, 8);
        let peeked = q.peek().unwrap();
        let popped = q.pop().unwrap();
        assert_eq!(peeked, popped);
        assert_eq!(popped.kind, FleetEventKind::HedgeJoin);
        assert_eq!(popped.host_id, 9);
    }

    #[test]
    fn interleaved_push_pop_keeps_total_order() {
        let mut q = CalendarQueue::new();
        q.push(10.0, 0, FleetEventKind::KeepAliveExpiry, 0);
        q.push(30.0, 0, FleetEventKind::KeepAliveExpiry, 1);
        assert_eq!(q.pop().unwrap().time_ms, 10.0);
        q.push(20.0, 0, FleetEventKind::Arrival, 2);
        q.push(5.0, 0, FleetEventKind::Arrival, 3);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time_ms)).collect();
        assert_eq!(times, vec![5.0, 20.0, 30.0]);
    }
}
