//! Fleet-wide traffic synthesis: the deployed function population and
//! its Poisson arrival lanes.
//!
//! A production fleet serves far more *deployed functions* than the 20
//! profiled suite entries, with wildly skewed popularity (Azure's
//! production characterization, cited in §2.1). This module materializes
//! a `population` of logical functions, maps each onto a paper-suite
//! performance profile (`index % 20`), and assigns it an arrival rate:
//! the suite's Zipf-like traffic weight for its profile, multiplied by a
//! deterministic log-uniform spread so same-profile deployments still
//! differ by orders of magnitude — the heavy tail that makes routing
//! policy matter.

use luke_common::rng::DetRng;
use luke_common::SimError;
use server::{IatDistribution, TrafficGenerator};
use workloads::paper_traffic_weights;

use crate::config::FleetConfig;

/// Seed-space tag for the per-function popularity spread.
const SPREAD_STREAM: u64 = 0x7370_7264; // "sprd"
/// Seed-space tag for the arrival-lane RNGs.
const LANE_STREAM: u64 = 0x6C61_6E65; // "lane"
/// Log-uniform popularity spread: the least popular deployment of a
/// profile gets 1/256 of the most popular one's weight.
const SPREAD_DECADES: f64 = 256.0;

/// The fleet's deployed-function population: per-function arrival lanes
/// whose rates sum to the configured fleet-wide rate.
#[derive(Clone, Debug)]
pub struct Population {
    /// Per-function mean inter-arrival distributions; index = logical
    /// function id, `id % 20` = suite profile.
    pub lanes: Vec<IatDistribution>,
    /// Per-function arrival rate, invocations per second.
    pub rates_per_sec: Vec<f64>,
}

impl Population {
    /// Builds the population for `config`: weights, spread, and
    /// normalization are all pure functions of `config.seed`.
    pub fn synthesize(config: &FleetConfig) -> Self {
        let profile_weights = paper_traffic_weights();
        let spread_rng = DetRng::new(config.seed).split(SPREAD_STREAM);
        let mut weights = Vec::with_capacity(config.population);
        for function in 0..config.population {
            let base = profile_weights[function % profile_weights.len()];
            // Log-uniform in [1/SPREAD_DECADES, 1]: u ~ U[0,1) mapped
            // through SPREAD^-u.
            let u = spread_rng.split(function as u64).unit();
            weights.push(base * SPREAD_DECADES.powf(-u));
        }
        let total_weight: f64 = weights.iter().sum();
        let total_rate = config.total_rate_per_sec();
        let rates_per_sec: Vec<f64> = weights
            .iter()
            .map(|w| total_rate * w / total_weight)
            .collect();
        let lanes = rates_per_sec
            .iter()
            .map(|&rate| IatDistribution::Exponential {
                mean_ms: 1000.0 / rate,
            })
            .collect();
        Population {
            lanes,
            rates_per_sec,
        }
    }

    /// The arrival-stream generator over this population. Each lane's
    /// RNG is split from `seed`, so the stream is independent of lane
    /// construction order.
    pub fn generator(&self, seed: u64) -> Result<TrafficGenerator, SimError> {
        TrafficGenerator::try_new(&self.lanes, DetRng::new(seed).split(LANE_STREAM).seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FleetConfig {
        FleetConfig {
            population: 100,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn rates_sum_to_fleet_rate_and_are_positive() {
        let config = config();
        let pop = Population::synthesize(&config);
        assert_eq!(pop.lanes.len(), 100);
        let total: f64 = pop.rates_per_sec.iter().sum();
        assert!(
            (total - config.total_rate_per_sec()).abs() < 1e-9,
            "{total}"
        );
        assert!(pop.rates_per_sec.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let pop = Population::synthesize(&config());
        let max = pop.rates_per_sec.iter().cloned().fold(0.0, f64::max);
        let min = pop.rates_per_sec.iter().cloned().fold(f64::MAX, f64::min);
        // Zipf head/tail ratio (~15×) times up to 256× spread: the
        // extremes must differ by well over an order of magnitude.
        assert!(max / min > 20.0, "max/min = {}", max / min);
    }

    #[test]
    fn population_is_deterministic_in_the_seed() {
        let a = Population::synthesize(&config());
        let b = Population::synthesize(&config());
        assert_eq!(a.rates_per_sec, b.rates_per_sec);
        let other = Population::synthesize(&FleetConfig {
            seed: 999,
            ..config()
        });
        assert_ne!(a.rates_per_sec, other.rates_per_sec);
    }

    #[test]
    fn generator_streams_ordered_events_over_the_population() {
        let pop = Population::synthesize(&config());
        let mut generator = pop.generator(7).unwrap();
        let mut last = 0.0;
        let mut seen = std::collections::BTreeSet::new();
        for event in generator.by_ref().take(5_000) {
            assert!(event.at_ms >= last);
            last = event.at_ms;
            seen.insert(event.instance);
        }
        // The popular head must appear; most of the population should
        // show up within 5k events.
        assert!(seen.len() > 50, "only {} functions seen", seen.len());
    }
}
