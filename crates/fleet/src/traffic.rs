//! Fleet-wide traffic synthesis: the deployed function population and
//! its Poisson arrival lanes.
//!
//! A production fleet serves far more *deployed functions* than the 20
//! profiled suite entries, with wildly skewed popularity (Azure's
//! production characterization, cited in §2.1). This module materializes
//! a `population` of logical functions, maps each onto a paper-suite
//! performance profile (`index % 20`), and assigns it an arrival rate:
//! the suite's Zipf-like traffic weight for its profile, multiplied by a
//! deterministic log-uniform spread so same-profile deployments still
//! differ by orders of magnitude — the heavy tail that makes routing
//! policy matter.

use luke_common::rng::DetRng;
use luke_common::SimError;
use server::{IatDistribution, InvocationEvent, TrafficGenerator};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use workloads::paper_traffic_weights;

use crate::config::FleetConfig;

/// Seed-space tag for the per-function popularity spread.
const SPREAD_STREAM: u64 = 0x7370_7264; // "sprd"
/// Seed-space tag for the arrival-lane RNGs.
const LANE_STREAM: u64 = 0x6C61_6E65; // "lane"
/// Seed-space tag for the non-stationary (surge) arrival lanes —
/// distinct from [`LANE_STREAM`] so enabling the surge shape reshuffles
/// arrivals instead of aliasing the stationary stream.
const SURGE_STREAM: u64 = 0x7375_7267; // "surg"
/// Log-uniform popularity spread: the least popular deployment of a
/// profile gets 1/256 of the most popular one's weight.
const SPREAD_DECADES: f64 = 256.0;

/// The fleet's deployed-function population: per-function arrival lanes
/// whose rates sum to the configured fleet-wide rate.
#[derive(Clone, Debug)]
pub struct Population {
    /// Per-function mean inter-arrival distributions; index = logical
    /// function id, `id % 20` = suite profile.
    pub lanes: Vec<IatDistribution>,
    /// Per-function arrival rate, invocations per second.
    pub rates_per_sec: Vec<f64>,
}

impl Population {
    /// Builds the population for `config`: weights, spread, and
    /// normalization are all pure functions of `config.seed`.
    pub fn synthesize(config: &FleetConfig) -> Self {
        let profile_weights = paper_traffic_weights();
        let spread_rng = DetRng::new(config.seed).split(SPREAD_STREAM);
        let mut weights = Vec::with_capacity(config.population);
        for function in 0..config.population {
            let base = profile_weights[function % profile_weights.len()];
            // Log-uniform in [1/SPREAD_DECADES, 1]: u ~ U[0,1) mapped
            // through SPREAD^-u.
            let u = spread_rng.split(function as u64).unit();
            weights.push(base * SPREAD_DECADES.powf(-u));
        }
        let total_weight: f64 = weights.iter().sum();
        let total_rate = config.total_rate_per_sec();
        let rates_per_sec: Vec<f64> = weights
            .iter()
            .map(|w| total_rate * w / total_weight)
            .collect();
        let lanes = rates_per_sec
            .iter()
            .map(|&rate| IatDistribution::Exponential {
                mean_ms: 1000.0 / rate,
            })
            .collect();
        Population {
            lanes,
            rates_per_sec,
        }
    }

    /// The arrival-stream generator over this population. Each lane's
    /// RNG is split from `seed`, so the stream is independent of lane
    /// construction order.
    pub fn generator(&self, seed: u64) -> Result<TrafficGenerator, SimError> {
        TrafficGenerator::try_new(&self.lanes, DetRng::new(seed).split(LANE_STREAM).seed())
    }

    /// Per-function shedding priorities derived from arrival rates: the
    /// busiest third of the population is priority 2, the middle third 1,
    /// the long tail 0 — so admission control sheds the functions the
    /// fewest callers will miss first.
    pub fn priorities(&self) -> Vec<u8> {
        let n = self.rates_per_sec.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Busiest first; ties broken toward the lower function id.
        order.sort_by(|&a, &b| {
            self.rates_per_sec[b]
                .total_cmp(&self.rates_per_sec[a])
                .then(a.cmp(&b))
        });
        let mut priorities = vec![0u8; n];
        for (rank, &function) in order.iter().enumerate() {
            priorities[function] = if rank * 3 < n {
                2
            } else if rank * 3 < 2 * n {
                1
            } else {
                0
            };
        }
        priorities
    }

    /// The most popular function — the one a flash crowd piles onto.
    /// Ties resolve to the lowest function id.
    pub fn hot_function(&self) -> usize {
        self.rates_per_sec
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// A non-stationary generator over this population: the stationary
    /// Poisson lanes reshaped by `surge` (diurnal ramp plus a flash
    /// crowd on [`Population::hot_function`]).
    pub fn surge_generator(&self, seed: u64, surge: &SurgeConfig) -> SurgeTraffic {
        SurgeTraffic::new(self, seed, *surge)
    }
}

/// Non-stationary traffic shape: a diurnal sinusoid over every lane plus
/// a flash-crowd window that multiplies the hot function's rate.
///
/// [`SurgeConfig::none`] (the default) is bit-transparent: the fleet
/// falls back to the stationary [`Population::generator`] stream and no
/// surge RNG is ever drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurgeConfig {
    /// Diurnal modulation depth in [0, 1): rates swing between
    /// `(1−a)` and `(1+a)` times their mean (0 disables the ramp).
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid, ms.
    pub diurnal_period_ms: f64,
    /// Rate multiplier applied to the hot function inside the flash
    /// window (≤ 1 disables the flash crowd).
    pub flash_multiplier: f64,
    /// Flash-crowd window start, ms.
    pub flash_start_ms: f64,
    /// Flash-crowd window length, ms.
    pub flash_duration_ms: f64,
}

impl SurgeConfig {
    /// The disabled sentinel: flat rates, no flash crowd, no RNG draws.
    pub fn none() -> Self {
        SurgeConfig {
            diurnal_amplitude: 0.0,
            diurnal_period_ms: 0.0,
            flash_multiplier: 1.0,
            flash_start_ms: 0.0,
            flash_duration_ms: 0.0,
        }
    }

    /// Whether this shape changes nothing at all.
    pub fn is_none(&self) -> bool {
        self.diurnal_amplitude == 0.0 && self.flash_multiplier <= 1.0
    }

    /// Validates the knobs, naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.diurnal_amplitude >= 0.0 && self.diurnal_amplitude < 1.0) {
            return Err(SimError::invalid_config(
                "surge.diurnal_amplitude",
                format!("must be in [0, 1), got {}", self.diurnal_amplitude),
            ));
        }
        if self.diurnal_amplitude > 0.0
            && !(self.diurnal_period_ms > 0.0 && self.diurnal_period_ms.is_finite())
        {
            return Err(SimError::invalid_config(
                "surge.diurnal_period_ms",
                format!(
                    "a diurnal ramp needs a positive finite period, got {}",
                    self.diurnal_period_ms
                ),
            ));
        }
        if !(self.flash_multiplier >= 0.0 && self.flash_multiplier.is_finite()) {
            return Err(SimError::invalid_config(
                "surge.flash_multiplier",
                format!("must be ≥ 0 and finite, got {}", self.flash_multiplier),
            ));
        }
        if self.flash_multiplier > 1.0
            && !(self.flash_duration_ms > 0.0 && self.flash_duration_ms.is_finite())
        {
            return Err(SimError::invalid_config(
                "surge.flash_duration_ms",
                format!(
                    "a flash crowd needs a positive finite window, got {}",
                    self.flash_duration_ms
                ),
            ));
        }
        if !(self.flash_start_ms >= 0.0 && self.flash_start_ms.is_finite()) {
            return Err(SimError::invalid_config(
                "surge.flash_start_ms",
                format!("must be ≥ 0 and finite, got {}", self.flash_start_ms),
            ));
        }
        Ok(())
    }
}

impl Default for SurgeConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The next pending candidate of one surge lane, ordered by time then
/// lane index — the same tie-break as the stationary generator's merge.
#[derive(Clone, Copy, Debug, PartialEq)]
struct NextCandidate {
    at_ms: f64,
    lane: usize,
}

impl Eq for NextCandidate {}

impl Ord for NextCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_ms
            .total_cmp(&other.at_ms)
            .then(self.lane.cmp(&other.lane))
    }
}

impl PartialOrd for NextCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Non-stationary arrival stream by thinning: each lane draws candidate
/// arrivals at its *peak* rate, then accepts each with probability
/// `rate(t) / peak` — the standard construction for an inhomogeneous
/// Poisson process, and deterministic because every lane owns a split
/// RNG.
#[derive(Clone, Debug)]
pub struct SurgeTraffic {
    /// Per-lane `(candidate mean gap at peak rate, rng)`.
    lanes: Vec<(f64, DetRng)>,
    queue: BinaryHeap<Reverse<NextCandidate>>,
    config: SurgeConfig,
    hot: usize,
}

impl SurgeTraffic {
    fn new(population: &Population, seed: u64, config: SurgeConfig) -> Self {
        let hot = population.hot_function();
        let root = DetRng::new(seed).split(SURGE_STREAM);
        let mut queue = BinaryHeap::with_capacity(population.rates_per_sec.len());
        let lanes = population
            .rates_per_sec
            .iter()
            .enumerate()
            .map(|(lane, &rate)| {
                let peak = peak_factor(&config, lane == hot);
                let mean_ms = 1000.0 / (rate * peak);
                let mut rng = root.split(lane as u64);
                let first = rng.exponential(mean_ms);
                queue.push(Reverse(NextCandidate { at_ms: first, lane }));
                (mean_ms, rng)
            })
            .collect();
        SurgeTraffic {
            lanes,
            queue,
            config,
            hot,
        }
    }

    /// The rate multiplier lane `lane` experiences at `t_ms`, relative
    /// to its stationary mean.
    fn rate_factor(&self, lane: usize, t_ms: f64) -> f64 {
        let mut factor = 1.0;
        if self.config.diurnal_amplitude > 0.0 {
            let phase = std::f64::consts::TAU * t_ms / self.config.diurnal_period_ms;
            factor *= 1.0 + self.config.diurnal_amplitude * phase.sin();
        }
        if lane == self.hot
            && self.config.flash_multiplier > 1.0
            && t_ms >= self.config.flash_start_ms
            && t_ms < self.config.flash_start_ms + self.config.flash_duration_ms
        {
            factor *= self.config.flash_multiplier;
        }
        factor
    }
}

/// A lane's worst-case rate multiplier — the thinning envelope.
fn peak_factor(config: &SurgeConfig, is_hot: bool) -> f64 {
    let mut peak = 1.0 + config.diurnal_amplitude;
    if is_hot && config.flash_multiplier > 1.0 {
        peak *= config.flash_multiplier;
    }
    peak
}

impl Iterator for SurgeTraffic {
    type Item = InvocationEvent;

    fn next(&mut self) -> Option<InvocationEvent> {
        loop {
            let Reverse(next) = self.queue.pop()?;
            let peak = peak_factor(&self.config, next.lane == self.hot);
            let accept_p = self.rate_factor(next.lane, next.at_ms) / peak;
            let (mean_ms, rng) = &mut self.lanes[next.lane];
            let gap = rng.exponential(*mean_ms).max(f64::MIN_POSITIVE);
            let accepted = rng.chance(accept_p);
            self.queue.push(Reverse(NextCandidate {
                at_ms: next.at_ms + gap,
                lane: next.lane,
            }));
            if accepted {
                return Some(InvocationEvent {
                    at_ms: next.at_ms,
                    instance: next.lane,
                });
            }
        }
    }
}

/// The fleet's arrival stream: stationary Poisson lanes, or the same
/// population reshaped by a [`SurgeConfig`]. The stationary arm is the
/// *exact* pre-surge generator, so a disabled surge is bit-transparent.
#[derive(Clone, Debug)]
pub enum ArrivalStream {
    /// The stationary per-function Poisson merge.
    Stationary(TrafficGenerator),
    /// The thinned non-stationary stream.
    Surging(SurgeTraffic),
}

impl ArrivalStream {
    /// Builds the stream `config` asks for over `population`.
    pub fn synthesize(config: &FleetConfig, population: &Population) -> Result<Self, SimError> {
        if config.surge.is_none() {
            Ok(ArrivalStream::Stationary(population.generator(config.seed)?))
        } else {
            Ok(ArrivalStream::Surging(
                population.surge_generator(config.seed, &config.surge),
            ))
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = InvocationEvent;

    fn next(&mut self) -> Option<InvocationEvent> {
        match self {
            ArrivalStream::Stationary(g) => g.next(),
            ArrivalStream::Surging(g) => g.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FleetConfig {
        FleetConfig {
            population: 100,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn rates_sum_to_fleet_rate_and_are_positive() {
        let config = config();
        let pop = Population::synthesize(&config);
        assert_eq!(pop.lanes.len(), 100);
        let total: f64 = pop.rates_per_sec.iter().sum();
        assert!(
            (total - config.total_rate_per_sec()).abs() < 1e-9,
            "{total}"
        );
        assert!(pop.rates_per_sec.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let pop = Population::synthesize(&config());
        let max = pop.rates_per_sec.iter().cloned().fold(0.0, f64::max);
        let min = pop.rates_per_sec.iter().cloned().fold(f64::MAX, f64::min);
        // Zipf head/tail ratio (~15×) times up to 256× spread: the
        // extremes must differ by well over an order of magnitude.
        assert!(max / min > 20.0, "max/min = {}", max / min);
    }

    #[test]
    fn population_is_deterministic_in_the_seed() {
        let a = Population::synthesize(&config());
        let b = Population::synthesize(&config());
        assert_eq!(a.rates_per_sec, b.rates_per_sec);
        let other = Population::synthesize(&FleetConfig {
            seed: 999,
            ..config()
        });
        assert_ne!(a.rates_per_sec, other.rates_per_sec);
    }

    #[test]
    fn generator_streams_ordered_events_over_the_population() {
        let pop = Population::synthesize(&config());
        let mut generator = pop.generator(7).unwrap();
        let mut last = 0.0;
        let mut seen = std::collections::BTreeSet::new();
        for event in generator.by_ref().take(5_000) {
            assert!(event.at_ms >= last);
            last = event.at_ms;
            seen.insert(event.instance);
        }
        // The popular head must appear; most of the population should
        // show up within 5k events.
        assert!(seen.len() > 50, "only {} functions seen", seen.len());
    }

    #[test]
    fn surge_none_is_default_and_bad_knobs_are_named() {
        assert!(SurgeConfig::none().is_none());
        assert_eq!(SurgeConfig::default(), SurgeConfig::none());
        assert!(SurgeConfig::none().validate().is_ok());
        let cases = [
            (
                SurgeConfig {
                    diurnal_amplitude: 1.5,
                    ..SurgeConfig::none()
                },
                "surge.diurnal_amplitude",
            ),
            (
                SurgeConfig {
                    diurnal_amplitude: 0.3,
                    diurnal_period_ms: 0.0,
                    ..SurgeConfig::none()
                },
                "surge.diurnal_period_ms",
            ),
            (
                SurgeConfig {
                    flash_multiplier: f64::NAN,
                    ..SurgeConfig::none()
                },
                "surge.flash_multiplier",
            ),
            (
                SurgeConfig {
                    flash_multiplier: 8.0,
                    flash_duration_ms: 0.0,
                    ..SurgeConfig::none()
                },
                "surge.flash_duration_ms",
            ),
            (
                SurgeConfig {
                    flash_start_ms: -1.0,
                    ..SurgeConfig::none()
                },
                "surge.flash_start_ms",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err();
            assert!(format!("{err}").contains(field), "{err}");
        }
    }

    #[test]
    fn priorities_follow_rate_rank_in_thirds() {
        let pop = Population::synthesize(&config());
        let priorities = pop.priorities();
        assert_eq!(priorities.len(), 100);
        assert_eq!(priorities[pop.hot_function()], 2);
        let coldest = pop
            .rates_per_sec
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(priorities[coldest], 0);
        for p in [0u8, 1, 2] {
            let n = priorities.iter().filter(|&&x| x == p).count();
            assert!((30..=36).contains(&n), "priority {p} covers {n} functions");
        }
    }

    #[test]
    fn hot_function_is_the_rate_argmax() {
        let pop = Population::synthesize(&config());
        let hot = pop.hot_function();
        let max = pop.rates_per_sec.iter().cloned().fold(0.0, f64::max);
        assert_eq!(pop.rates_per_sec[hot], max);
    }

    #[test]
    fn surge_stream_is_ordered_and_deterministic() {
        let pop = Population::synthesize(&config());
        let surge = SurgeConfig {
            diurnal_amplitude: 0.4,
            diurnal_period_ms: 60_000.0,
            flash_multiplier: 10.0,
            flash_start_ms: 5_000.0,
            flash_duration_ms: 10_000.0,
        };
        let a: Vec<_> = pop.surge_generator(7, &surge).take(3_000).collect();
        let b: Vec<_> = pop.surge_generator(7, &surge).take(3_000).collect();
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        assert_ne!(a, pop.surge_generator(8, &surge).take(3_000).collect::<Vec<_>>());
    }

    #[test]
    fn flash_window_concentrates_the_hot_function() {
        let pop = Population::synthesize(&config());
        let surge = SurgeConfig {
            flash_multiplier: 20.0,
            flash_start_ms: 10_000.0,
            flash_duration_ms: 10_000.0,
            ..SurgeConfig::none()
        };
        let hot = pop.hot_function();
        let events: Vec<_> = pop
            .surge_generator(3, &surge)
            .take_while(|e| e.at_ms < 30_000.0)
            .collect();
        let inside = events
            .iter()
            .filter(|e| e.instance == hot && (10_000.0..20_000.0).contains(&e.at_ms))
            .count() as f64;
        let outside = events
            .iter()
            .filter(|e| e.instance == hot && !(10_000.0..20_000.0).contains(&e.at_ms))
            .count() as f64;
        // The window is a third of the span but 20× the rate: the hot
        // function's arrivals must pile up inside it.
        assert!(
            inside > 4.0 * outside,
            "inside {inside} vs outside {outside}"
        );
    }

    #[test]
    fn disabled_surge_routes_through_the_stationary_generator() {
        let config = config();
        let pop = Population::synthesize(&config);
        let mut stream = ArrivalStream::synthesize(&config, &pop).unwrap();
        assert!(matches!(stream, ArrivalStream::Stationary(_)));
        let from_stream: Vec<_> = stream.by_ref().take(500).collect();
        let direct: Vec<_> = pop.generator(config.seed).unwrap().take(500).collect();
        assert_eq!(from_stream, direct, "disabled surge must be transparent");
        let surging = ArrivalStream::synthesize(
            &FleetConfig {
                surge: SurgeConfig {
                    diurnal_amplitude: 0.5,
                    diurnal_period_ms: 30_000.0,
                    ..SurgeConfig::none()
                },
                ..config
            },
            &pop,
        )
        .unwrap();
        assert!(matches!(surging, ArrivalStream::Surging(_)));
    }
}
