//! One simulated host: an instance pool, a fault plan, and the
//! interleaving-degree estimate that prices every warm hit.
//!
//! A host is deliberately self-contained — it owns its pool, fault
//! stream, counters, histogram, event ring, and a private
//! [`CalendarQueue`] of timers (keep-alive expiries, adaptive-decay
//! re-checks, pre-warm restores), and consumes its pre-routed arrival
//! queue with no shared state. Timers drain at each arrival boundary in
//! `(time, kind, seq)` order, so everything between two arrivals is a
//! pure function of the host's own history. That is what makes the
//! fleet *embarrassingly deterministic*: hosts can be processed in any
//! order, on any number of threads, and merging their state in host-id
//! order reproduces the sequential run bit for bit.

use luke_common::rng::DetRng;
use luke_obs::span::{tick_us, trace_id, SpanKind, SpanRing, SpanScope};
use luke_predict::PredictorBank;
use luke_obs::{Event, EventKind, EventRing, Histogram, Registry, StartClass, TimeWindows};
use luke_snapshot::{ColdStartModel, SnapshotStore};
use server::{
    fault_kind_index, AdmissionControl, AdmissionDecision, AttemptCosts, FaultKind, FaultPlan,
    FaultStats, InstancePool, InvocationResult, RetryPolicy,
};

use crate::chaos::{HostSchedule, HostState};
use crate::config::FleetConfig;
use crate::event::{CalendarQueue, FleetEventKind};
use crate::tenant::HostTenancy;
use crate::timing::ServiceModel;
use crate::traffic::Population;

/// Seed-space tag for per-host fault plans.
const FAULT_STREAM: u64 = 0x66_6C_74; // "flt"
/// Seed-space tag for down-host reconnect backoff jitter.
const DOWN_STREAM: u64 = 0x646F_776E; // "down"
/// `FaultDraw` event tag for a whole-host chaos crash — one past the
/// per-invocation fault kinds (which occupy 0..4).
const HOST_CRASH_EVENT: u64 = 4;
/// First span id the host side hands out: the root is id 0 and the
/// route-phase spans own ids 1–3.
const HOST_SPAN_FIRST_ID: u32 = 4;

/// A routed invocation waiting on a host's queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutedInvocation {
    /// Arrival time, ms since fleet start.
    pub at_ms: f64,
    /// Logical function id (`id % profiles` = suite profile).
    pub function: usize,
    /// Fleet-wide dispatch sequence number (hedge copies share it; the
    /// merge joins them back together).
    pub dispatch: u64,
    /// Whether this is one copy of a hedged dispatch. Hedged copies are
    /// real load but report through [`FleetHost::hedge_outcomes`] so the
    /// merge can keep only the faster completion.
    pub hedge: bool,
    /// Whether this copy is the hedged *duplicate* (the second lane of
    /// the pair). The primary copy of a hedged dispatch has `hedge ==
    /// true, duplicate == false`; span trees use this to pick the lane.
    pub duplicate: bool,
}

impl RoutedInvocation {
    /// A plain (non-hedged) routed invocation.
    pub fn new(at_ms: f64, function: usize) -> Self {
        RoutedInvocation {
            at_ms,
            function,
            dispatch: 0,
            hedge: false,
            duplicate: false,
        }
    }
}

/// The fate of one hedged copy, joined across hosts at merge time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeOutcome {
    /// The dispatch id both copies share.
    pub dispatch: u64,
    /// The shared arrival time, ms (for time-series attribution).
    pub at_ms: f64,
    /// This copy's end-to-end latency, ms.
    pub latency_ms: f64,
    /// Whether this copy completed.
    pub completed: bool,
    /// How this copy's instance was found (cold/lukewarm/warm).
    pub class: StartClass,
}

/// One host's complete simulation state.
#[derive(Clone, Debug)]
pub struct FleetHost {
    /// This host's index in the fleet (also its shard-merge position).
    pub host_id: usize,
    pool: InstancePool,
    faults: FaultPlan,
    /// Live instance id per logical function, stored as `id + 1` with
    /// `0` meaning none. The all-zero empty encoding lets the table
    /// come from a lazily-faulted zero mapping: a host only ever
    /// touches the slots of functions routed to it, so a 2,048-host
    /// fleet doesn't memset O(hosts × population) at construction.
    live: Vec<u64>,
    /// Invocations of each logical function seen by this host — the
    /// "own rate" term of the interleaving estimate.
    fn_invocations: Vec<u64>,
    /// Total invocations processed.
    pub invocations: u64,
    /// Invocations that found no live instance (or lost it to a fault).
    pub cold_starts: u64,
    /// Warm hits below the lukewarm threshold.
    pub warm_hits: u64,
    /// Warm hits at or above the lukewarm threshold — the paper's
    /// lukewarm invocations.
    pub lukewarm_hits: u64,
    /// Sum of interleaving degrees over all warm hits.
    pub degree_sum: f64,
    /// Sum of end-to-end latencies, ms.
    pub latency_sum_ms: f64,
    /// End-to-end latency distribution, µs.
    pub latency_us: Histogram,
    /// Fault-layer tallies.
    pub fault_stats: FaultStats,
    /// Lifecycle trace (empty ring when tracing is off).
    pub events: EventRing,
    /// This host's chaos timeline (empty without chaos).
    schedule: HostSchedule,
    /// Next crash boundary to apply (index into the schedule).
    next_crash: usize,
    /// Whole-host crashes applied: pool wiped, keep-alive state gone.
    pub host_crashes: u64,
    /// Reconnect retries burned against down-windows.
    pub down_retries: u64,
    /// Invocations abandoned because the host stayed down past the
    /// retry budget.
    pub down_failures: u64,
    /// Fault-layer retries (attempts beyond the first), accumulated.
    pub retries: u64,
    /// Outcomes of hedged copies, joined fleet-wide at merge time.
    pub hedge_outcomes: Vec<HedgeOutcome>,
    /// Span trees of this host's sampled invocations (empty ring when
    /// tracing is off).
    pub spans: SpanRing,
    /// This host's windowed time-series (disabled when the window is 0).
    pub series: TimeWindows,
    /// SLO threshold the series' burn rate counts against, ms (0 = none).
    series_slo_ms: f64,
    /// Admission controller (present only when enabled).
    admission: Option<AdmissionControl>,
    /// Per-function retry-budget token buckets (empty when unlimited).
    retry_tokens: Vec<f64>,
    /// Seed for down-host reconnect backoff jitter.
    chaos_seed: u64,
    /// Whether any resilience knob is on — gates the resilience series
    /// so disabled runs export byte-identical telemetry.
    resilient: bool,
    /// Predictive pre-warm / adaptive keep-alive policy bank (present
    /// only when prediction is enabled; `None` takes the exact
    /// fixed-keep-alive code path).
    prewarm: Option<PredictorBank>,
    /// Per function: the simulated time a pending pre-restored instance
    /// becomes ready, while one is waiting untouched for its predicted
    /// arrival. Empty when prediction is disabled.
    prewarm_ready: Vec<Option<f64>>,
    /// Most recent observed restore (or boot) cost per function, ms —
    /// the lead time pre-warms are back-dated by. Empty when prediction
    /// is disabled.
    last_restore_ms: Vec<f64>,
    /// Pre-restores actually spawned ahead of a predicted arrival.
    pub prewarm_spawns: u64,
    /// Arrivals that landed on a pre-warmed instance.
    pub prewarm_hits: u64,
    /// The host's private calendar queue: keep-alive expiries,
    /// adaptive-decay re-checks, and pre-warm timers, drained at each
    /// arrival boundary (see [`crate::event`]).
    timers: CalendarQueue,
    /// Per function: the time of its expiry entry currently in the
    /// queue — the lazy-invalidation key, `0.0` meaning none (real
    /// deadlines are strictly positive). A popped entry whose time no
    /// longer matches was superseded by a re-key and is dropped; a
    /// matching entry re-checks the true idle predicate before acting,
    /// so at most one expiry entry per function does work. Zero-encoded
    /// for the same lazily-faulted construction as `live`.
    expiry_queued: Vec<f64>,
    /// Per function: the scheduled time of the valid pre-warm timer, if
    /// any. Each model observation *replaces* the function's pending
    /// pre-restore, so updating this key is what cancels a stale timer
    /// still sitting in the queue. Empty when prediction is disabled.
    prewarm_pending: Vec<Option<f64>>,
    /// Cross-function page sharing and contention state (present only
    /// when some tenancy knob is on; `None` takes the exact pre-tenancy
    /// code path).
    tenancy: Option<HostTenancy>,
}

/// Per-host span-ring capacity: generous enough that no sampled trace is
/// ever overwritten, even if routing skews every sampled dispatch (and
/// its hedge copy) onto one host. The ring allocates lazily, so the
/// bound is free until spans actually record.
fn span_capacity(config: &FleetConfig) -> usize {
    if config.trace_sample == 0 {
        return 0;
    }
    // Worst case per lane: a restore + execute + backoff per attempt,
    // plus reconnects, the admission verdict and the root.
    let per_lane = (3 * config.retry.max_attempts + 8) as usize;
    let sampled = config.invocations / config.trace_sample as usize + 1;
    sampled * 2 * per_lane
}

impl FleetHost {
    /// Builds host `host_id`. The fault stream is split from the fleet
    /// seed per host; all-zero rates get the bit-transparent
    /// [`FaultPlan::none`] so a fault-free fleet never touches fault
    /// RNG state.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid — call `config.validate()` first
    /// (run-level entry points do).
    pub fn new(config: &FleetConfig, host_id: usize) -> Self {
        let mut pool = InstancePool::try_new(config.keep_alive_ms)
            .expect("config validated upstream: keep_alive_ms");
        // Snapshot models price each routed cold start as a restore of
        // the suite profile's page working set; `Instant` leaves the
        // pool untouched so the pre-snapshot numbers reproduce bit for
        // bit.
        if config.cold_start_model != ColdStartModel::Instant {
            let store = SnapshotStore::for_profiles(
                config.cold_start_model,
                config.snapshot_timings,
                &workloads::paper_suite(),
            )
            .expect("config validated upstream: snapshot_timings");
            pool = pool.with_snapshots(store);
        }
        let faults = if config.fault_rates == server::FaultRates::zero() {
            FaultPlan::none()
        } else {
            let seed = DetRng::new(config.seed)
                .split(FAULT_STREAM)
                .split(host_id as u64)
                .seed();
            FaultPlan::new(seed, config.fault_rates)
                .expect("config validated upstream: fault_rates")
        };
        let admission = if config.admission.enabled {
            // Priorities are a pure function of the config, so every
            // host derives the same classes the router would.
            Some(AdmissionControl::new(
                config.admission,
                Population::synthesize(config).priorities(),
            ))
        } else {
            None
        };
        let retry_tokens = if config.retry_budget.is_limited() {
            vec![config.retry_budget.initial_tokens(); config.population]
        } else {
            Vec::new()
        };
        let prewarm = config.prewarm.enabled.then(|| {
            PredictorBank::new(config.prewarm, config.population, config.keep_alive_ms)
        });
        let (prewarm_ready, last_restore_ms) = if config.prewarm.enabled {
            // Until a restore is observed, pre-warms are back-dated by
            // the flat boot cost — the only estimate available cold.
            (
                vec![None; config.population],
                vec![config.cold_start_ms; config.population],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        FleetHost {
            host_id,
            pool,
            faults,
            live: vec![0; config.population],
            fn_invocations: vec![0; config.population],
            invocations: 0,
            cold_starts: 0,
            warm_hits: 0,
            lukewarm_hits: 0,
            degree_sum: 0.0,
            latency_sum_ms: 0.0,
            latency_us: Histogram::new(),
            fault_stats: FaultStats::default(),
            events: EventRing::with_capacity(config.events_capacity),
            schedule: HostSchedule::synthesize(config, host_id),
            next_crash: 0,
            host_crashes: 0,
            down_retries: 0,
            down_failures: 0,
            retries: 0,
            hedge_outcomes: Vec::new(),
            spans: SpanRing::with_capacity(span_capacity(config)),
            series: TimeWindows::new(config.series_window_ms),
            series_slo_ms: config.series_slo_ms,
            admission,
            retry_tokens,
            chaos_seed: DetRng::new(config.seed)
                .split(DOWN_STREAM)
                .split(host_id as u64)
                .seed(),
            resilient: config.resilience_enabled(),
            prewarm,
            prewarm_ready,
            last_restore_ms,
            prewarm_spawns: 0,
            prewarm_hits: 0,
            timers: CalendarQueue::new(),
            expiry_queued: vec![0.0; config.population],
            prewarm_pending: if config.prewarm.enabled {
                vec![None; config.population]
            } else {
                Vec::new()
            },
            tenancy: HostTenancy::new(config),
        }
    }

    /// Applies every chaos crash boundary at or before `at`: the pool is
    /// wiped (in-flight work fails, snapshots-in-memory and keep-alive
    /// state are gone) and every function starts cold afterwards.
    fn apply_crash_boundaries(&mut self, at: f64) {
        while self.next_crash < self.schedule.crash_count()
            && self.schedule.crash_start(self.next_crash) <= at
        {
            let died = self.pool.evict_all();
            self.live.fill(0);
            self.prewarm_ready.fill(None);
            if let Some(tenancy) = self.tenancy.as_mut() {
                tenancy.clear_resident();
            }
            self.host_crashes += 1;
            self.events.record(Event {
                ts: (self.schedule.crash_start(self.next_crash) * 1000.0) as u64,
                dur: 0,
                kind: EventKind::FaultDraw,
                a: HOST_CRASH_EVENT,
                b: died as u64,
            });
            self.next_crash += 1;
        }
    }

    /// Records one invocation's terminal accounting: totals, histogram
    /// or hedge-outcome side list, and the retire event.
    fn retire(
        &mut self,
        routed: RoutedInvocation,
        function: usize,
        latency_ms: f64,
        attempts: u64,
        completed: bool,
        class: StartClass,
    ) -> f64 {
        self.invocations += 1;
        self.fn_invocations[function] += 1;
        if routed.hedge {
            // Hedge copies report through the side list; the merge joins
            // the pair and records the winner (histogram and series).
            self.hedge_outcomes.push(HedgeOutcome {
                dispatch: routed.dispatch,
                at_ms: routed.at_ms,
                latency_ms,
                completed,
                class,
            });
        } else {
            self.latency_sum_ms += latency_ms;
            let latency_us = (latency_ms * 1000.0).round() as u64;
            self.latency_us.record(latency_us);
            self.series
                .record_outcome(routed.at_ms, latency_us, class, self.over_slo(latency_ms));
        }
        self.events.record(Event {
            ts: ((routed.at_ms + latency_ms) * 1000.0) as u64,
            dur: (latency_ms * 1000.0) as u64,
            kind: EventKind::Retire,
            a: function as u64,
            b: attempts,
        });
        latency_ms
    }

    /// Whether `latency_ms` blew the series SLO (false when no SLO set).
    fn over_slo(&self, latency_ms: f64) -> bool {
        self.series_slo_ms > 0.0 && latency_ms > self.series_slo_ms
    }

    /// Takes (and clears) the pending-prewarm ready time for `function`.
    /// Always `None` when prediction is disabled (the vector is empty).
    fn take_prewarm_ready(&mut self, function: usize) -> Option<f64> {
        self.prewarm_ready.get_mut(function).and_then(Option::take)
    }

    /// Shareable pages of `function` already resident on this host —
    /// the restore discount. Always 0 with tenancy off (or dedup off),
    /// which prices the restore identically to the pre-tenancy path.
    fn tenancy_resident(&self, function: usize) -> usize {
        self.tenancy
            .as_ref()
            .map_or(0, |tenancy| tenancy.resident_pages(function))
    }

    /// Registers a freshly-spawned instance's pages and weights its
    /// pool memory accounting by the deduped fraction. No-op with
    /// tenancy off (weight stays at the spawn default 1.0).
    fn tenancy_register(&mut self, function: usize, id: u64) {
        if let Some(tenancy) = self.tenancy.as_mut() {
            let weight = tenancy.register(function);
            self.pool.set_weight(id, weight);
        }
    }

    /// Releases a torn-down instance's page registration. No-op with
    /// tenancy off (and guarded against double-release inside).
    fn tenancy_release(&mut self, function: usize) {
        if let Some(tenancy) = self.tenancy.as_mut() {
            tenancy.release(function);
        }
    }

    /// The live instance id of `function`, decoding the `id + 1` table
    /// encoding.
    #[inline]
    fn live_id(&self, function: usize) -> Option<u64> {
        self.live[function].checked_sub(1)
    }

    /// Sets (or clears, with `None`) `function`'s live instance id.
    #[inline]
    fn set_live(&mut self, function: usize, id: Option<u64>) {
        self.live[function] = id.map_or(0, |id| id + 1);
    }

    /// The keep-alive hold in force for `function`: its adaptive hold
    /// under prediction, the pool's global window otherwise.
    fn hold_for(&self, function: usize) -> f64 {
        match &self.prewarm {
            Some(bank) => bank.holds()[function],
            None => self.pool.keep_alive_ms(),
        }
    }

    /// Registers `deadline_ms` as `function`'s expiry deadline. If an
    /// entry that fires no later is already queued, only the deadline
    /// moves — the queued entry re-checks the idle predicate when it
    /// fires and re-arms itself at the true deadline, so a hot function
    /// keeps a single long-lived entry instead of one per invocation.
    fn schedule_expiry(&mut self, function: usize, deadline_ms: f64) {
        let queued = self.expiry_queued[function];
        if queued == 0.0 || queued > deadline_ms {
            self.expiry_queued[function] = deadline_ms;
            self.timers.push(
                deadline_ms,
                self.host_id as u32,
                FleetEventKind::KeepAliveExpiry,
                function as u32,
            );
        }
    }

    /// Re-keys `function`'s expiry after a model observation moved its
    /// hold without an invocation (the shed path): a tightened hold
    /// needs an adaptive-decay re-check at the earlier deadline, while
    /// a raised hold rides on the outstanding entry (which revalidates
    /// when it fires).
    fn resync_expiry(&mut self, function: usize) {
        let Some(id) = self.live_id(function) else { return };
        let Some(last) = self.pool.last_invoked_ms(id) else { return };
        let deadline = last + self.hold_for(function);
        let queued = self.expiry_queued[function];
        if queued == 0.0 || queued > deadline {
            self.expiry_queued[function] = deadline;
            self.timers.push(
                deadline,
                self.host_id as u32,
                FleetEventKind::AdaptiveDecay,
                function as u32,
            );
        }
    }

    /// Pops and fires every timer due at the arrival boundary `at`: all
    /// events strictly before it, plus pre-warm timers scheduled
    /// exactly at it. (Pre-warm firing was inclusive in the polled
    /// implementation; expiry stays strict because the keep-alive
    /// predicate is `idle > hold`. The [`FleetEventKind::rank`] order
    /// makes the pre-warm reachable at the heap head when both share an
    /// instant.)
    fn drain_timers(&mut self, at: f64) {
        while let Some(next) = self.timers.peek() {
            let due = next.time_ms < at
                || (next.time_ms == at && next.kind == FleetEventKind::PrewarmTimer);
            if !due {
                break;
            }
            let event = self.timers.pop().expect("peeked event is still queued");
            let function = event.function as usize;
            match event.kind {
                FleetEventKind::PrewarmTimer => self.fire_prewarm(function, event.time_ms, at),
                FleetEventKind::KeepAliveExpiry | FleetEventKind::AdaptiveDecay => {
                    self.fire_expiry(function, event.time_ms, at);
                }
                // Arrivals, chaos boundaries and hedge joins never enter
                // the per-host queue — they live in the run loop.
                FleetEventKind::Arrival
                | FleetEventKind::ChaosTransition
                | FleetEventKind::HedgeJoin => {}
            }
        }
    }

    /// A keep-alive expiry (or adaptive-decay re-check) popped at
    /// `fired_ms` while processing the arrival at `at`. Lazy
    /// invalidation: the entry only acts if it still carries the
    /// function's queued-entry key, and the true predicate is re-checked
    /// against the hold in force — an entry that fired ahead of the real
    /// deadline (the instance was re-invoked, or its hold grew) re-arms
    /// itself there instead of expiring. A genuine expiry credits
    /// residency through the deadline, exactly what the lazy sweep used
    /// to charge.
    fn fire_expiry(&mut self, function: usize, fired_ms: f64, at: f64) {
        if self.expiry_queued[function] != fired_ms {
            return;
        }
        self.expiry_queued[function] = 0.0;
        let Some(id) = self.live_id(function) else { return };
        let Some(last) = self.pool.last_invoked_ms(id) else {
            self.set_live(function, None);
            return;
        };
        let hold = self.hold_for(function);
        if at - last > hold {
            self.pool.expire_with_deadline(id, last + hold);
            self.set_live(function, None);
            self.take_prewarm_ready(function);
            self.tenancy_release(function);
        } else {
            self.schedule_expiry(function, last + hold);
        }
    }

    /// A pre-warm timer popped at its scheduled time `t_pre` while
    /// processing the arrival at `at`. If the function's instance will
    /// have lapsed by `at`, it is retired first (the polled
    /// implementation swept before firing pre-warms); if it genuinely
    /// survives this arrival, the pre-restore buys nothing and is
    /// dropped. Otherwise a restored instance spawns back-dated to
    /// `t_pre`, leaving its ready time behind so an arrival that beats
    /// the restore pays the residual wait.
    fn fire_prewarm(&mut self, function: usize, t_pre: f64, at: f64) {
        if self.prewarm_pending.get(function).copied().flatten() != Some(t_pre) {
            return;
        }
        self.prewarm_pending[function] = None;
        if let Some(id) = self.live_id(function) {
            match self.pool.last_invoked_ms(id) {
                Some(last) => {
                    let hold = self.hold_for(function);
                    if at - last > hold {
                        self.pool.expire_with_deadline(id, last + hold);
                        self.set_live(function, None);
                        self.take_prewarm_ready(function);
                        self.tenancy_release(function);
                    } else {
                        // The instance survived after all (e.g. the hold
                        // was raised by a later observation): nothing to
                        // pre-warm.
                        return;
                    }
                }
                None => self.set_live(function, None),
            }
        }
        let resident = self.tenancy_resident(function);
        let (id, restore_ms) = self.pool.spawn_restored_shared(function, t_pre, resident);
        self.tenancy_register(function, id);
        // Without a snapshot store the pre-boot still takes the flat
        // cold-start time before the instance is ready.
        let cost_ms = if self.pool.snapshots().is_some() {
            restore_ms
        } else {
            self.last_restore_ms[function]
        };
        self.set_live(function, Some(id));
        self.prewarm_ready[function] = Some(t_pre + cost_ms);
        self.last_restore_ms[function] = cost_ms;
        self.prewarm_spawns += 1;
        self.schedule_expiry(function, t_pre + self.hold_for(function));
    }

    /// Processes one routed invocation and returns its end-to-end
    /// latency in milliseconds.
    pub fn process(
        &mut self,
        config: &FleetConfig,
        model: &ServiceModel,
        jukebox: bool,
        routed: RoutedInvocation,
    ) -> f64 {
        // The span ring leaves `self` for the duration so the recording
        // scope can borrow it while the host mutates its own state.
        let mut spans = std::mem::take(&mut self.spans);
        let out = {
            let mut off = SpanRing::disabled();
            let ring = if config.samples(routed.dispatch) {
                &mut spans
            } else {
                &mut off
            };
            let mut scope = SpanScope::new(
                ring,
                trace_id(routed.dispatch, routed.duplicate),
                HOST_SPAN_FIRST_ID,
            );
            self.process_scoped(config, model, jukebox, routed, &mut scope)
        };
        self.spans = spans;
        out
    }

    /// [`FleetHost::process`] with an explicit span-recording scope.
    fn process_scoped(
        &mut self,
        config: &FleetConfig,
        model: &ServiceModel,
        jukebox: bool,
        routed: RoutedInvocation,
        scope: &mut SpanScope<'_>,
    ) -> f64 {
        let at = routed.at_ms;
        let function = routed.function;
        let profile = function % model.functions();
        let invocation = self.invocations;

        self.apply_crash_boundaries(at);

        // Hedge copies are duplicate load, not arrivals: the merge
        // records the joined pair once, so only plain copies count here.
        if !routed.hedge {
            self.series.record_arrival(at);
        }

        // The retry budget caps how many attempts this invocation may
        // spend in total — reconnects against a down host and fault-layer
        // retries draw from the same allowance.
        let budget = &config.retry_budget;
        let tokens = if budget.is_limited() {
            self.retry_tokens[function]
        } else {
            0.0
        };
        let allowed_attempts = budget.allowed_attempts(tokens, config.retry.max_attempts);

        // Down-window: the connection fails outright. Retry with bounded
        // exponential backoff until the host is back or the allowance is
        // spent. Jitter comes from a per-invocation split stream, so the
        // wait is a pure function of (seed, host, invocation).
        let mut down_wait_ms = 0.0;
        let mut down_retries = 0u64;
        if !self.schedule.is_none() && self.schedule.state_at(at) == HostState::Down {
            let mut rng = DetRng::new(self.chaos_seed).split(invocation);
            // Right edge of each reconnect wait, kept only while a span
            // scope is live so the tiling can be emitted afterwards.
            let mut edges: Vec<f64> = Vec::new();
            while down_retries + 1 < allowed_attempts
                && self.schedule.state_at(at + down_wait_ms) == HostState::Down
            {
                down_retries += 1;
                down_wait_ms += config.retry.bounded_backoff_ms(down_retries, &mut rng);
                if scope.is_enabled() {
                    edges.push(down_wait_ms);
                }
            }
            let still_down = self.schedule.state_at(at + down_wait_ms) == HostState::Down;
            // Reconnect spans tile [0, down_wait) exactly; the last one
            // is flagged when the wait ended in abandonment.
            let mut prev = 0.0;
            for (i, &edge) in edges.iter().enumerate() {
                let last = i + 1 == edges.len();
                scope.child(
                    SpanKind::Reconnect,
                    prev,
                    edge,
                    (i + 1) as u64,
                    u64::from(still_down && last),
                );
                prev = edge;
            }
            if still_down {
                // Still down with nothing left to spend: abandoned
                // without ever executing.
                self.down_retries += down_retries;
                self.down_failures += 1;
                self.fault_stats.abandoned += 1;
                if budget.is_limited() {
                    let mut t = tokens;
                    budget.settle(&mut t, down_retries, false);
                    self.retry_tokens[function] = t;
                }
                scope.root(down_wait_ms, self.host_id as u64, tick_us(at));
                return self.retire(
                    routed,
                    function,
                    down_wait_ms,
                    down_retries,
                    false,
                    StartClass::Cold,
                );
            }
            self.down_retries += down_retries;
        }

        // Fire every timer due at this arrival boundary — keep-alive
        // expiries retire idle instances with the same deadline credit
        // the lazy sweep used to charge, and pre-restores spawn
        // back-dated instances — all in calendar order. Every live
        // instance keeps a queued expiry entry at or before its true
        // deadline, so the drain alone reproduces the old per-arrival
        // sweep's strict `at − last > hold` predicate exactly.
        self.drain_timers(at);

        if let Some(bank) = self.prewarm.as_mut() {
            let restore_est = self.last_restore_ms[function];
            let scheduled = bank.observe(function, at, restore_est);
            // Each observation replaces the function's pending
            // pre-restore; moving the key cancels any stale timer still
            // in the queue.
            self.prewarm_pending[function] = scheduled;
            if let Some(t_pre) = scheduled {
                self.timers.push(
                    t_pre,
                    self.host_id as u32,
                    FleetEventKind::PrewarmTimer,
                    function as u32,
                );
            }
        }

        // Admission ladder: shed before any pool state is touched.
        let mut degrade_restore = false;
        if let Some(ctl) = self.admission.as_mut() {
            let verdict = match ctl.decide(at, function, self.pool.warm_count()) {
                AdmissionDecision::Admit => 0,
                AdmissionDecision::AdmitDegraded => {
                    degrade_restore = true;
                    1
                }
                AdmissionDecision::Shed => 2,
            };
            scope.instant(SpanKind::Admission, down_wait_ms, verdict, 0);
            if verdict == 2 {
                if !routed.hedge {
                    self.series.record_shed(at);
                }
                // The observation above may have tightened this
                // function's hold without an invocation to re-key it.
                self.resync_expiry(function);
                // A shed invocation never executes: its root covers only
                // the reconnect wait it burned getting here.
                scope.root(down_wait_ms, self.host_id as u64, tick_us(at));
                return 0.0;
            }
        }

        // A memory-pressure eviction during the idle gap takes the warm
        // instance away before the invocation lands. The fault plan only
        // draws (and counts) this on warm starts, so when we act on it
        // here — evicting from the pool and flipping to a cold start —
        // we take over the bookkeeping it would have done.
        let mut starts_cold = self.live[function] == 0;
        if let Some(id) = self.live_id(function) {
            if self.faults.evicted_before(invocation) {
                self.pool.evict(id);
                self.set_live(function, None);
                self.take_prewarm_ready(function);
                self.tenancy_release(function);
                self.fault_stats.evictions += 1;
                self.events.record(Event {
                    ts: 0,
                    dur: 0,
                    kind: EventKind::FaultDraw,
                    a: fault_kind_index(FaultKind::MemoryPressureEviction),
                    b: 0,
                });
                starts_cold = true;
            }
        }

        // Under `Instant` the cold start is a full boot priced by the
        // flat config knob; the snapshot models replace it with the
        // restore cost of bringing the working set back (lazy faults or
        // a REAP prefetch of the recorded pages).
        let mut cold_start_ms = config.cold_start_ms;
        let mut class = StartClass::Cold;
        let mut service_ms = if starts_cold {
            let (id, restore_ms) = if degrade_restore && self.pool.snapshots().is_some() {
                // Memory-pressure rung: restore by lazy paging instead
                // of a prefetch burst the pressured host can't afford.
                // Pays the full page count — a pressured host can't
                // count on co-resident sharing either.
                let spawned = self.pool.spawn_restored_degraded(function, at);
                if let Some(ctl) = self.admission.as_mut() {
                    ctl.note_degraded_restore();
                }
                spawned
            } else {
                // Pages already resident from co-located same-language
                // instances come off the restore bill (0 resident — the
                // disabled path — prices identically to pre-tenancy).
                let resident = self.tenancy_resident(function);
                self.pool.spawn_restored_shared(function, at, resident)
            };
            self.tenancy_register(function, id);
            if self.pool.snapshots().is_some() {
                cold_start_ms = restore_ms;
            }
            if self.prewarm.is_some() {
                // Keep the pre-warm lead-time estimate tracking the
                // restore model's actual pricing.
                self.last_restore_ms[function] = cold_start_ms;
            }
            self.pool.invoke(id, at);
            self.set_live(function, Some(id));
            self.cold_starts += 1;
            // A fresh container has nothing resident: full penalty, and
            // Jukebox has no prior invocation to replay.
            model.service_ms(profile, 1.0, false)
        } else if let Some(ready_ms) = self.take_prewarm_ready(function) {
            // The arrival landed on an instance pre-restored ahead of
            // it. Memory is up (no boot, no restore burst on the
            // critical path — only the residual wait if the arrival
            // beat the restore), but nothing is cache-resident from a
            // *prior invocation*: microarchitecturally this is the
            // paper's lukewarm case at full interleaving penalty, and
            // Jukebox replays the snapshot's recorded history.
            let id = self.live_id(function).expect("prewarmed path has a live id");
            self.pool.invoke(id, at).expect("live id is in the pool");
            self.lukewarm_hits += 1;
            self.prewarm_hits += 1;
            class = StartClass::Lukewarm;
            self.degree_sum += 1.0;
            (ready_ms - at).max(0.0) + model.service_ms(profile, 1.0, jukebox)
        } else {
            let id = self.live_id(function).expect("warm path has a live id");
            let gap_ms = self.pool.invoke(id, at).expect("live id is in the pool");
            let elapsed_sec = at / 1000.0;
            let other_per_sec = if elapsed_sec > 0.0 {
                let host_rate = self.invocations as f64 / elapsed_sec;
                let own_rate = self.fn_invocations[function] as f64 / elapsed_sec;
                (host_rate - own_rate).max(0.0)
            } else {
                0.0
            };
            let degree = model.degree(other_per_sec, gap_ms);
            if degree >= model.lukewarm_threshold {
                self.lukewarm_hits += 1;
                class = StartClass::Lukewarm;
            } else {
                self.warm_hits += 1;
                class = StartClass::Warm;
            }
            self.degree_sum += degree;
            model.service_ms(profile, degree, jukebox)
        };

        // A degraded host is up but slow: thermal throttling or a noisy
        // neighbour stretches execution, not queueing or restores.
        if !self.schedule.is_none() && self.schedule.state_at(at) == HostState::Degraded {
            service_ms *= config.chaos.degrade_slowdown;
        }

        // Co-residency pressure: when the registered working sets crowd
        // the host's memory capacity, every page access — execution and
        // restore faults alike — slows by the contention curve's factor.
        // A continuous penalty, not a binary cliff.
        if let Some(tenancy) = self.tenancy.as_mut() {
            let slowdown = tenancy.slowdown();
            if slowdown > 1.0 {
                let before = service_ms + if starts_cold { cold_start_ms } else { 0.0 };
                service_ms *= slowdown;
                cold_start_ms *= slowdown;
                let after = service_ms + if starts_cold { cold_start_ms } else { 0.0 };
                tenancy.note_slowed(after - before);
            }
        }

        self.events.record(Event {
            ts: (at * 1000.0) as u64,
            dur: 0,
            kind: EventKind::Dispatch,
            a: function as u64,
            b: self.host_id as u64,
        });

        let costs = AttemptCosts {
            service_ms,
            cold_start_ms,
            timeout_ms: config.timeout_ms,
            starts_cold,
        };
        // Reconnect retries already spent their share of the allowance;
        // the fault layer gets what is left (always ≥ 1 attempt here).
        let policy = RetryPolicy {
            max_attempts: allowed_attempts - down_retries,
            ..config.retry
        };
        let crashes_before = self.fault_stats.crashes;
        // Fast path: with the fault plan disabled nothing can strike (no
        // eviction, crash, timeout, or retry — none of their streams are
        // even drawn), and with the span scope disabled no child spans
        // are recorded. The fault layer would then charge exactly one
        // clean attempt; replicate it here without the attempt loop.
        // `0.0 + x == x` bit-exactly for the non-negative costs involved,
        // so the summed latency matches the layer's running accumulator.
        let result = if !self.faults.is_enabled() && !scope.is_enabled() {
            self.fault_stats.completed += 1;
            InvocationResult {
                latency_ms: (if starts_cold { costs.cold_start_ms } else { 0.0 })
                    + costs.service_ms,
                attempts: 1,
                completed: true,
            }
        } else {
            self.faults.run_invocation_spanned(
                &policy,
                invocation,
                &costs,
                &mut self.fault_stats,
                &mut self.events,
                scope,
                down_wait_ms,
            )
        };

        // Crashes tear the instance down. If the retry layer recovered,
        // its final attempt ran on a fresh spawn; reflect that in the
        // pool. If it gave up, the function has no live instance left.
        let crashed = self.fault_stats.crashes > crashes_before;
        if let Some(id) = self.live_id(function) {
            if crashed || !result.completed {
                self.pool.evict(id);
                self.set_live(function, None);
                self.tenancy_release(function);
            }
            if crashed && result.completed {
                let fresh = self.pool.spawn(function, at);
                self.pool.invoke(fresh, at);
                self.set_live(function, Some(fresh));
                self.tenancy_register(function, fresh);
            }
        }
        // Whatever instance is live now was just invoked at `at`: re-key
        // its keep-alive deadline under the hold in force.
        if self.live[function] != 0 {
            self.schedule_expiry(function, at + self.hold_for(function));
        }

        let fault_retries = result.attempts.saturating_sub(1);
        self.retries += fault_retries;
        if budget.is_limited() {
            let mut t = tokens;
            budget.settle(&mut t, down_retries + fault_retries, result.completed);
            self.retry_tokens[function] = t;
        }
        let latency_ms = down_wait_ms + result.latency_ms;
        if let Some(ctl) = self.admission.as_mut() {
            ctl.commit(at, function, latency_ms);
        }
        // The root's tick duration equals the histogram's recorded value
        // exactly (same float, same rounding), and the children tiled
        // every contributing window — exact critical-path attribution.
        scope.root(latency_ms, self.host_id as u64, tick_us(at));
        self.retire(
            routed,
            function,
            latency_ms,
            down_retries + result.attempts,
            result.completed,
            class,
        )
    }

    /// Warm hits of either temperature.
    pub fn hits(&self) -> u64 {
        self.warm_hits + self.lukewarm_hits
    }

    /// Mean interleaving degree over warm hits (0 when there were none).
    pub fn mean_degree(&self) -> f64 {
        if self.hits() == 0 {
            0.0
        } else {
            self.degree_sum / self.hits() as f64
        }
    }

    /// Currently warm instances.
    pub fn warm_instances(&self) -> usize {
        self.pool.warm_count()
    }

    /// Warm-pool occupancy in instance-milliseconds through `end_ms`,
    /// priced under this host's holds in force (adaptive when
    /// prediction is on, the global keep-alive otherwise). Read-only —
    /// see [`server::InstancePool::residency_ms_through`].
    pub fn memory_ms_through(&self, end_ms: f64) -> f64 {
        self.pool
            .residency_ms_through(end_ms, self.prewarm.as_ref().map(|b| b.holds()))
    }

    /// Pre-restores the policy bank scheduled (0 when prediction is
    /// off; scheduled ≥ spawned, since a raised hold cancels a pending
    /// pre-warm).
    pub fn prewarms_scheduled(&self) -> u64 {
        self.prewarm.as_ref().map_or(0, |b| b.prewarms_scheduled())
    }

    /// Arrivals processed while a tightened (below-cap) adaptive hold
    /// was in force (0 when prediction is off).
    pub fn early_decays(&self) -> u64 {
        self.prewarm.as_ref().map_or(0, |b| b.early_decays())
    }

    /// The admission controller, when admission control is enabled.
    pub fn admission(&self) -> Option<&AdmissionControl> {
        self.admission.as_ref()
    }

    /// The host's tenancy state, when some tenancy knob is enabled.
    pub fn tenancy(&self) -> Option<&HostTenancy> {
        self.tenancy.as_ref()
    }

    /// Contributes this host's telemetry: pool and fault counters,
    /// `fleet.*` lifecycle counters, and the latency histogram. Safe to
    /// call on per-shard registries that are later merged — everything
    /// is additive.
    pub fn fill_registry(&self, registry: &mut Registry) {
        self.pool.fill_registry(registry);
        self.fault_stats.fill_registry(registry);
        registry.counter_add("fleet.invocations", self.invocations);
        registry.counter_add("fleet.cold_starts", self.cold_starts);
        registry.counter_add("fleet.warm_hits", self.warm_hits);
        registry.counter_add("fleet.lukewarm_hits", self.lukewarm_hits);
        registry.hist_merge("fleet.latency_us", &self.latency_us);
        // The resilience series only exist when some resilience knob is
        // on — a disabled run must export byte-identical telemetry.
        if self.resilient {
            registry.counter_add("fleet.host_crashes", self.host_crashes);
            registry.counter_add("fleet.retries", self.retries + self.down_retries);
            registry.counter_add("fleet.down_failures", self.down_failures);
        }
        if let Some(ctl) = &self.admission {
            registry.counter_add("admission.admitted", ctl.admitted());
            registry.counter_add("admission.degraded_restores", ctl.degraded_restores());
            registry.counter_add("admission.shed", ctl.shed());
        }
        // The prediction series only exist when the policy is on — a
        // disabled run must export byte-identical telemetry.
        if let Some(bank) = &self.prewarm {
            registry.counter_add("predict.prewarms_scheduled", bank.prewarms_scheduled());
            registry.counter_add("predict.prewarm_spawns", self.prewarm_spawns);
            registry.counter_add("predict.prewarm_hits", self.prewarm_hits);
            registry.counter_add("predict.early_decays", bank.early_decays());
        }
        // The tenancy series only exist when some tenancy knob is on —
        // a disabled run must export byte-identical telemetry.
        if let Some(tenancy) = &self.tenancy {
            registry.counter_add("tenancy.shared_pages", tenancy.shared_pages());
            registry.counter_add("tenancy.dedup_hits", tenancy.dedup_hits());
            registry.counter_add("tenancy.dedup_bytes_saved", tenancy.dedup_bytes_saved());
            registry.counter_add("tenancy.slowed_invocations", tenancy.slowed());
            // Total contention-added latency, rounded to whole ms — the
            // registry speaks integers.
            registry.counter_add("tenancy.contention_slowdown", tenancy.extra_ms().round() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::ServiceModel;
    use workloads::paper_suite;

    fn setup() -> (FleetConfig, ServiceModel) {
        let config = FleetConfig {
            population: 10,
            events_capacity: 64,
            ..FleetConfig::default()
        };
        let model = ServiceModel::analytic(&paper_suite()).unwrap();
        (config, model)
    }

    #[test]
    fn first_touch_is_cold_then_warm() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        let cold = host.process(
            &config,
            &model,
            false,
            RoutedInvocation::new(0.0, 3),
        );
        assert_eq!(host.cold_starts, 1);
        assert_eq!(host.hits(), 0);
        let warm = host.process(
            &config,
            &model,
            false,
            RoutedInvocation::new(10.0, 3),
        );
        assert_eq!(host.hits(), 1);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        assert_eq!(host.invocations, 2);
        assert_eq!(host.warm_instances(), 1);
    }

    #[test]
    fn keep_alive_expiry_forces_a_new_cold_start() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        host.process(&config, &model, false, RoutedInvocation::new(0.0, 0));
        let later = config.keep_alive_ms + 1000.0;
        host.process(&config, &model, false, RoutedInvocation::new(later, 0));
        assert_eq!(host.cold_starts, 2);
        assert_eq!(host.hits(), 0);
    }

    #[test]
    fn long_gaps_classify_as_lukewarm_short_as_warm() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        // Foreign traffic so the interleaving estimate has pressure.
        for i in 0..2000 {
            let at = i as f64 * 2.0;
            host.process(&config, &model, false, RoutedInvocation::new(at, 1 + (i % 9)));
        }
        host.process(&config, &model, false, RoutedInvocation::new(4000.0, 0));
        let before = (host.warm_hits, host.lukewarm_hits);
        // 1ms gap: caches still hot.
        host.process(&config, &model, false, RoutedInvocation::new(4001.0, 0));
        assert_eq!(host.warm_hits, before.0 + 1, "short gap should stay warm");
        // 10s gap inside keep-alive: lukewarm.
        host.process(&config, &model, false, RoutedInvocation::new(14_001.0, 0));
        assert_eq!(host.lukewarm_hits, before.1 + 1, "long gap should be lukewarm");
    }

    #[test]
    fn jukebox_only_speeds_up_warm_traffic() {
        let (config, model) = setup();
        let mut base = FleetHost::new(&config, 0);
        let mut jb = FleetHost::new(&config, 0);
        let mut base_sum = 0.0;
        let mut jb_sum = 0.0;
        for i in 0..500 {
            let routed = RoutedInvocation::new(i as f64 * 50.0, i % 5);
            base_sum += base.process(&config, &model, false, routed);
            jb_sum += jb.process(&config, &model, true, routed);
        }
        assert_eq!(base.cold_starts, jb.cold_starts);
        assert!(jb_sum < base_sum, "jukebox {jb_sum} vs base {base_sum}");
    }

    #[test]
    fn fault_free_hosts_share_no_fault_state() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        for i in 0..100 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 10.0, i % 10));
        }
        assert_eq!(host.fault_stats.total_faults(), 0);
        assert_eq!(host.fault_stats.completed, 100);
        assert_eq!(host.latency_us.count(), 100);
    }

    #[test]
    fn faulty_host_keeps_pool_and_liveness_consistent() {
        let (mut config, model) = setup();
        config.fault_rates = server::FaultRates {
            crash: 0.2,
            timeout: 0.1,
            cold_start_failure: 0.1,
            memory_pressure: 0.2,
        };
        config.validate().unwrap();
        let mut host = FleetHost::new(&config, 0);
        for i in 0..500 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 10.0, i % 10));
        }
        assert!(host.fault_stats.total_faults() > 0, "faults should strike");
        assert_eq!(
            host.fault_stats.completed + host.fault_stats.abandoned,
            500
        );
        // Every live entry must point at a real pool instance.
        for function in 0..host.live.len() {
            if let Some(id) = host.live_id(function) {
                assert!(
                    host.pool.instance(id).is_some(),
                    "function {function} maps to dead instance {id}"
                );
            }
        }
    }

    #[test]
    fn reap_restores_are_cheaper_than_lazy_paging() {
        let (config, model) = setup();
        let lazy_config = FleetConfig {
            cold_start_model: ColdStartModel::LazyPaging,
            ..config.clone()
        };
        let reap_config = FleetConfig {
            cold_start_model: ColdStartModel::ReapPrefetch,
            ..config.clone()
        };
        let mut lazy = FleetHost::new(&lazy_config, 0);
        let mut reap = FleetHost::new(&reap_config, 0);
        let mut lazy_sum = 0.0;
        let mut reap_sum = 0.0;
        // Space invocations past keep-alive so every one restarts cold;
        // REAP has metadata from the second restore on.
        for i in 0..8 {
            let routed = RoutedInvocation::new(i as f64 * (config.keep_alive_ms + 1000.0), 0);
            lazy_sum += lazy.process(&lazy_config, &model, false, routed);
            reap_sum += reap.process(&reap_config, &model, false, routed);
        }
        assert_eq!(lazy.cold_starts, 8);
        assert_eq!(reap.cold_starts, 8);
        assert!(
            reap_sum < lazy_sum,
            "reap {reap_sum} should beat lazy {lazy_sum}"
        );
    }

    #[test]
    fn instant_model_exports_no_snapshot_series() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        for i in 0..20 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 10.0, i % 10));
        }
        let mut registry = Registry::new();
        host.fill_registry(&mut registry);
        assert!(
            !registry.snapshot().to_json().contains("snapshot."),
            "Instant hosts must not grow snapshot.* series"
        );
    }

    #[test]
    fn snapshot_hosts_export_restore_telemetry() {
        let (config, model) = setup();
        let config = FleetConfig {
            cold_start_model: ColdStartModel::ReapPrefetch,
            ..config
        };
        let mut host = FleetHost::new(&config, 0);
        for i in 0..20 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 10.0, i % 10));
        }
        let mut registry = Registry::new();
        host.fill_registry(&mut registry);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("snapshot.restores"), host.cold_starts);
        assert!(snapshot.counter("snapshot.pages_recorded") > 0);
    }

    #[test]
    fn prewarmed_periodic_function_skips_the_cold_start() {
        use luke_predict::PrewarmConfig;
        let (config, model) = setup();
        let keep_alive_ms = 2_000.0;
        let plain_config = FleetConfig {
            keep_alive_ms,
            ..config.clone()
        };
        let prewarm_config = FleetConfig {
            keep_alive_ms,
            prewarm: PrewarmConfig {
                min_samples: 4,
                ..PrewarmConfig::default_enabled()
            },
            ..config
        };
        let mut plain = FleetHost::new(&plain_config, 0);
        let mut warm = FleetHost::new(&prewarm_config, 0);
        // Strict 5 s period, far past the 2 s keep-alive: without
        // prediction every arrival is a cold boot; with it, the
        // periodicity head schedules a pre-restore before each one.
        for i in 0..40 {
            let routed = RoutedInvocation::new(i as f64 * 5_000.0, 0);
            plain.process(&plain_config, &model, false, routed);
            warm.process(&prewarm_config, &model, false, routed);
        }
        assert_eq!(plain.cold_starts, 40);
        assert!(
            warm.prewarm_hits > 30,
            "prewarm hits {} of 40 arrivals",
            warm.prewarm_hits
        );
        assert!(warm.cold_starts < 10, "cold starts {}", warm.cold_starts);
        assert!(
            warm.latency_sum_ms < plain.latency_sum_ms,
            "prewarmed {} vs plain {}",
            warm.latency_sum_ms,
            plain.latency_sum_ms
        );
    }

    #[test]
    fn disabled_prewarm_keeps_the_exact_fixed_keep_alive_state() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        for i in 0..200 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 25.0, i % 10));
        }
        assert_eq!(host.prewarm_spawns, 0);
        assert_eq!(host.prewarm_hits, 0);
        assert_eq!(host.prewarms_scheduled(), 0);
        assert_eq!(host.early_decays(), 0);
        let mut registry = Registry::new();
        host.fill_registry(&mut registry);
        assert!(
            !registry.snapshot().to_json().contains("predict."),
            "disabled hosts must not grow predict.* series"
        );
    }

    #[test]
    fn prewarm_registry_series_appear_when_enabled() {
        use luke_predict::PrewarmConfig;
        let (config, model) = setup();
        let config = FleetConfig {
            keep_alive_ms: 2_000.0,
            prewarm: PrewarmConfig {
                min_samples: 4,
                ..PrewarmConfig::default_enabled()
            },
            ..config
        };
        let mut host = FleetHost::new(&config, 0);
        for i in 0..40 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 5_000.0, 0));
        }
        let mut registry = Registry::new();
        host.fill_registry(&mut registry);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("predict.prewarm_spawns"), host.prewarm_spawns);
        assert_eq!(snapshot.counter("predict.prewarm_hits"), host.prewarm_hits);
        assert!(snapshot.counter("predict.early_decays") > 0);
    }

    #[test]
    fn memory_accounting_tracks_the_pool() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        for i in 0..50 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 100.0, i % 10));
        }
        // 10 functions resident from their first touch through the
        // horizon (all gaps far inside keep-alive).
        let end_ms = 4_900.0;
        let memory = host.memory_ms_through(end_ms);
        assert!(memory > 0.0);
        assert!(
            memory <= 10.0 * end_ms,
            "{memory} exceeds 10 instances × horizon"
        );
    }

    #[test]
    fn registry_contribution_is_additive() {
        let (config, model) = setup();
        let mut host = FleetHost::new(&config, 0);
        for i in 0..50 {
            host.process(&config, &model, false, RoutedInvocation::new(i as f64 * 20.0, i % 10));
        }
        let mut registry = Registry::new();
        host.fill_registry(&mut registry);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("fleet.invocations"), 50);
        assert_eq!(
            snapshot.counter("fleet.cold_starts")
                + snapshot.counter("fleet.warm_hits")
                + snapshot.counter("fleet.lukewarm_hits"),
            50
        );
    }
}
