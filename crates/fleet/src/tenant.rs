//! Per-host tenancy state: the shared-page store, the contention
//! model, and the registration ledger tying them to the host's live
//! instances.
//!
//! A host owns exactly one [`HostTenancy`] when any tenancy knob is on
//! (`None` otherwise — the disabled feature takes the exact pre-tenancy
//! code path). The wrapper keeps the store and the host's instance
//! lifecycle in lock-step: every spawn registers the function's page
//! layout (dedup-aware when enabled), every expiry/eviction releases
//! it, and a whole-host crash wipes the resident set the way it wipes
//! the pool. All state is host-local, so fleet runs stay bit-identical
//! across thread counts.

use luke_tenancy::{ContentionModel, FunctionLayout, SharedPageStore, TenancyConfig};

use crate::config::FleetConfig;

/// One host's tenancy state (see module docs).
#[derive(Clone, Debug)]
pub struct HostTenancy {
    /// Page layout per suite profile (`function % layouts.len()`).
    layouts: Vec<FunctionLayout>,
    /// Per logical function: whether its live instance's pages are
    /// currently registered in the store. Mirrors the host's `live`
    /// table so release exactly undoes register.
    registered: Vec<bool>,
    /// The host's content-addressed page store.
    store: SharedPageStore,
    /// Pressure-to-slowdown curve (present only when contention is on).
    contention: Option<ContentionModel>,
    /// Whether shared pages dedupe (off: every page charged private).
    dedup: bool,
    /// Fraction of library pages dirtied at startup (COW-broken).
    cow_dirty_fraction: f64,
    /// Accumulated contention-added latency, ms.
    extra_ms: f64,
    /// Invocations that ran with a slowdown factor above 1.
    slowed: u64,
}

impl HostTenancy {
    /// Builds the host's tenancy state, or `None` when every knob is
    /// off — the `None` path must stay bit-transparent, so the wrapper
    /// simply doesn't exist for a disabled config.
    pub fn new(config: &FleetConfig) -> Option<Self> {
        if !config.tenancy.enabled() {
            return None;
        }
        let TenancyConfig {
            dedup,
            cow_dirty_fraction,
            contention,
        } = config.tenancy;
        Some(HostTenancy {
            layouts: workloads::paper_suite()
                .iter()
                .map(FunctionLayout::for_profile)
                .collect(),
            registered: vec![false; config.population],
            store: SharedPageStore::new(),
            contention: contention.enabled().then(|| ContentionModel::new(&contention)),
            dedup,
            cow_dirty_fraction,
            extra_ms: 0.0,
            slowed: 0,
        })
    }

    /// The page layout backing logical function `function`.
    fn layout_of(&self, function: usize) -> &FunctionLayout {
        &self.layouts[function % self.layouts.len()]
    }

    /// Shareable pages of `function`'s layout already resident on this
    /// host — the pages a restore doesn't have to bring back. Always 0
    /// with dedup off (nothing registers as shared).
    pub fn resident_pages(&self, function: usize) -> usize {
        if !self.dedup {
            return 0;
        }
        self.store.resident_shared(self.layout_of(function)) as usize
    }

    /// Registers `function`'s pages for its freshly-spawned instance
    /// and returns the memory-accounting weight: the fraction of its
    /// footprint this host actually materialized after dedup.
    pub fn register(&mut self, function: usize) -> f64 {
        let layout = *self.layout_of(function);
        let registration = self
            .store
            .register(&layout, self.dedup, self.cow_dirty_fraction);
        self.registered[function] = true;
        registration.weight
    }

    /// Releases `function`'s registration (instance expired, evicted,
    /// or crashed). Idempotent via the ledger: a function with no
    /// registered instance is a no-op, so defensive teardown paths
    /// can't double-release.
    pub fn release(&mut self, function: usize) {
        if !self.registered[function] {
            return;
        }
        self.registered[function] = false;
        let layout = *self.layout_of(function);
        self.store
            .release(&layout, self.dedup, self.cow_dirty_fraction);
    }

    /// Wipes the resident set after a whole-host crash — everything the
    /// pool lost, the store loses too. Cumulative counters survive.
    pub fn clear_resident(&mut self) {
        self.store.clear_resident();
        self.registered.fill(false);
    }

    /// The contention slowdown factor in force right now (1.0 with
    /// contention off or pressure under the knee).
    pub fn slowdown(&self) -> f64 {
        self.contention
            .as_ref()
            .map_or(1.0, |model| model.slowdown(self.store.resident_bytes()))
    }

    /// Charges the bookkeeping for one invocation that ran under
    /// `slowdown`, which added `extra_ms` to its critical path.
    pub fn note_slowed(&mut self, extra_ms: f64) {
        self.extra_ms += extra_ms;
        self.slowed += 1;
    }

    /// Distinct shared pages ever registered.
    pub fn shared_pages(&self) -> u64 {
        self.store.shared_pages()
    }

    /// Shared-page registrations that hit an already-resident page.
    pub fn dedup_hits(&self) -> u64 {
        self.store.dedup_hits()
    }

    /// Bytes dedup avoided materializing (hits × page size).
    pub fn dedup_bytes_saved(&self) -> u64 {
        self.store.dedup_bytes_saved()
    }

    /// Shared-page hit rate over all shared registrations.
    pub fn hit_rate(&self) -> f64 {
        self.store.hit_rate()
    }

    /// Bytes currently resident (shared once + private per instance).
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }

    /// Total contention-added latency, ms.
    pub fn extra_ms(&self) -> f64 {
        self.extra_ms
    }

    /// Invocations that ran slowed (factor above 1).
    pub fn slowed(&self) -> u64 {
        self.slowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use luke_tenancy::ContentionConfig;

    fn enabled_config() -> FleetConfig {
        FleetConfig {
            population: 8,
            tenancy: TenancyConfig::default_enabled(),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn disabled_config_builds_no_state() {
        assert!(HostTenancy::new(&FleetConfig::default()).is_none());
        assert!(HostTenancy::new(&enabled_config()).is_some());
    }

    #[test]
    fn register_release_round_trips_the_resident_set() {
        let mut tenancy = HostTenancy::new(&enabled_config()).unwrap();
        assert_eq!(tenancy.resident_pages(0), 0);
        let w0 = tenancy.register(0);
        assert!(w0 > 0.0 && w0 <= 1.0);
        // A second function in the same language now finds that
        // language's runtime pages resident.
        let other = (0..8)
            .find(|&f| {
                f != 0
                    && tenancy.layout_of(f).language == tenancy.layout_of(0).language
                    && f % tenancy.layouts.len() != 0
            })
            .expect("suite has co-language functions");
        assert!(tenancy.resident_pages(other) > 0);
        let w1 = tenancy.register(other);
        assert!(w1 < 1.0, "dedup must shrink the second weight: {w1}");
        tenancy.release(other);
        tenancy.release(0);
        assert_eq!(tenancy.resident_bytes(), 0);
        // Double-release is a guarded no-op.
        tenancy.release(0);
        assert_eq!(tenancy.resident_bytes(), 0);
    }

    #[test]
    fn crash_wipe_clears_residency_but_keeps_counters() {
        let mut tenancy = HostTenancy::new(&enabled_config()).unwrap();
        tenancy.register(0);
        tenancy.register(1);
        let shared = tenancy.shared_pages();
        assert!(shared > 0);
        tenancy.clear_resident();
        assert_eq!(tenancy.resident_bytes(), 0);
        assert_eq!(tenancy.shared_pages(), shared);
        // Re-registering after the wipe starts from cold.
        assert_eq!(tenancy.resident_pages(0), 0);
        tenancy.register(0);
        assert!(tenancy.resident_bytes() > 0);
    }

    #[test]
    fn contention_slowdown_rises_with_registered_load() {
        let config = FleetConfig {
            population: 8,
            tenancy: TenancyConfig {
                contention: ContentionConfig {
                    // Small capacity so a handful of instances crosses
                    // the knee.
                    capacity_bytes: 2 << 20,
                    ..ContentionConfig::default_enabled()
                },
                ..TenancyConfig::default_enabled()
            },
            ..FleetConfig::default()
        };
        let mut tenancy = HostTenancy::new(&config).unwrap();
        assert_eq!(tenancy.slowdown(), 1.0);
        for function in 0..8 {
            tenancy.register(function);
        }
        assert!(tenancy.slowdown() > 1.0, "{}", tenancy.slowdown());
        tenancy.note_slowed(3.5);
        assert_eq!(tenancy.slowed(), 1);
        assert_eq!(tenancy.extra_ms(), 3.5);
    }

    #[test]
    fn dedup_off_still_tracks_pressure_for_contention() {
        let config = FleetConfig {
            population: 8,
            tenancy: TenancyConfig {
                dedup: false,
                ..TenancyConfig::default_enabled()
            },
            ..FleetConfig::default()
        };
        let mut tenancy = HostTenancy::new(&config).unwrap();
        tenancy.register(0);
        assert_eq!(tenancy.resident_pages(0), 0, "no discount with dedup off");
        assert!(tenancy.resident_bytes() > 0, "pressure still accrues");
        assert_eq!(tenancy.dedup_hits(), 0);
    }
}
