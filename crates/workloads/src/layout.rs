//! Static code layout and the canonical control-flow walk.
//!
//! A synthetic function's code is a set of **basic blocks** grouped into
//! **procedures**, placed into virtual-memory arenas by a per-language
//! policy (Go: procedure-contiguous; Python/NodeJS: scattered across
//! arenas, modelling interpreter handler dispatch and JIT fragment
//! placement). Between blocks, dead gaps are inserted so that the fraction
//! of touched lines per 1KB region matches the language's code density —
//! the knob that determines Jukebox metadata size (Figure 8).
//!
//! Execution follows a **canonical walk**: a fixed sequence of procedure
//! visits organized in rounds through a dispatcher (the event loop of the
//! gRPC server each function instance runs, §4.3). Core procedures appear
//! in every invocation; *optional groups* are included per invocation with
//! probability ½, producing the ≈0.9 Jaccard footprint commonality of
//! Figure 6b.

use crate::data_space::LocalityClass;
use crate::language::Language;
use crate::profile::FunctionProfile;
use luke_common::addr::{VirtAddr, LINE_BYTES};
use luke_common::rng::DetRng;

/// Base virtual address of the first code arena.
const CODE_BASE: u64 = 0x0000_4000_0000;
/// Spacing between arena bases. 24 arenas at 16MB stay well below the
/// data-space bases (0x6000_0000+).
const ARENA_STRIDE: u64 = 0x0100_0000; // 16MB

/// Operation template of one static instruction slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TemplateOp {
    /// Arithmetic/logic work.
    Alu,
    /// Load with the given operand locality.
    Load(LocalityClass),
    /// Store with the given operand locality.
    Store(LocalityClass),
    /// An internal conditional branch that, when taken, skips to the
    /// block's terminal instruction. `taken_probability` is the per-visit
    /// chance it is taken (sites are biased, hence predictable once the
    /// predictor is warm).
    CondBranch {
        /// Per-visit probability the branch is taken.
        taken_probability: f64,
    },
}

/// One static instruction slot within a block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Template {
    /// Byte offset from the block start.
    pub offset: u32,
    /// Encoded length in bytes.
    pub size: u8,
    /// Operation class.
    pub op: TemplateOp,
}

/// A basic block: straight-line templates plus a terminal control-transfer
/// slot whose kind is decided dynamically by the walk.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Start virtual address.
    pub start: VirtAddr,
    /// Total length in bytes, including the terminal slot.
    pub len: u32,
    /// Straight-line instruction slots (terminal excluded).
    pub templates: Vec<Template>,
    /// Offset of the terminal control-transfer instruction.
    pub terminal_offset: u32,
    /// Size of the terminal instruction.
    pub terminal_size: u8,
}

impl Block {
    /// Address one past the end of the block (the fall-through target).
    pub fn end(&self) -> VirtAddr {
        self.start.offset(self.len as u64)
    }

    /// Address of the terminal instruction.
    pub fn terminal_pc(&self) -> VirtAddr {
        self.start.offset(self.terminal_offset as u64)
    }

    /// Number of instruction slots including the terminal.
    pub fn instr_slots(&self) -> usize {
        self.templates.len() + 1
    }
}

/// A procedure: an ordered list of block indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proc {
    /// Indices into [`CodeLayout::blocks`].
    pub blocks: Vec<usize>,
}

/// One entry of the canonical walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Visit {
    /// Procedure to visit.
    pub proc: usize,
    /// `None` for core procedures; `Some(group)` for optional procedures,
    /// included per invocation iff the group's coin lands heads.
    pub optional_group: Option<u32>,
}

/// The complete static layout of a synthetic function.
#[derive(Clone, Debug)]
pub struct CodeLayout {
    /// All basic blocks.
    pub blocks: Vec<Block>,
    /// All procedures.
    pub procs: Vec<Proc>,
    /// The canonical walk (sweep followed by hot-loop rounds).
    pub canonical: Vec<Visit>,
    /// Number of leading [`CodeLayout::canonical`] entries that form the
    /// footprint-defining sweep; the rest is the hot loop. Per-invocation
    /// traces shuffle the sweep locally (see `trace::emit_invocation`).
    pub sweep_len: usize,
    /// Dispatcher head block (ends in the call to the visited procedure).
    pub dispatcher_head: Block,
    /// Dispatcher tail block (the call's return continuation; loops back).
    pub dispatcher_tail: Block,
    /// Number of optional groups referenced by the canonical walk.
    pub optional_groups: u32,
}

impl CodeLayout {
    /// Builds the layout for a profile. Deterministic in `profile.seed`.
    pub fn build(profile: &FunctionProfile) -> Self {
        Builder::new(profile).build()
    }

    /// Static lines covered by all blocks (the upper bound on any
    /// invocation's instruction footprint, dispatcher included).
    pub fn static_lines(&self) -> usize {
        let mut lines: Vec<u64> = self
            .blocks
            .iter()
            .chain([&self.dispatcher_head, &self.dispatcher_tail])
            .flat_map(block_lines)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Smallest half-open virtual-address range `[lo, hi)` covering every
    /// block, dispatcher included — the bounds within which any legitimate
    /// instruction fetch (and hence any valid prefetcher-metadata region)
    /// must fall.
    pub fn address_span(&self) -> (VirtAddr, VirtAddr) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for block in self
            .blocks
            .iter()
            .chain([&self.dispatcher_head, &self.dispatcher_tail])
        {
            lo = lo.min(block.start.as_u64());
            hi = hi.max(block.end().as_u64());
        }
        (VirtAddr::new(lo.min(hi)), VirtAddr::new(hi))
    }

    /// Estimated dynamic instructions of one full walk (all optional
    /// groups included).
    pub fn walk_instr_estimate(&self) -> u64 {
        let dispatcher =
            (self.dispatcher_head.instr_slots() + self.dispatcher_tail.instr_slots()) as u64;
        self.canonical
            .iter()
            .map(|v| {
                dispatcher
                    + self.procs[v.proc]
                        .blocks
                        .iter()
                        .map(|&b| self.blocks[b].instr_slots() as u64)
                        .sum::<u64>()
            })
            .sum()
    }
}

/// Lines spanned by a block.
fn block_lines(block: &Block) -> impl Iterator<Item = u64> {
    let first = block.start.line().index();
    let last = block.start.offset(block.len as u64 - 1).line().index();
    first..=last
}

struct Builder<'a> {
    profile: &'a FunctionProfile,
    rng: DetRng,
    cursors: Vec<u64>,
    last_counted_line: Vec<Option<u64>>,
    next_arena: usize,
    blocks: Vec<Block>,
    procs: Vec<Proc>,
    placed_lines: u64,
}

impl<'a> Builder<'a> {
    fn new(profile: &'a FunctionProfile) -> Self {
        // Scattered runtimes rotate procedures across more code areas
        // than the 16-entry CRRB can track, so revisits to a large code
        // region fall outside the CRRB lifetime and duplicate metadata
        // entries — the mechanism that makes >1KB regions inefficient for
        // them (Figure 8's rising right flank).
        let arenas = if profile.language.scattered_layout() {
            24
        } else {
            6
        };
        Builder {
            profile,
            rng: DetRng::new(profile.seed).split(0x1A10),
            cursors: (0..arenas)
                .map(|a| CODE_BASE + a as u64 * ARENA_STRIDE)
                .collect(),
            last_counted_line: vec![None; arenas],
            next_arena: 0,
            blocks: Vec::new(),
            procs: Vec::new(),
            placed_lines: 0,
        }
    }

    fn build(mut self) -> CodeLayout {
        let lang = self.profile.language;
        let total_lines = self.profile.code_footprint.lines().max(64);
        // Core lines are visited every invocation. The optional pool is
        // twice the per-invocation optional share because each group is
        // included with probability 1/2.
        let optional = self.profile.optional_fraction.clamp(0.0, 0.5);
        let core_target = (total_lines as f64 * (1.0 - optional)) as u64;
        let optional_target = (total_lines as f64 * 2.0 * optional) as u64;

        // Dispatcher: a dedicated hot arena-0 pair of blocks.
        let dispatcher_head = self.make_block(0, 32);
        let dispatcher_tail = self.make_block_at(dispatcher_head.end(), 24);
        // Move the arena cursor past the tail so no block overlaps it.
        self.cursors[0] = dispatcher_tail.end().as_u64() + LINE_BYTES as u64;

        let mut core_procs = Vec::new();
        while self.placed_lines < core_target {
            core_procs.push(self.make_proc(lang));
        }
        let core_placed = self.placed_lines;
        let mut optional_procs = Vec::new();
        while self.placed_lines < core_placed + optional_target {
            optional_procs.push(self.make_proc(lang));
        }

        // Canonical walk, phase 1 (the sweep): every core procedure once,
        // with optional procedures interspersed — this is the invocation's
        // footprint-defining pass. Optional procedures are interspersed
        // between core ones, one group per optional proc.
        let mut round = Vec::new();
        let opt_stride = if optional_procs.is_empty() {
            usize::MAX
        } else {
            (core_procs.len() / optional_procs.len()).max(1)
        };
        let mut opt_iter = optional_procs.iter().enumerate();
        let mut pending_opt = opt_iter.next();
        for (i, &proc) in core_procs.iter().enumerate() {
            round.push(Visit {
                proc,
                optional_group: None,
            });
            if i % opt_stride == opt_stride - 1 {
                if let Some((group, &proc)) = pending_opt {
                    round.push(Visit {
                        proc,
                        optional_group: Some(group as u32),
                    });
                    pending_opt = opt_iter.next();
                }
            }
        }
        // Any optional procs not yet placed go at the end of the round.
        while let Some((group, &proc)) = pending_opt {
            round.push(Visit {
                proc,
                optional_group: Some(group as u32),
            });
            pending_opt = opt_iter.next();
        }

        // Phase 2 (the hot loop): real handlers spend most of their
        // dynamic instructions re-executing a hot subset of the code
        // (request-processing inner loops), not re-sweeping the whole
        // footprint — which is why re-references mostly hit the L2 and
        // the per-invocation footprint equals one sweep. Every third core
        // procedure is hot.
        let visit_instrs = |procs: &[Proc], blocks: &[Block], v: &Visit| -> u64 {
            let body: u64 = procs[v.proc]
                .blocks
                .iter()
                .map(|&b| blocks[b].instr_slots() as u64)
                .sum();
            body + dispatcher_head.instr_slots() as u64 + dispatcher_tail.instr_slots() as u64
        };
        let sweep_instrs: u64 = round
            .iter()
            .map(|v| visit_instrs(&self.procs, &self.blocks, v))
            .sum();
        let hot: Vec<Visit> = core_procs
            .iter()
            .step_by(3)
            .map(|&proc| Visit {
                proc,
                optional_group: None,
            })
            .collect();
        let hot_instrs: u64 = hot
            .iter()
            .map(|v| visit_instrs(&self.procs, &self.blocks, v))
            .sum::<u64>()
            .max(1);
        let remaining = self.profile.instructions.saturating_sub(sweep_instrs);
        let hot_rounds = (remaining / hot_instrs).max(1) as usize;

        let mut canonical = Vec::with_capacity(round.len() + hot.len() * hot_rounds);
        canonical.extend(round.iter().copied());
        let sweep_len = canonical.len();
        for _ in 0..hot_rounds {
            canonical.extend(hot.iter().copied());
        }

        CodeLayout {
            blocks: self.blocks,
            procs: self.procs,
            canonical,
            sweep_len,
            dispatcher_head,
            dispatcher_tail,
            optional_groups: optional_procs.len() as u32,
        }
    }

    /// Creates a procedure of 3–8 blocks and registers it; returns its
    /// index.
    ///
    /// Blocks of a procedure are placed **back-to-back** (real compilers
    /// lay a function out contiguously, so intra-procedure control flow
    /// is fall-through and sequential for the fetch unit). After the
    /// procedure, an occupancy *hole* is left so that touched lines per
    /// 1KB region match the language target — the holes are the unused
    /// cold code (error paths, unreached library functions) that make
    /// instruction footprints spatially sparse. Successive procedures
    /// rotate arenas, so the walk hops between distant code areas at
    /// call granularity, like real runtimes.
    fn make_proc(&mut self, lang: Language) -> usize {
        let (lo, hi) = lang.proc_blocks_range();
        let n_blocks = self.rng.range(lo, hi + 1) as usize;
        self.next_arena = (self.next_arena + 1) % self.cursors.len();
        let arena = self.next_arena;
        let proc_start = self.cursors[arena];
        let lines_before = self.placed_lines;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let (lo, hi) = lang.block_len_range();
            let len = self.rng.range(lo, hi + 1) as u32;
            let block = self.make_block(arena, len);
            self.blocks.push(block);
            blocks.push(self.blocks.len() - 1);
        }
        // Occupancy hole: the procedure's touched lines should average
        // `lines_per_region` per 1KB of laid-out code span.
        const REGION_UNIT: f64 = 1024.0;
        let proc_bytes = (self.cursors[arena] - proc_start) as f64;
        let proc_lines = (self.placed_lines - lines_before) as f64;
        let span_target = REGION_UNIT * proc_lines / lang.lines_per_region();
        let hole = (span_target - proc_bytes).max(0.0) * (0.6 + 0.8 * self.rng.unit());
        // Advance past the hole, at least one full line so procedures
        // never share a cache line.
        self.cursors[arena] += hole as u64 + LINE_BYTES as u64;

        self.procs.push(Proc { blocks });
        self.procs.len() - 1
    }

    /// Places a block of `len` bytes at the arena cursor, back-to-back
    /// with the previous block (occupancy holes are inserted per
    /// procedure, not per block).
    fn make_block(&mut self, arena: usize, len: u32) -> Block {
        let start = VirtAddr::new(self.cursors[arena]);
        let block = self.make_block_at(start, len);
        let first_line = block.start.line().index();
        let last_line = block.start.offset(block.len as u64 - 1).line().index();
        let prev_counted = self.last_counted_line[arena];
        let new_first = if prev_counted == Some(first_line) {
            // The block shares its first line with the previous block.
            first_line + 1
        } else {
            first_line
        };
        if last_line >= new_first {
            self.placed_lines += last_line - new_first + 1;
        }
        self.last_counted_line[arena] = Some(last_line);
        self.cursors[arena] = block.end().as_u64();
        block
    }

    /// Creates a block at an explicit address with generated templates.
    fn make_block_at(&mut self, start: VirtAddr, len: u32) -> Block {
        let mix = self.profile.mix;
        let terminal_size = self.rng.range(2, 6) as u8;
        let body_len = len.saturating_sub(terminal_size as u32);
        let mut templates = Vec::new();
        let mut offset = 0u32;
        let mut since_branch = 0u32;
        while offset + 6 <= body_len {
            let size = self.rng.range(3, 7) as u8;
            let u = self.rng.unit();
            let op = if since_branch >= mix.branch_gap && self.rng.chance(mix.branch_chance) {
                since_branch = 0;
                TemplateOp::CondBranch {
                    taken_probability: 1.0 - self.profile.language.branch_bias(),
                }
            } else if u < mix.load {
                TemplateOp::Load(sample_locality(&mut self.rng))
            } else if u < mix.load + mix.store {
                TemplateOp::Store(sample_locality(&mut self.rng))
            } else {
                TemplateOp::Alu
            };
            since_branch += 1;
            templates.push(Template { offset, size, op });
            offset += size as u32;
        }
        Block {
            start,
            len: offset + terminal_size as u32,
            templates,
            terminal_offset: offset,
            terminal_size,
        }
    }
}

fn sample_locality(rng: &mut DetRng) -> LocalityClass {
    crate::data_space::DataSpace::sample_class(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::paper_suite;
    use crate::profile::FunctionProfile;

    fn small(name: &str) -> FunctionProfile {
        FunctionProfile::named(name).expect("suite").scaled(0.05)
    }

    #[test]
    fn build_is_deterministic() {
        let p = small("Auth-G");
        let a = CodeLayout::build(&p);
        let b = CodeLayout::build(&p);
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(a.canonical.len(), b.canonical.len());
        assert_eq!(a.blocks[0], b.blocks[0]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = small("Auth-G");
        let a = CodeLayout::build(&p);
        p.seed += 1;
        let b = CodeLayout::build(&p);
        // Same base addresses, but the generated structure must differ.
        assert_ne!(
            (a.blocks.len(), a.blocks[0].len),
            (b.blocks.len(), b.blocks[0].len),
        );
    }

    #[test]
    fn static_lines_near_target() {
        for name in ["Auth-G", "Pay-N", "Email-P"] {
            let p = small(name);
            let layout = CodeLayout::build(&p);
            let target = p.code_footprint.lines() as f64;
            // Static pool = core + 2x optional share.
            let expected = target * (1.0 + p.optional_fraction);
            let actual = layout.static_lines() as f64;
            let ratio = actual / expected;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{name}: {actual} lines vs expected {expected} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn walk_instrs_near_target() {
        for name in ["Auth-G", "Pay-N", "Fib-P"] {
            let p = small(name);
            let layout = CodeLayout::build(&p);
            let est = layout.walk_instr_estimate() as f64;
            let target = p.instructions as f64;
            let ratio = est / target;
            assert!(
                (0.6..2.2).contains(&ratio),
                "{name}: estimated {est} instrs vs target {target}"
            );
        }
    }

    #[test]
    fn canonical_has_multiple_rounds() {
        let layout = CodeLayout::build(&small("Fib-G"));
        let unique_procs: std::collections::BTreeSet<usize> =
            layout.canonical.iter().map(|v| v.proc).collect();
        assert!(layout.canonical.len() >= 2 * unique_procs.len());
    }

    #[test]
    fn every_proc_appears_in_canonical() {
        let layout = CodeLayout::build(&small("Auth-N"));
        let visited: std::collections::BTreeSet<usize> =
            layout.canonical.iter().map(|v| v.proc).collect();
        assert_eq!(visited.len(), layout.procs.len());
    }

    #[test]
    fn optional_groups_present_and_bounded() {
        let layout = CodeLayout::build(&small("RecO-P"));
        assert!(layout.optional_groups > 0);
        for v in &layout.canonical {
            if let Some(g) = v.optional_group {
                assert!(g < layout.optional_groups);
            }
        }
    }

    #[test]
    fn blocks_do_not_overlap_within_arena() {
        let layout = CodeLayout::build(&small("Ship-G"));
        let mut spans: Vec<(u64, u64)> = layout
            .blocks
            .iter()
            .map(|b| (b.start.as_u64(), b.end().as_u64()))
            .collect();
        spans.push((
            layout.dispatcher_head.start.as_u64(),
            layout.dispatcher_head.end().as_u64(),
        ));
        spans.push((
            layout.dispatcher_tail.start.as_u64(),
            layout.dispatcher_tail.end().as_u64(),
        ));
        spans.sort_unstable();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }

    #[test]
    fn dispatcher_tail_follows_head() {
        let layout = CodeLayout::build(&small("Geo-G"));
        assert_eq!(layout.dispatcher_head.end(), layout.dispatcher_tail.start);
    }

    #[test]
    fn terminal_is_last_bytes_of_block() {
        let layout = CodeLayout::build(&small("Rate-G"));
        for b in &layout.blocks {
            assert_eq!(
                b.terminal_offset + b.terminal_size as u32,
                b.len,
                "terminal must end the block"
            );
            for t in &b.templates {
                assert!(t.offset + t.size as u32 <= b.terminal_offset);
            }
        }
    }

    #[test]
    fn go_layout_denser_than_python() {
        // Compare static line span density: touched lines / spanned regions.
        let density = |name: &str| {
            let layout = CodeLayout::build(&small(name));
            let mut regions: Vec<u64> = layout
                .blocks
                .iter()
                .flat_map(block_lines)
                .map(|l| l / 16)
                .collect();
            let lines = layout.static_lines() as f64;
            regions.sort_unstable();
            regions.dedup();
            lines / (regions.len() as f64 * 16.0)
        };
        let go = density("Auth-G");
        let py = density("Auth-P");
        assert!(go > py, "go density {go} should exceed python {py}");
    }

    #[test]
    fn full_suite_builds() {
        for p in paper_suite() {
            let p = p.scaled(0.02);
            let layout = CodeLayout::build(&p);
            assert!(!layout.blocks.is_empty(), "{}", p.name);
            assert!(!layout.canonical.is_empty(), "{}", p.name);
        }
    }
}
