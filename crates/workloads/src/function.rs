//! A complete synthetic function: profile + built layout.

use crate::layout::CodeLayout;
use crate::profile::FunctionProfile;
use crate::trace::emit_invocation;
use sim_cpu::instr::Instr;

/// A synthetic serverless function ready to generate invocation traces.
///
/// # Examples
///
/// ```
/// use workloads::{FunctionProfile, SyntheticFunction};
///
/// let profile = FunctionProfile::named("Fib-G").expect("suite").scaled(0.05);
/// let f = SyntheticFunction::build(&profile);
/// assert_eq!(f.name(), "Fib-G");
/// let t0 = f.invocation_trace(0);
/// let t1 = f.invocation_trace(1);
/// assert!(!t0.is_empty() && !t1.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticFunction {
    profile: FunctionProfile,
    layout: CodeLayout,
}

impl SyntheticFunction {
    /// Builds the function's static layout from its profile.
    pub fn build(profile: &FunctionProfile) -> Self {
        SyntheticFunction {
            profile: profile.clone(),
            layout: CodeLayout::build(profile),
        }
    }

    /// The function's abbreviation (e.g. `"Auth-G"`).
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// The profile this function was built from.
    pub fn profile(&self) -> &FunctionProfile {
        &self.profile
    }

    /// The static code layout.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Generates the dynamic instruction trace of invocation `invocation`.
    /// Deterministic: the same index always produces the same trace.
    pub fn invocation_trace(&self, invocation: u64) -> Vec<Instr> {
        emit_invocation(&self.profile, &self.layout, invocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::paper_suite;

    #[test]
    fn build_exposes_profile_and_layout() {
        let p = FunctionProfile::named("Geo-G").unwrap().scaled(0.05);
        let f = SyntheticFunction::build(&p);
        assert_eq!(f.profile().name, "Geo-G");
        assert!(!f.layout().blocks.is_empty());
    }

    #[test]
    fn whole_suite_generates_traces() {
        for p in paper_suite() {
            let f = SyntheticFunction::build(&p.scaled(0.02));
            let t = f.invocation_trace(0);
            assert!(t.len() > 1000, "{}: only {} instrs", f.name(), t.len());
        }
    }
}
