//! Synthetic serverless-function suite calibrated to the lukewarm-functions
//! characterization (§2 of the paper).
//!
//! The paper evaluates 20 containerized functions (Table 2) spanning three
//! language runtimes. This crate substitutes each with a **synthetic
//! function**: a deterministic, seeded static code layout plus a canonical
//! control-flow walk whose per-invocation traces reproduce the stream-level
//! properties the paper measures — the properties that determine how an
//! instruction prefetcher behaves:
//!
//! * per-invocation instruction footprints of 300–800KB (Figure 6a);
//! * ≥0.9 mean Jaccard commonality of footprints across invocations
//!   (Figure 6b), from a stable core walk plus per-invocation optional
//!   paths;
//! * per-language code-region density — compiled Go code is spatially
//!   dense, interpreter/JIT code (Python, NodeJS) is scattered — which is
//!   what makes Jukebox's spatial metadata compact for Go and
//!   storage-hungry for Python/NodeJS (Figures 8 and 11);
//! * stable temporal order across invocations (record-and-replay works)
//!   with stochastic divergences (stream-following prefetchers like PIF
//!   must re-index);
//! * realistic instruction mix: loads/stores over a hot/medium/cold data
//!   space, biased conditional branches, call/return pairs through a
//!   dispatcher (the gRPC event loop).
//!
//! # Examples
//!
//! ```
//! use workloads::{FunctionProfile, SyntheticFunction};
//!
//! let profile = FunctionProfile::named("Auth-G").expect("in the suite").scaled(0.05);
//! let function = SyntheticFunction::build(&profile);
//! let trace = function.invocation_trace(0);
//! assert!(!trace.is_empty());
//! // Deterministic: the same invocation index yields the same trace.
//! assert_eq!(trace.len(), function.invocation_trace(0).len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data_space;
pub mod footprint;
pub mod function;
pub mod language;
pub mod layout;
pub mod profile;
pub mod stressor;
pub mod trace;
pub mod trace_io;
pub mod workflow;

pub use function::SyntheticFunction;
pub use language::Language;
pub use profile::{paper_suite, paper_traffic_weights, FunctionProfile, InstructionMix};
