//! A cache/core stressor trace, standing in for `stress-ng` (§2.3).
//!
//! The characterization runs a stressor on the function's core between
//! invocations to emulate a high degree of interleaving. The synthetic
//! stressor walks a large code range while loading from a large data
//! range, evicting the function's lines from every level it can reach.

use luke_common::addr::VirtAddr;
use luke_common::rng::DetRng;
use sim_cpu::instr::{BranchKind, Instr};

/// Base of the stressor's code range — far from any function arena.
const STRESSOR_CODE_BASE: u64 = 0x0000_2000_0000;
/// Base of the stressor's data range.
const STRESSOR_DATA_BASE: u64 = 0x0000_3000_0000;

/// Generates a stressor trace touching approximately `code_lines` distinct
/// instruction lines and `data_lines` distinct data lines.
///
/// The stream alternates short straight-line runs with jumps to distant
/// lines, so it pollutes the I-side of every cache level, and issues
/// spread-out loads to pollute the D-side.
pub fn stressor_trace(code_lines: u64, data_lines: u64, seed: u64) -> Vec<Instr> {
    let code_lines = code_lines.max(1);
    let data_lines = data_lines.max(1);
    let mut rng = DetRng::new(seed).split(0x57E5);
    let mut out = Vec::new();
    let mut line = 0u64;
    let mut touched = 0u64;
    while touched < code_lines {
        // A short run of instructions within this line.
        let base = STRESSOR_CODE_BASE + line * 64;
        let mut offset = 0u64;
        for _ in 0..6 {
            let pc = VirtAddr::new(base + offset);
            if rng.chance(0.3) {
                let data = STRESSOR_DATA_BASE + rng.below(data_lines) * 64;
                out.push(Instr::load(pc, 4, VirtAddr::new(data)));
            } else {
                out.push(Instr::alu(pc, 4));
            }
            offset += 4;
        }
        touched += 1;
        // Jump to the next (sometimes distant) line.
        let stride = if rng.chance(0.8) { 1 } else { rng.range(2, 32) };
        line += stride;
        let target = VirtAddr::new(STRESSOR_CODE_BASE + line * 64);
        out.push(Instr::branch(
            VirtAddr::new(base + offset),
            4,
            BranchKind::Unconditional,
            true,
            target,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::instruction_lines;

    #[test]
    fn stressor_touches_many_lines() {
        let t = stressor_trace(1000, 1000, 1);
        let lines = instruction_lines(&t);
        assert!(lines.len() > 500, "only {} lines", lines.len());
    }

    #[test]
    fn stressor_is_deterministic() {
        let a = stressor_trace(100, 100, 7);
        let b = stressor_trace(100, 100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn stressor_stays_in_its_ranges() {
        for i in stressor_trace(100, 100, 3) {
            assert!(i.pc.as_u64() >= STRESSOR_CODE_BASE);
            assert!(i.pc.as_u64() < STRESSOR_DATA_BASE);
        }
    }

    #[test]
    fn degenerate_sizes_clamped() {
        let t = stressor_trace(0, 0, 1);
        assert!(!t.is_empty());
    }
}
