//! Per-invocation trace emission.
//!
//! Walks the canonical visit sequence of a [`CodeLayout`], materializing
//! dynamic [`Instr`]s: dispatcher head → call → procedure blocks → return →
//! dispatcher tail → loop. Per-invocation randomness (seeded by the
//! invocation index) decides optional-group inclusion, internal branch
//! outcomes and operand addresses — everything else is stable across
//! invocations, which is precisely the structure record-and-replay
//! prefetching exploits.

use crate::data_space::DataSpace;
use crate::layout::{Block, CodeLayout, TemplateOp, Visit};
use crate::profile::FunctionProfile;
use luke_common::rng::DetRng;
use sim_cpu::instr::{BranchKind, Instr};

/// Visits in the sweep are locally shuffled within windows of this many
/// entries per invocation: the request-dependent order in which a handler
/// touches its procedures. Content (and therefore the footprint) is
/// stable; fine-grained temporal order is not — which is exactly why
/// order-sensitive stream prefetchers like PIF keep diverging while
/// content-based record-and-replay (Jukebox) does not (§5.5).
pub const SWEEP_SHUFFLE_WINDOW: usize = 8;

/// Emits the dynamic instruction trace of one invocation.
///
/// Deterministic in `(profile.seed, invocation)`.
pub fn emit_invocation(
    profile: &FunctionProfile,
    layout: &CodeLayout,
    invocation: u64,
) -> Vec<Instr> {
    let inv_rng = DetRng::new(profile.seed).split(0xE317).split(invocation);
    let included = optional_inclusion(layout, &inv_rng);
    let mut emitter = Emitter {
        rng: inv_rng.split(0xF00D),
        data: DataSpace::new(profile.data_footprint),
        out: Vec::with_capacity(layout.walk_instr_estimate() as usize),
    };

    // Filter optional groups, then shuffle the sweep portion window-wise.
    let sweep_len = layout.sweep_len.min(layout.canonical.len());
    let mut sweep: Vec<&Visit> = layout.canonical[..sweep_len]
        .iter()
        .filter(|v| {
            v.optional_group
                .map(|g| included[g as usize])
                .unwrap_or(true)
        })
        .collect();
    let mut shuffle_rng = inv_rng.split(0x5FF1E);
    for window in sweep.chunks_mut(SWEEP_SHUFFLE_WINDOW) {
        // Fisher–Yates within the window.
        for i in (1..window.len()).rev() {
            let j = shuffle_rng.below(i as u64 + 1) as usize;
            window.swap(i, j);
        }
    }
    // Sweep visits also enter their procedure at a request-dependent
    // block (a rotated visit order): same content, different fine-grained
    // temporal order. Hot-loop visits are stable.
    let mut rotate_rng = inv_rng.split(0x2074);
    for visit in sweep {
        let proc_len = layout.procs[visit.proc].blocks.len();
        let rotation = if rotate_rng.chance(0.5) {
            rotate_rng.below(proc_len as u64) as usize
        } else {
            0
        };
        emitter.emit_visit(layout, visit, rotation);
    }
    for visit in &layout.canonical[sweep_len..] {
        emitter.emit_visit(layout, visit, 0);
    }
    emitter.out
}

/// Per-invocation coin flips for each optional group. Group order is
/// stable, so inclusion of group `g` depends only on `(seed, invocation,
/// g)`.
fn optional_inclusion(layout: &CodeLayout, inv_rng: &DetRng) -> Vec<bool> {
    (0..layout.optional_groups)
        .map(|g| inv_rng.split(0x0917 + g as u64).chance(0.5))
        .collect()
}

struct Emitter {
    rng: DetRng,
    data: DataSpace,
    out: Vec<Instr>,
}

/// How a block's terminal transfers control.
#[derive(Clone, Copy, Debug)]
enum Terminal {
    /// Fall through or jump to the next block.
    Jump(luke_common::addr::VirtAddr),
    /// Call into a procedure (pushes the dispatcher-tail continuation).
    Call(luke_common::addr::VirtAddr),
    /// Return to the dispatcher tail.
    Return(luke_common::addr::VirtAddr),
}

impl Emitter {
    /// Emits one procedure visit. `rotation` rotates the block visit
    /// order (entering at block `rotation` and wrapping), modelling
    /// request-dependent entry points; content is unchanged.
    fn emit_visit(&mut self, layout: &CodeLayout, visit: &Visit, rotation: usize) {
        let proc = &layout.procs[visit.proc];
        let order: Vec<usize> = (0..proc.blocks.len())
            .map(|i| proc.blocks[(i + rotation) % proc.blocks.len()])
            .collect();
        let first_block = layout.blocks[order[0]].start;
        // Dispatcher head ends in the call.
        self.emit_block(&layout.dispatcher_head, Terminal::Call(first_block));
        // Procedure body.
        for (i, &block_idx) in order.iter().enumerate() {
            let block = &layout.blocks[block_idx];
            let terminal = if i + 1 < order.len() {
                Terminal::Jump(layout.blocks[order[i + 1]].start)
            } else {
                Terminal::Return(layout.dispatcher_tail.start)
            };
            self.emit_block(block, terminal);
        }
        // Dispatcher tail loops back to the head.
        self.emit_block(
            &layout.dispatcher_tail,
            Terminal::Jump(layout.dispatcher_head.start),
        );
    }

    fn emit_block(&mut self, block: &Block, terminal: Terminal) {
        let terminal_pc = block.terminal_pc();
        for t in &block.templates {
            let pc = block.start.offset(t.offset as u64);
            match t.op {
                TemplateOp::Alu => self.out.push(Instr::alu(pc, t.size)),
                TemplateOp::Load(class) => {
                    let addr = self.data.address(class, &mut self.rng);
                    self.out.push(Instr::load(pc, t.size, addr));
                }
                TemplateOp::Store(class) => {
                    let addr = self.data.address(class, &mut self.rng);
                    self.out.push(Instr::store(pc, t.size, addr));
                }
                TemplateOp::CondBranch { taken_probability } => {
                    let taken = self.rng.chance(taken_probability);
                    self.out.push(Instr::branch(
                        pc,
                        t.size,
                        BranchKind::Conditional,
                        taken,
                        terminal_pc,
                    ));
                    if taken {
                        // Skip the rest of the straight-line body.
                        break;
                    }
                }
            }
        }
        // Terminal control transfer.
        match terminal {
            Terminal::Jump(target) => {
                if target == block.end() {
                    // Adjacent block: plain fall-through.
                    self.out.push(Instr::alu(terminal_pc, block.terminal_size));
                } else {
                    self.out.push(Instr::branch(
                        terminal_pc,
                        block.terminal_size,
                        BranchKind::Unconditional,
                        true,
                        target,
                    ));
                }
            }
            Terminal::Call(target) => self.out.push(Instr::branch(
                terminal_pc,
                block.terminal_size,
                BranchKind::Call,
                true,
                target,
            )),
            Terminal::Return(target) => self.out.push(Instr::branch(
                terminal_pc,
                block.terminal_size,
                BranchKind::Return,
                true,
                target,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::CodeLayout;
    use crate::profile::FunctionProfile;
    use sim_cpu::instr::InstrKind;

    fn setup(name: &str) -> (FunctionProfile, CodeLayout) {
        let p = FunctionProfile::named(name).expect("suite").scaled(0.05);
        let layout = CodeLayout::build(&p);
        (p, layout)
    }

    #[test]
    fn emission_is_deterministic() {
        let (p, layout) = setup("Auth-G");
        let a = emit_invocation(&p, &layout, 3);
        let b = emit_invocation(&p, &layout, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[100], b[100]);
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn different_invocations_differ() {
        let (p, layout) = setup("Auth-G");
        let a = emit_invocation(&p, &layout, 0);
        let b = emit_invocation(&p, &layout, 1);
        assert_ne!(a.len(), b.len(), "optional groups should vary");
    }

    #[test]
    fn instruction_count_near_profile_target() {
        let (p, layout) = setup("Pay-N");
        let trace = emit_invocation(&p, &layout, 0);
        let ratio = trace.len() as f64 / p.instructions as f64;
        assert!(
            (0.5..2.5).contains(&ratio),
            "emitted {} vs target {}",
            trace.len(),
            p.instructions
        );
    }

    #[test]
    fn calls_and_returns_are_paired() {
        let (p, layout) = setup("Fib-G");
        let trace = emit_invocation(&p, &layout, 0);
        let calls = trace
            .iter()
            .filter(|i| {
                matches!(
                    i.kind,
                    InstrKind::Branch {
                        kind: BranchKind::Call,
                        ..
                    }
                )
            })
            .count();
        let returns = trace
            .iter()
            .filter(|i| {
                matches!(
                    i.kind,
                    InstrKind::Branch {
                        kind: BranchKind::Return,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(calls, returns);
        assert!(calls > 0);
    }

    #[test]
    fn returns_target_dispatcher_tail() {
        let (p, layout) = setup("Fib-G");
        let trace = emit_invocation(&p, &layout, 0);
        for i in &trace {
            if let InstrKind::Branch {
                kind: BranchKind::Return,
                target,
                ..
            } = i.kind
            {
                assert_eq!(target, layout.dispatcher_tail.start);
            }
        }
    }

    #[test]
    fn trace_has_realistic_mix() {
        let (p, layout) = setup("Auth-N");
        let trace = emit_invocation(&p, &layout, 0);
        let n = trace.len() as f64;
        let loads = trace
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Load(_)))
            .count() as f64;
        let branches = trace
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Branch { .. }))
            .count() as f64;
        assert!(
            loads / n > 0.08 && loads / n < 0.35,
            "load frac {}",
            loads / n
        );
        assert!(
            branches / n > 0.05 && branches / n < 0.40,
            "branch frac {}",
            branches / n
        );
    }

    #[test]
    fn taken_cond_branch_skips_to_terminal() {
        let (p, layout) = setup("Fib-P");
        let trace = emit_invocation(&p, &layout, 0);
        // After any taken conditional, the next instruction must be at the
        // branch's target (the block terminal).
        let mut checked = 0;
        for pair in trace.windows(2) {
            if let InstrKind::Branch {
                kind: BranchKind::Conditional,
                taken: true,
                target,
            } = pair[0].kind
            {
                assert_eq!(pair[1].pc, target);
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one taken internal branch");
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every non-taken-branch instruction is followed by its
        // fall-through; every taken branch by its target.
        let (p, layout) = setup("User-G");
        let trace = emit_invocation(&p, &layout, 2);
        for pair in trace.windows(2) {
            let (cur, next) = (&pair[0], &pair[1]);
            match cur.kind {
                InstrKind::Branch {
                    taken: true,
                    target,
                    ..
                } => {
                    assert_eq!(next.pc, target, "taken branch at {}", cur.pc);
                }
                _ => {
                    assert_eq!(next.pc, cur.fallthrough(), "fall-through at {}", cur.pc);
                }
            }
        }
    }
}
