//! The data address space of a synthetic function.
//!
//! Loads and stores are classified into three locality classes, mirroring
//! what short request handlers do: **hot** accesses hit a small stack/local
//! area and stay L1-resident; **medium** accesses walk a ring of recently
//! allocated objects (session state, parsed request) that lives in the L2;
//! **cold** accesses touch the function's heap at random (lookups into
//! cached tables, runtime metadata), producing the data-side misses of
//! Figure 5.

use luke_common::addr::{VirtAddr, LINE_BYTES};
use luke_common::rng::DetRng;
use luke_common::size::ByteSize;

/// Locality class of a memory operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalityClass {
    /// Stack/locals: tiny, always cache-resident.
    Hot,
    /// Recently-used object ring: fits in the L2.
    Medium,
    /// Heap at large: the function's full data working set.
    Cold,
}

/// Base of the stack area (grows nowhere; a fixed scratch window).
const STACK_BASE: u64 = 0x7fff_f000_0000;
/// Base of the medium object ring.
const RING_BASE: u64 = 0x0000_6000_0000;
/// Base of the heap.
const HEAP_BASE: u64 = 0x0000_7000_0000;

/// Size of the hot stack window.
const STACK_BYTES: u64 = 4 * 1024;
/// Upper bound on the medium ring.
const RING_MAX_BYTES: u64 = 48 * 1024;
/// Lower bound on the medium ring.
const RING_MIN_BYTES: u64 = 4 * 1024;

/// The data address space (see module docs).
#[derive(Clone, Debug)]
pub struct DataSpace {
    heap_bytes: u64,
    ring_bytes: u64,
    ring_cursor: u64,
}

impl DataSpace {
    /// Creates a data space with the given heap (cold) working-set size.
    /// The medium ring scales with the heap (half its size, clamped to
    /// [4KB, 48KB]) so scaled-down test workloads stay proportionate.
    pub fn new(heap: ByteSize) -> Self {
        DataSpace {
            heap_bytes: heap.bytes().max(LINE_BYTES as u64),
            ring_bytes: (heap.bytes() / 2).clamp(RING_MIN_BYTES, RING_MAX_BYTES),
            ring_cursor: 0,
        }
    }

    /// Generates an operand address of the given class.
    pub fn address(&mut self, class: LocalityClass, rng: &mut DetRng) -> VirtAddr {
        match class {
            LocalityClass::Hot => VirtAddr::new(STACK_BASE + rng.below(STACK_BYTES)),
            LocalityClass::Medium => {
                // Sequential ring walk with small strides: high spatial
                // locality, bounded working set.
                self.ring_cursor = (self.ring_cursor + rng.below(96)) % self.ring_bytes;
                VirtAddr::new(RING_BASE + self.ring_cursor)
            }
            LocalityClass::Cold => VirtAddr::new(HEAP_BASE + rng.below(self.heap_bytes)),
        }
    }

    /// Samples a locality class with the handler-like mix
    /// (70% hot / 20% medium / 10% cold).
    pub fn sample_class(rng: &mut DetRng) -> LocalityClass {
        let u = rng.unit();
        if u < 0.70 {
            LocalityClass::Hot
        } else if u < 0.90 {
            LocalityClass::Medium
        } else {
            LocalityClass::Cold
        }
    }

    /// The heap working-set size in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.heap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_addresses_stay_in_stack_window() {
        let mut ds = DataSpace::new(ByteSize::kib(256));
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let a = ds.address(LocalityClass::Hot, &mut rng).as_u64();
            assert!((STACK_BASE..STACK_BASE + STACK_BYTES).contains(&a));
        }
    }

    #[test]
    fn medium_addresses_stay_in_ring() {
        let mut ds = DataSpace::new(ByteSize::kib(256));
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let a = ds.address(LocalityClass::Medium, &mut rng).as_u64();
            assert!((RING_BASE..RING_BASE + RING_MAX_BYTES).contains(&a));
        }
    }

    #[test]
    fn cold_addresses_cover_heap() {
        let heap = ByteSize::kib(128);
        let mut ds = DataSpace::new(heap);
        let mut rng = DetRng::new(3);
        let mut max = 0;
        for _ in 0..10_000 {
            let a = ds.address(LocalityClass::Cold, &mut rng).as_u64();
            assert!((HEAP_BASE..HEAP_BASE + heap.bytes()).contains(&a));
            max = max.max(a - HEAP_BASE);
        }
        assert!(
            max > heap.bytes() / 2,
            "cold accesses should spread over the heap"
        );
    }

    #[test]
    fn class_mix_matches_targets() {
        let mut rng = DetRng::new(4);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            match DataSpace::sample_class(&mut rng) {
                LocalityClass::Hot => counts[0] += 1,
                LocalityClass::Medium => counts[1] += 1,
                LocalityClass::Cold => counts[2] += 1,
            }
        }
        let f = |c: usize| c as f64 / 30_000.0;
        assert!((f(counts[0]) - 0.70).abs() < 0.02);
        assert!((f(counts[1]) - 0.20).abs() < 0.02);
        assert!((f(counts[2]) - 0.10).abs() < 0.02);
    }

    #[test]
    fn tiny_heap_clamped_to_a_line() {
        let ds = DataSpace::new(ByteSize::new(1));
        assert_eq!(ds.heap_bytes(), LINE_BYTES as u64);
    }

    #[test]
    fn ring_scales_with_heap() {
        let small = DataSpace::new(ByteSize::kib(8));
        let large = DataSpace::new(ByteSize::kib(512));
        assert_eq!(small.ring_bytes, RING_MIN_BYTES);
        assert_eq!(large.ring_bytes, RING_MAX_BYTES);
    }

    #[test]
    fn address_regions_do_not_overlap() {
        const { assert!(RING_BASE + RING_MAX_BYTES < HEAP_BASE) };
        const { assert!(HEAP_BASE + (1 << 32) < STACK_BASE) };
    }
}
