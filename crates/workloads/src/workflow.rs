//! Serverless workflows: functions composed into end-to-end applications.
//!
//! Two of the paper's workload sources are *distributed applications
//! implemented as serverless workflows* (§2.3): the Hotel Reservation
//! application from DeathStarBench \[18\] and Google's Online Boutique \[21\].
//! A user request fans through several functions in sequence, so the
//! end-to-end latency — the quantity under the tens-of-milliseconds SLOs
//! the introduction cites \[20\] — accumulates every stage's lukewarm
//! penalty.

use crate::profile::{paper_suite, FunctionProfile};

/// A linear chain of serverless functions handling one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Workflow {
    /// Application name.
    pub name: String,
    /// The stages, in invocation order.
    pub stages: Vec<FunctionProfile>,
}

impl Workflow {
    /// Builds a workflow from suite function names.
    ///
    /// # Panics
    ///
    /// Panics if a name is not in the paper suite or `names` is empty.
    pub fn from_names(name: &str, names: &[&str]) -> Workflow {
        assert!(!names.is_empty(), "workflow needs at least one stage");
        let suite = paper_suite();
        let stages = names
            .iter()
            .map(|n| {
                suite
                    .iter()
                    .find(|p| &p.name == n)
                    .unwrap_or_else(|| panic!("unknown workflow stage {n:?}"))
                    .clone()
            })
            .collect();
        Workflow {
            name: name.to_string(),
            stages,
        }
    }

    /// The Hotel Reservation search flow (DeathStarBench \[18\]): locate
    /// nearby hotels, price them, fetch profiles, recommend, authenticate
    /// the user.
    pub fn hotel_reservation() -> Workflow {
        Workflow::from_names(
            "hotel-reservation",
            &["Geo-G", "Rate-G", "Prof-G", "RecH-G", "User-G"],
        )
    }

    /// The Online Boutique checkout flow (Google microservices demo \[21\]):
    /// catalog lookup, currency conversion, payment, confirmation email,
    /// shipping quote.
    pub fn online_boutique() -> Workflow {
        Workflow::from_names(
            "online-boutique",
            &["ProdL-G", "Curr-N", "Pay-N", "Email-P", "Ship-G"],
        )
    }

    /// Both paper workflows.
    pub fn paper_workflows() -> Vec<Workflow> {
        vec![Self::hotel_reservation(), Self::online_boutique()]
    }

    /// Returns a copy with every stage scaled (see
    /// [`FunctionProfile::scaled`]).
    pub fn scaled(&self, factor: f64) -> Workflow {
        Workflow {
            name: self.name.clone(),
            stages: self.stages.iter().map(|p| p.scaled(factor)).collect(),
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the workflow has no stages (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::Language;

    #[test]
    fn hotel_reservation_is_all_go() {
        let w = Workflow::hotel_reservation();
        assert_eq!(w.len(), 5);
        assert!(w.stages.iter().all(|s| s.language == Language::Go));
        assert!(!w.is_empty());
    }

    #[test]
    fn online_boutique_mixes_languages() {
        let w = Workflow::online_boutique();
        let langs: std::collections::BTreeSet<char> =
            w.stages.iter().map(|s| s.language.suffix()).collect();
        assert!(langs.len() >= 3, "boutique spans runtimes: {langs:?}");
    }

    #[test]
    fn scaled_scales_every_stage() {
        let w = Workflow::hotel_reservation().scaled(0.05);
        for (s, orig) in w.stages.iter().zip(Workflow::hotel_reservation().stages) {
            assert!(s.code_footprint < orig.code_footprint);
        }
        assert_eq!(w.name, "hotel-reservation");
    }

    #[test]
    #[should_panic(expected = "unknown workflow stage")]
    fn unknown_stage_panics() {
        Workflow::from_names("x", &["Nope-Z"]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_workflow_panics() {
        Workflow::from_names("x", &[]);
    }
}
