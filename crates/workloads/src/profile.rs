//! Function profiles: the 20-function suite of Table 2.
//!
//! Each profile fixes the calibration targets a synthetic function is built
//! to: mean per-invocation instruction footprint (Figure 6a places these
//! between 300KB and just over 800KB), the fraction of the walk on
//! per-invocation optional paths (which sets Jaccard commonality,
//! Figure 6b), dynamic instruction count, and data working-set size.

use crate::language::Language;
use luke_common::size::ByteSize;

/// The instruction mix a function's basic blocks are generated with —
/// each suite member gets a flavour matching what it computes (Fibonacci
/// is branchy recursion, AES a straight-line compute kernel, catalog
/// lookups are load-heavy, ...). The mix shapes the Top-Down stacks'
/// per-function texture (Figure 2) without moving the footprint
/// calibration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstructionMix {
    /// Probability that a straight-line slot is a load.
    pub load: f64,
    /// Probability that a straight-line slot is a store.
    pub store: f64,
    /// Minimum straight-line slots between conditional-branch sites.
    pub branch_gap: u32,
    /// Probability of placing a conditional branch once past the gap.
    pub branch_chance: f64,
}

impl InstructionMix {
    /// A balanced request-handler mix.
    pub fn balanced() -> Self {
        InstructionMix {
            load: 0.22,
            store: 0.08,
            branch_gap: 8,
            branch_chance: 0.35,
        }
    }

    /// Control-flow-heavy code (recursion, interpreters of conditionals).
    pub fn branchy() -> Self {
        InstructionMix {
            load: 0.16,
            store: 0.05,
            branch_gap: 5,
            branch_chance: 0.5,
        }
    }

    /// Straight-line compute kernels (crypto rounds, checksums).
    pub fn compute() -> Self {
        InstructionMix {
            load: 0.28,
            store: 0.06,
            branch_gap: 14,
            branch_chance: 0.2,
        }
    }

    /// Lookup-dominated handlers (catalog, recommendation, profile reads).
    pub fn lookup() -> Self {
        InstructionMix {
            load: 0.32,
            store: 0.06,
            branch_gap: 8,
            branch_chance: 0.3,
        }
    }

    /// Serialization/formatting-heavy handlers (emails, receipts).
    pub fn builder() -> Self {
        InstructionMix {
            load: 0.24,
            store: 0.15,
            branch_gap: 9,
            branch_chance: 0.3,
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics if the load/store probabilities do not leave room for ALU
    /// work or the branch parameters are degenerate.
    pub fn validate(&self) {
        assert!(self.load >= 0.0 && self.store >= 0.0, "negative mix");
        assert!(self.load + self.store < 0.9, "mix leaves no ALU work");
        assert!(self.branch_gap >= 1, "branch gap must be at least 1");
        assert!((0.0..=1.0).contains(&self.branch_chance), "bad chance");
    }
}

impl Default for InstructionMix {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Calibration targets for one synthetic function.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionProfile {
    /// Paper-style abbreviation, e.g. `"Auth-G"`.
    pub name: String,
    /// Language runtime archetype.
    pub language: Language,
    /// Target mean instruction footprint per invocation.
    pub code_footprint: ByteSize,
    /// Fraction of the per-invocation footprint drawn from optional
    /// (per-invocation-varying) paths. ≈0.10 yields the paper's ≥0.9
    /// Jaccard commonality; the three outlier functions use more.
    pub optional_fraction: f64,
    /// Target dynamic instructions per invocation (before language
    /// overhead).
    pub instructions: u64,
    /// Data working set per invocation.
    pub data_footprint: ByteSize,
    /// The function's instruction-mix flavour.
    pub mix: InstructionMix,
    /// Seed for all of this function's deterministic randomness.
    pub seed: u64,
}

impl FunctionProfile {
    /// Builds a profile with suite defaults derived from name, language
    /// and footprint.
    fn suite_entry(
        name: &str,
        language: Language,
        footprint_kb: u64,
        optional_fraction: f64,
        mix: InstructionMix,
        seed: u64,
    ) -> FunctionProfile {
        mix.validate();
        let base_instructions = 600_000.0;
        FunctionProfile {
            name: name.to_string(),
            language,
            code_footprint: ByteSize::kib(footprint_kb),
            optional_fraction,
            instructions: (base_instructions * language.dynamic_overhead()) as u64,
            data_footprint: ByteSize::kib((footprint_kb * 2) / 5),
            mix,
            seed,
        }
    }

    /// Looks a function up in the paper suite by abbreviation.
    ///
    /// # Examples
    ///
    /// ```
    /// use workloads::FunctionProfile;
    ///
    /// assert!(FunctionProfile::named("Pay-N").is_some());
    /// assert!(FunctionProfile::named("Nope-X").is_none());
    /// ```
    pub fn named(name: &str) -> Option<FunctionProfile> {
        paper_suite().into_iter().find(|p| p.name == name)
    }

    /// Returns a copy scaled by `factor` in footprint, instruction count
    /// and data size — used to keep unit/integration tests fast while
    /// preserving per-language shape. Values are floored to keep the
    /// function non-degenerate.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> FunctionProfile {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale_bytes =
            |b: ByteSize| ByteSize::new(((b.bytes() as f64 * factor) as u64).max(16 * 1024));
        FunctionProfile {
            name: self.name.clone(),
            language: self.language,
            code_footprint: scale_bytes(self.code_footprint),
            optional_fraction: self.optional_fraction,
            instructions: ((self.instructions as f64 * factor) as u64).max(4_000),
            data_footprint: scale_bytes(self.data_footprint),
            mix: self.mix,
            seed: self.seed,
        }
    }
}

/// The 20 functions of Table 2, in the paper's figure order.
///
/// Footprints follow Figure 6a's shape: everything within ~300–800KB;
/// Pay-N the largest (it is the paper's example of a metadata-hungry
/// function, Figure 9), ProdL-G among the smallest. `RecO-P`, `Curr-N` and
/// `Email-P` get a larger optional fraction — Figure 6b shows three
/// functions with commonality below 0.9.
pub fn paper_suite() -> Vec<FunctionProfile> {
    use Language::{Go, NodeJs, Python};
    let f = FunctionProfile::suite_entry;
    let m = InstructionMix::balanced;
    vec![
        f("Fib-P", Python, 430, 0.10, InstructionMix::branchy(), 101),
        f("AES-P", Python, 500, 0.10, InstructionMix::compute(), 102),
        f("Auth-P", Python, 540, 0.10, m(), 103),
        f("Email-P", Python, 660, 0.16, InstructionMix::builder(), 104),
        f("RecO-P", Python, 560, 0.20, InstructionMix::lookup(), 105),
        f("Fib-N", NodeJs, 470, 0.10, InstructionMix::branchy(), 106),
        f("AES-N", NodeJs, 560, 0.10, InstructionMix::compute(), 107),
        f("Auth-N", NodeJs, 620, 0.10, m(), 108),
        f("Curr-N", NodeJs, 520, 0.18, InstructionMix::compute(), 109),
        f("Pay-N", NodeJs, 800, 0.10, InstructionMix::builder(), 110),
        f("Fib-G", Go, 320, 0.10, InstructionMix::branchy(), 111),
        f("AES-G", Go, 360, 0.10, InstructionMix::compute(), 112),
        f("Auth-G", Go, 490, 0.10, m(), 113),
        f("Geo-G", Go, 390, 0.10, InstructionMix::compute(), 114),
        f("ProdL-G", Go, 330, 0.10, InstructionMix::lookup(), 115),
        f("Prof-G", Go, 410, 0.10, InstructionMix::lookup(), 116),
        f("Rate-G", Go, 370, 0.10, m(), 117),
        f("RecH-G", Go, 430, 0.10, InstructionMix::lookup(), 118),
        f("User-G", Go, 350, 0.10, m(), 119),
        f("Ship-G", Go, 400, 0.10, InstructionMix::builder(), 120),
    ]
}

/// Relative invocation popularity of the [`paper_suite`] functions, in
/// suite order: a Zipf-like rank distribution (exponent 0.9), the shape
/// of the Azure trace's per-function invocation skew the paper cites in
/// §2.1 — a few chatty functions carry most of the traffic while the
/// tail is invoked rarely. Weights are unnormalized; divide by their sum
/// for probabilities.
pub fn paper_traffic_weights() -> Vec<f64> {
    (0..paper_suite().len())
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(0.9))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_weights_are_positive_skewed_and_suite_aligned() {
        let w = paper_traffic_weights();
        assert_eq!(w.len(), paper_suite().len());
        assert!(w.iter().all(|&x| x > 0.0));
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "weights must decay with rank");
        }
        // Zipf skew: the top 4 functions carry over a third of traffic.
        let total: f64 = w.iter().sum();
        let head: f64 = w[..4].iter().sum();
        assert!(head / total > 0.35, "head share {:.2}", head / total);
    }

    #[test]
    fn suite_has_twenty_functions() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 20);
        // 5 Python, 5 NodeJS, 10 Go, as in Table 2.
        let count = |l: Language| suite.iter().filter(|p| p.language == l).count();
        assert_eq!(count(Language::Python), 5);
        assert_eq!(count(Language::NodeJs), 5);
        assert_eq!(count(Language::Go), 10);
    }

    #[test]
    fn names_are_unique_and_match_language_suffix() {
        let suite = paper_suite();
        let mut names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
        for p in &suite {
            let suffix = p.name.chars().last().expect("non-empty name");
            assert_eq!(
                Language::from_suffix(suffix),
                Some(p.language),
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn footprints_in_paper_band() {
        for p in paper_suite() {
            let kb = p.code_footprint.as_kib();
            assert!((300.0..=820.0).contains(&kb), "{}: {kb}KB", p.name);
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let suite = paper_suite();
        let mut seeds: Vec<u64> = suite.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 20);
    }

    #[test]
    fn named_lookup() {
        let p = FunctionProfile::named("ProdL-G").expect("exists");
        assert_eq!(p.language, Language::Go);
        assert!(FunctionProfile::named("ProdL-X").is_none());
    }

    #[test]
    fn python_runs_more_instructions_than_go() {
        let py = FunctionProfile::named("Fib-P").unwrap();
        let go = FunctionProfile::named("Fib-G").unwrap();
        assert!(py.instructions > go.instructions);
    }

    #[test]
    fn scaled_shrinks_with_floor() {
        let p = FunctionProfile::named("Pay-N").unwrap();
        let s = p.scaled(0.05);
        assert!(s.code_footprint < p.code_footprint);
        assert!(s.code_footprint.bytes() >= 16 * 1024);
        assert!(s.instructions >= 4_000);
        assert_eq!(s.language, p.language);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        FunctionProfile::named("Fib-G").unwrap().scaled(0.0);
    }
}
