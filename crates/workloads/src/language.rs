//! Language-runtime archetypes.
//!
//! The paper finds that "the language in which the function is written is
//! the single biggest determinant of a given function's runtime and
//! Jukebox's efficacy" (§5.1, footnote 4). The archetypes below encode the
//! two mechanisms behind that finding:
//!
//! * **code-region density** — compiled Go binaries execute spatially
//!   compact code; CPython's interpreter loop and V8's JIT-compiled
//!   fragments scatter the hot lines across many regions. Sparse regions
//!   mean more CRRB entries per footprint byte, so Python/NodeJS functions
//!   need more Jukebox metadata (Figure 8) and overflow the 16KB budget
//!   (Figure 11's lower coverage);
//! * **dynamic overhead** — interpreted/JIT runtimes execute more
//!   instructions per request for the same business logic.

use std::fmt;

/// The language runtime a synthetic function models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Language {
    /// CPython interpreter.
    Python,
    /// NodeJS / V8 JIT.
    NodeJs,
    /// Compiled Go.
    Go,
}

impl Language {
    /// All three runtimes, in the paper's presentation order.
    pub const ALL: [Language; 3] = [Language::Python, Language::NodeJs, Language::Go];

    /// Mean cache lines touched per 1KB code region (of 16). Calibrated
    /// from the paper's own measurements: metadata-per-footprint ratios in
    /// Figure 8 imply ≈2.2–2.8 lines/region for interpreter/JIT code and
    /// ≈3.5–4.5 for compiled Go. Drives Jukebox metadata size.
    pub fn lines_per_region(self) -> f64 {
        match self {
            Language::Python => 2.2,
            Language::NodeJs => 2.5,
            Language::Go => 4.0,
        }
    }

    /// Fraction of each 1KB code region's lines actually touched by hot
    /// code (`lines_per_region / 16`). Drives Jukebox metadata size
    /// (Figure 8).
    pub fn code_density(self) -> f64 {
        self.lines_per_region() / 16.0
    }

    /// Whether the runtime's code placement is scattered (interpreter
    /// handler dispatch, JIT fragment placement). Scattered runtimes get
    /// more placement arenas, spreading their footprint over more pages.
    pub fn scattered_layout(self) -> bool {
        !matches!(self, Language::Go)
    }

    /// Number of basic blocks per procedure `(min, max)`. Interpreter and
    /// JIT runtimes execute short fragmented procedures (bytecode
    /// handlers, JIT stubs); compiled Go code has long inlined functions.
    /// Together with the occupancy holes this controls how many code
    /// regions — and therefore CRRB entries — a footprint spans.
    pub fn proc_blocks_range(self) -> (u64, u64) {
        match self {
            Language::Python => (3, 7),
            Language::NodeJs => (4, 8),
            Language::Go => (8, 15),
        }
    }

    /// Basic-block length range in bytes `(min, max)`. Compiled code has
    /// longer straight-line runs.
    pub fn block_len_range(self) -> (u64, u64) {
        match self {
            Language::Python => (16, 56),
            Language::NodeJs => (16, 64),
            Language::Go => (32, 120),
        }
    }

    /// Relative dynamic-instruction overhead versus compiled code.
    pub fn dynamic_overhead(self) -> f64 {
        match self {
            Language::Python => 1.6,
            Language::NodeJs => 1.35,
            Language::Go => 1.0,
        }
    }

    /// Probability that an internal conditional branch site follows its
    /// bias (higher = more predictable code).
    pub fn branch_bias(self) -> f64 {
        match self {
            Language::Python => 0.88,
            Language::NodeJs => 0.90,
            Language::Go => 0.92,
        }
    }

    /// Suffix used in the paper's function abbreviations.
    pub fn suffix(self) -> char {
        match self {
            Language::Python => 'P',
            Language::NodeJs => 'N',
            Language::Go => 'G',
        }
    }

    /// Parses a paper-style suffix.
    pub fn from_suffix(suffix: char) -> Option<Language> {
        match suffix {
            'P' => Some(Language::Python),
            'N' => Some(Language::NodeJs),
            'G' => Some(Language::Go),
            _ => None,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Language::Python => "Python",
            Language::NodeJs => "NodeJS",
            Language::Go => "Go",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn go_is_densest() {
        assert!(Language::Go.code_density() > Language::NodeJs.code_density());
        assert!(Language::NodeJs.code_density() >= Language::Python.code_density());
    }

    #[test]
    fn interpreters_are_scattered() {
        assert!(Language::Python.scattered_layout());
        assert!(Language::NodeJs.scattered_layout());
        assert!(!Language::Go.scattered_layout());
    }

    #[test]
    fn overhead_ordering() {
        assert!(Language::Python.dynamic_overhead() > Language::NodeJs.dynamic_overhead());
        assert_eq!(Language::Go.dynamic_overhead(), 1.0);
    }

    #[test]
    fn suffix_round_trips() {
        for lang in Language::ALL {
            assert_eq!(Language::from_suffix(lang.suffix()), Some(lang));
        }
        assert_eq!(Language::from_suffix('X'), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Language::Python.to_string(), "Python");
        assert_eq!(Language::NodeJs.to_string(), "NodeJS");
        assert_eq!(Language::Go.to_string(), "Go");
    }

    #[test]
    fn block_ranges_are_valid() {
        for lang in Language::ALL {
            let (lo, hi) = lang.block_len_range();
            assert!(lo >= 8 && lo < hi);
        }
    }
}
