//! Instruction-footprint measurement (the §2.5 methodology).
//!
//! The paper traces L1-I accesses at cache-block granularity over 25
//! invocations, deduplicates addresses per invocation, and reports the
//! footprint sizes (Figure 6a) and pairwise Jaccard commonality
//! (Figure 6b). These helpers implement the same measurement over
//! synthetic traces.

use luke_common::addr::LINE_BYTES;
use luke_common::stats::{mean_pairwise_jaccard, min_pairwise_jaccard};
use sim_cpu::instr::Instr;
use std::collections::BTreeSet;

/// The set of unique instruction cache-line indices touched by a trace
/// (including lines touched by straddling instructions).
pub fn instruction_lines(trace: &[Instr]) -> BTreeSet<u64> {
    let mut lines = BTreeSet::new();
    for i in trace {
        let first = i.pc.line().index();
        let last = i.pc.offset(i.size.saturating_sub(1) as u64).line().index();
        lines.insert(first);
        if last != first {
            lines.insert(last);
        }
    }
    lines
}

/// Footprint size of a trace in bytes (unique lines × 64).
pub fn footprint_bytes(trace: &[Instr]) -> u64 {
    instruction_lines(trace).len() as u64 * LINE_BYTES as u64
}

/// Footprint statistics over a set of invocations of one function.
#[derive(Clone, Debug, PartialEq)]
pub struct FootprintStudy {
    /// Per-invocation footprint sizes in bytes.
    pub sizes: Vec<u64>,
    /// Mean pairwise Jaccard index across all invocation pairs.
    pub jaccard_mean: f64,
    /// Minimum pairwise Jaccard index (the outliers of Figure 6b).
    pub jaccard_min: f64,
}

impl FootprintStudy {
    /// Mean footprint in bytes.
    pub fn mean_bytes(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.sizes.iter().sum::<u64>() as f64 / self.sizes.len() as f64
        }
    }

    /// Smallest and largest per-invocation footprints (Figure 6a's error
    /// bars).
    pub fn range_bytes(&self) -> (u64, u64) {
        (
            self.sizes.iter().copied().min().unwrap_or(0),
            self.sizes.iter().copied().max().unwrap_or(0),
        )
    }
}

/// Runs the §2.5 study: `invocations` traces of `function`, footprint per
/// invocation, pairwise commonality.
pub fn study(function: &crate::SyntheticFunction, invocations: u64) -> FootprintStudy {
    let sets: Vec<BTreeSet<u64>> = (0..invocations)
        .map(|i| instruction_lines(&function.invocation_trace(i)))
        .collect();
    FootprintStudy {
        sizes: sets
            .iter()
            .map(|s| s.len() as u64 * LINE_BYTES as u64)
            .collect(),
        jaccard_mean: mean_pairwise_jaccard(&sets),
        jaccard_min: min_pairwise_jaccard(&sets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::FunctionProfile;
    use crate::SyntheticFunction;
    use luke_common::addr::VirtAddr;

    #[test]
    fn lines_deduplicate() {
        let trace = vec![
            Instr::alu(VirtAddr::new(0x1000), 4),
            Instr::alu(VirtAddr::new(0x1004), 4),
            Instr::alu(VirtAddr::new(0x1040), 4),
        ];
        assert_eq!(instruction_lines(&trace).len(), 2);
        assert_eq!(footprint_bytes(&trace), 128);
    }

    #[test]
    fn straddling_instruction_counts_both_lines() {
        let trace = vec![Instr::alu(VirtAddr::new(0x103e), 4)];
        assert_eq!(instruction_lines(&trace).len(), 2);
    }

    #[test]
    fn empty_trace_empty_footprint() {
        assert_eq!(footprint_bytes(&[]), 0);
    }

    #[test]
    fn study_reports_high_commonality() {
        let p = FunctionProfile::named("Auth-G").unwrap().scaled(0.05);
        let f = SyntheticFunction::build(&p);
        let s = study(&f, 6);
        assert_eq!(s.sizes.len(), 6);
        assert!(
            s.jaccard_mean > 0.8,
            "commonality should be high, got {}",
            s.jaccard_mean
        );
        assert!(s.jaccard_min <= s.jaccard_mean);
        let (lo, hi) = s.range_bytes();
        assert!(lo > 0 && lo <= hi);
        assert!(s.mean_bytes() >= lo as f64 && s.mean_bytes() <= hi as f64);
    }

    #[test]
    fn footprint_tracks_profile_scale() {
        let small =
            SyntheticFunction::build(&FunctionProfile::named("Pay-N").unwrap().scaled(0.04));
        let large =
            SyntheticFunction::build(&FunctionProfile::named("Pay-N").unwrap().scaled(0.12));
        let fs = footprint_bytes(&small.invocation_trace(0));
        let fl = footprint_bytes(&large.invocation_trace(0));
        assert!(fl > fs, "larger profile must have larger footprint");
    }
}
