//! Binary import/export of instruction traces.
//!
//! The simulator consumes plain [`Instr`] streams, so any trace source can
//! drive it — synthetic functions, or real traces captured with a binary
//! instrumentation tool and converted to this format. The codec is a
//! simple, versioned little-endian layout (no external dependencies):
//!
//! ```text
//! magic "LWTR" | version u32 | count u64 | records...
//! record: pc u64 | size u8 | tag u8 | payload
//!   tag 0 Alu    — no payload
//!   tag 1 Load   — addr u64
//!   tag 2 Store  — addr u64
//!   tag 3 Branch — kind u8, taken u8, target u64
//! ```

use luke_common::addr::VirtAddr;
use sim_cpu::instr::{BranchKind, Instr, InstrKind};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"LWTR";
const VERSION: u32 = 1;

/// Serializes a trace to a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &[Instr]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for i in trace {
        w.write_all(&i.pc.as_u64().to_le_bytes())?;
        w.write_all(&[i.size])?;
        match i.kind {
            InstrKind::Alu => w.write_all(&[0u8])?,
            InstrKind::Load(addr) => {
                w.write_all(&[1u8])?;
                w.write_all(&addr.as_u64().to_le_bytes())?;
            }
            InstrKind::Store(addr) => {
                w.write_all(&[2u8])?;
                w.write_all(&addr.as_u64().to_le_bytes())?;
            }
            InstrKind::Branch {
                kind,
                taken,
                target,
            } => {
                w.write_all(&[3u8, branch_kind_tag(kind), taken as u8])?;
                w.write_all(&target.as_u64().to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserializes a trace from a reader.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic/version/tag, `UnexpectedEof` for a
/// truncated stream, and propagates reader errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<Instr>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(invalid(&format!("unsupported version {version}")));
    }
    let count = read_u64(&mut r)?;
    let mut trace = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let pc = VirtAddr::new(read_u64(&mut r)?);
        let size = read_u8(&mut r)?;
        let kind = match read_u8(&mut r)? {
            0 => InstrKind::Alu,
            1 => InstrKind::Load(VirtAddr::new(read_u64(&mut r)?)),
            2 => InstrKind::Store(VirtAddr::new(read_u64(&mut r)?)),
            3 => {
                let kind = branch_kind_from_tag(read_u8(&mut r)?)?;
                let taken = match read_u8(&mut r)? {
                    0 => false,
                    1 => true,
                    other => return Err(invalid(&format!("bad taken flag {other}"))),
                };
                let target = VirtAddr::new(read_u64(&mut r)?);
                InstrKind::Branch {
                    kind,
                    taken,
                    target,
                }
            }
            other => return Err(invalid(&format!("bad record tag {other}"))),
        };
        trace.push(Instr { pc, size, kind });
    }
    Ok(trace)
}

fn branch_kind_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn branch_kind_from_tag(tag: u8) -> io::Result<BranchKind> {
    Ok(match tag {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        other => return Err(invalid(&format!("bad branch kind {other}"))),
    })
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionProfile, SyntheticFunction};

    fn sample() -> Vec<Instr> {
        vec![
            Instr::alu(VirtAddr::new(0x1000), 4),
            Instr::load(VirtAddr::new(0x1004), 5, VirtAddr::new(0x7000_0000)),
            Instr::store(VirtAddr::new(0x1009), 3, VirtAddr::new(0x7000_0040)),
            Instr::branch(
                VirtAddr::new(0x100c),
                2,
                BranchKind::Call,
                true,
                VirtAddr::new(0x2000),
            ),
            Instr::branch(
                VirtAddr::new(0x2000),
                2,
                BranchKind::Conditional,
                false,
                VirtAddr::new(0x2040),
            ),
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn round_trips_a_synthetic_function_trace() {
        let p = FunctionProfile::named("Fib-G").unwrap().scaled(0.02);
        let f = SyntheticFunction::build(&p);
        let trace = f.invocation_trace(0);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap(), trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &[]).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap(), Vec::<Instr>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &sample()).unwrap();
        bytes.truncate(bytes.len() - 3);
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_bad_tag() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0x1000u64.to_le_bytes());
        bytes.push(4); // size
        bytes.push(9); // bad tag
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
