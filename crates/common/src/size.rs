//! Byte-size values with human-readable formatting.
//!
//! Cache capacities, metadata budgets and instruction footprints appear all
//! over the evaluation in `KB`/`MB` units; [`ByteSize`] keeps them typed and
//! prints them the way the paper's tables do ("32KB", "1MB", "9.6KB").

use std::fmt;
use std::ops::{Add, AddAssign};

/// A size in bytes.
///
/// # Examples
///
/// ```
/// use luke_common::size::ByteSize;
///
/// assert_eq!(ByteSize::kib(32).bytes(), 32 * 1024);
/// assert_eq!(format!("{}", ByteSize::kib(32)), "32KB");
/// assert_eq!(format!("{}", ByteSize::new(9830)), "9.6KB");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Creates a size from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from binary kilobytes (1 KB = 1024 B).
    pub const fn kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from binary megabytes (1 MB = 1024 KB).
    pub const fn mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// This size expressed in (possibly fractional) binary kilobytes.
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Number of 64-byte cache lines this size covers (rounded down).
    pub const fn lines(self) -> u64 {
        self.0 / crate::addr::LINE_BYTES as u64
    }

    /// Whether the size is a power of two (required for cache/region
    /// geometry parameters).
    pub const fn is_power_of_two(self) -> bool {
        self.0.is_power_of_two()
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

impl From<ByteSize> for u64 {
    fn from(s: ByteSize) -> u64 {
        s.0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        let (value, unit) = if self.0 >= GIB {
            (self.0 as f64 / GIB as f64, "GB")
        } else if self.0 >= MIB {
            (self.0 as f64 / MIB as f64, "MB")
        } else if self.0 >= KIB {
            (self.0 as f64 / KIB as f64, "KB")
        } else {
            return write!(f, "{}B", self.0);
        };
        if (value - value.round()).abs() < 0.05 {
            write!(f, "{}{}", value.round() as u64, unit)
        } else {
            write!(f, "{:.1}{}", value, unit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::kib(1), ByteSize::new(1024));
        assert_eq!(ByteSize::mib(1), ByteSize::kib(1024));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", ByteSize::new(512)), "512B");
        assert_eq!(format!("{}", ByteSize::kib(256)), "256KB");
        assert_eq!(format!("{}", ByteSize::mib(8)), "8MB");
        assert_eq!(format!("{}", ByteSize::mib(2048)), "2GB");
    }

    #[test]
    fn display_fractional() {
        assert_eq!(format!("{}", ByteSize::new(9830)), "9.6KB");
        // Values within rounding tolerance print as integers.
        assert_eq!(format!("{}", ByteSize::new(1025)), "1KB");
    }

    #[test]
    fn lines_counts_64_byte_units() {
        assert_eq!(ByteSize::kib(1).lines(), 16);
        assert_eq!(ByteSize::new(63).lines(), 0);
    }

    #[test]
    fn arithmetic() {
        let mut s = ByteSize::kib(16);
        s += ByteSize::kib(16);
        assert_eq!(s, ByteSize::kib(32));
        assert_eq!(ByteSize::kib(1) + ByteSize::new(1), ByteSize::new(1025));
    }

    #[test]
    fn power_of_two_checks() {
        assert!(ByteSize::kib(1).is_power_of_two());
        assert!(!ByteSize::new(1000).is_power_of_two());
    }
}
