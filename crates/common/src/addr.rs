//! Strongly-typed addresses and address arithmetic.
//!
//! The simulator manipulates three address spaces:
//!
//! * **virtual addresses** ([`VirtAddr`]) — what the core, the TLBs and the
//!   Jukebox recorder operate on (the paper records *virtual* addresses so
//!   metadata survives page migration, §3.2);
//! * **physical addresses** ([`PhysAddr`]) — what the caches below the L1 and
//!   DRAM operate on;
//! * **cache-line addresses** ([`LineAddr`]) — 64-byte-aligned virtual
//!   addresses, the granularity at which instruction footprints are measured
//!   (§2.5) and prefetches are issued.
//!
//! Newtypes keep the three from being mixed up at compile time
//! (C-NEWTYPE).

use std::fmt;

/// Bytes per cache line, matching the simulated hardware (Table 1).
pub const LINE_BYTES: usize = 64;

/// Bytes per virtual-memory page (x86-64 base pages).
pub const PAGE_BYTES: usize = 4096;

/// Cache lines per page.
pub const LINES_PER_PAGE: usize = PAGE_BYTES / LINE_BYTES;

/// Number of meaningful virtual-address bits (x86-64 canonical, §3.2).
pub const VA_BITS: u32 = 48;

/// A virtual address.
///
/// # Examples
///
/// ```
/// use luke_common::addr::VirtAddr;
///
/// let a = VirtAddr::new(0x1040);
/// assert_eq!(a.line_offset(), 0x00);
/// assert_eq!(a.page_base(), VirtAddr::new(0x1000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical address produced by address translation.
///
/// # Examples
///
/// ```
/// use luke_common::addr::PhysAddr;
///
/// let p = PhysAddr::new(0x8000_0040);
/// assert_eq!(p.line_base(), PhysAddr::new(0x8000_0040));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A 64-byte-aligned virtual cache-line address.
///
/// Stored as the line *index* (address divided by [`LINE_BYTES`]) so that
/// consecutive lines differ by one, which makes next-line arithmetic and
/// dense set indexing trivial.
///
/// # Examples
///
/// ```
/// use luke_common::addr::{LineAddr, VirtAddr};
///
/// let line = VirtAddr::new(0x1234).line();
/// assert_eq!(line.base(), VirtAddr::new(0x1200));
/// assert_eq!(line.next().base(), VirtAddr::new(0x1240));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the containing cache line.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES as u64)
    }

    /// Byte offset within the containing cache line.
    pub const fn line_offset(self) -> usize {
        (self.0 % LINE_BYTES as u64) as usize
    }

    /// Base address of the containing page.
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_BYTES as u64 - 1))
    }

    /// Virtual page number (address divided by the page size).
    pub const fn page_number(self) -> u64 {
        self.0 / PAGE_BYTES as u64
    }

    /// Base address of the containing code region of `region_bytes` bytes.
    ///
    /// `region_bytes` must be a power of two; this mirrors how the Jukebox
    /// CRRB derives a region pointer by dropping low-order bits (§3.2).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `region_bytes` is not a power of two.
    pub fn region_base(self, region_bytes: usize) -> VirtAddr {
        debug_assert!(region_bytes.is_power_of_two());
        VirtAddr(self.0 & !(region_bytes as u64 - 1))
    }

    /// Adds a byte offset.
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// 64-byte-aligned base of the containing cache line.
    pub const fn line_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(LINE_BYTES as u64 - 1))
    }

    /// Physical line number (address divided by the line size).
    pub const fn line_number(self) -> u64 {
        self.0 / LINE_BYTES as u64
    }

    /// Physical frame number (address divided by the page size).
    pub const fn frame_number(self) -> u64 {
        self.0 / PAGE_BYTES as u64
    }

    /// Adds a byte offset.
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl LineAddr {
    /// Creates a line address from a line *index* (address / 64).
    pub const fn from_index(index: u64) -> Self {
        LineAddr(index)
    }

    /// The line index (base address divided by [`LINE_BYTES`]).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The 64-byte-aligned base virtual address of this line.
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 * LINE_BYTES as u64)
    }

    /// The immediately following line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// Offset of this line within its code region of `region_bytes` bytes.
    ///
    /// Returns a value in `0..region_bytes / LINE_BYTES`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `region_bytes` is not a power of two.
    pub fn region_slot(self, region_bytes: usize) -> usize {
        debug_assert!(region_bytes.is_power_of_two());
        (self.0 % (region_bytes / LINE_BYTES) as u64) as usize
    }
}

impl From<VirtAddr> for u64 {
    fn from(a: VirtAddr) -> u64 {
        a.0
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> u64 {
        a.0
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.base().as_u64())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.base().as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_aligned_address_is_identity() {
        let a = VirtAddr::new(0x40);
        assert_eq!(a.line().base(), a);
    }

    #[test]
    fn line_offset_covers_full_line() {
        for off in 0..LINE_BYTES as u64 {
            assert_eq!(VirtAddr::new(0x1000 + off).line_offset(), off as usize);
            assert_eq!(
                VirtAddr::new(0x1000 + off).line(),
                VirtAddr::new(0x1000).line()
            );
        }
    }

    #[test]
    fn page_base_masks_low_bits() {
        assert_eq!(VirtAddr::new(0x12345).page_base(), VirtAddr::new(0x12000));
        assert_eq!(VirtAddr::new(0x12345).page_number(), 0x12);
    }

    #[test]
    fn region_base_matches_power_of_two_mask() {
        let a = VirtAddr::new(0x1_2345);
        assert_eq!(a.region_base(1024), VirtAddr::new(0x1_2000));
        assert_eq!(a.region_base(4096), VirtAddr::new(0x1_2000));
        assert_eq!(a.region_base(512), VirtAddr::new(0x1_2200));
    }

    #[test]
    fn region_slot_is_line_position_within_region() {
        // 1KB region = 16 lines; address 0x1240 is line 9 of region 0x1000.
        let line = VirtAddr::new(0x1240).line();
        assert_eq!(line.region_slot(1024), 9);
        // And the first line of the next region has slot 0.
        let line = VirtAddr::new(0x1400).line();
        assert_eq!(line.region_slot(1024), 0);
    }

    #[test]
    fn next_line_advances_by_line_bytes() {
        let line = VirtAddr::new(0x2000).line();
        assert_eq!(line.next().base(), VirtAddr::new(0x2040));
        assert_eq!(line.next().index(), line.index() + 1);
    }

    #[test]
    fn phys_line_and_frame_numbers() {
        let p = PhysAddr::new(2 * PAGE_BYTES as u64 + 3 * LINE_BYTES as u64);
        assert_eq!(p.frame_number(), 2);
        assert_eq!(p.line_number(), 2 * LINES_PER_PAGE as u64 + 3);
        assert_eq!(p.line_base(), p);
        assert_eq!(p.offset(1).line_base(), p);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VirtAddr::new(0xff)), "0xff");
        assert_eq!(format!("{}", PhysAddr::new(0x10)), "0x10");
        assert_eq!(format!("{}", VirtAddr::new(0x1234).line()), "0x1200");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", VirtAddr::default()).is_empty());
        assert!(!format!("{:?}", PhysAddr::default()).is_empty());
        assert!(!format!("{:?}", LineAddr::default()).is_empty());
    }
}
