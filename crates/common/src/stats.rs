//! Statistics used throughout the evaluation.
//!
//! The paper reports arithmetic means (MPKI, bandwidth), geometric means
//! (speedups, Figures 9/10/13), ranges (Figure 6a error bars) and the
//! Jaccard index of instruction footprints (Figure 6b). This module
//! implements all of them over plain slices plus a small [`Summary`]
//! accumulator.

use std::collections::BTreeSet;

/// Arithmetic mean of a slice. Returns 0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(luke_common::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of a slice of values. Returns 0 for an empty slice.
///
/// The paper reports speedups as geometric means ("GEOMEAN" in
/// Figures 9/10/13).
///
/// NaN-safe filter semantics: values that are not strictly positive
/// (zero, negative, NaN, -inf) carry no usable speedup information and
/// are skipped rather than aborting the whole sweep — a degenerate run
/// (e.g. a zero-cycle sample, which [`speedup_over`] reports as NaN)
/// degrades to a geomean over the remaining valid samples. If *no* value
/// is valid, the result is NaN, which every caller can detect; callers
/// wanting the count of dropped samples should pre-filter with
/// [`f64::is_finite`] + positivity themselves (the experiment runner
/// surfaces it as the `run.invalid_samples` counter).
///
/// # Examples
///
/// ```
/// let g = luke_common::stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// // Invalid samples are filtered, not fatal:
/// let g = luke_common::stats::geomean(&[1.0, f64::NAN, 4.0, 0.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(luke_common::stats::geomean(&[0.0, f64::NAN]).is_nan());
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let valid: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if valid.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = valid.iter().map(|v| v.ln()).sum();
    (log_sum / valid.len() as f64).exp()
}

/// Population standard deviation. Returns 0 for slices shorter than 2.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Percentile by nearest-rank (p in `[0, 100]`). Returns 0 for an empty
/// slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or not finite.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Jaccard index of two sets: `|A ∩ B| / |A ∪ B|`.
///
/// Defined as 1 when both sets are empty (identical footprints). This is the
/// commonality metric of Figure 6b, computed over sets of unique instruction
/// cache-line addresses.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeSet;
/// use luke_common::stats::jaccard;
///
/// let a: BTreeSet<u64> = [1, 2, 3].into_iter().collect();
/// let b: BTreeSet<u64> = [2, 3, 4].into_iter().collect();
/// assert_eq!(jaccard(&a, &b), 0.5);
/// ```
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

/// Mean pairwise Jaccard index across a collection of sets, over all
/// unordered pairs (the paper's 300 pair comparisons across 25 invocations,
/// §2.5). Returns 1.0 for fewer than two sets.
pub fn mean_pairwise_jaccard<T: Ord>(sets: &[BTreeSet<T>]) -> f64 {
    if sets.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            total += jaccard(&sets[i], &sets[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Minimum pairwise Jaccard index (the outliers visible in Figure 6b).
/// Returns 1.0 for fewer than two sets.
pub fn min_pairwise_jaccard<T: Ord>(sets: &[BTreeSet<T>]) -> f64 {
    let mut min = 1.0f64;
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            min = min.min(jaccard(&sets[i], &sets[j]));
        }
    }
    min
}

/// Running summary of a stream of observations.
///
/// # Examples
///
/// ```
/// use luke_common::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.add(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0 if fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0).sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        let g = geomean(&[1.187; 20]);
        assert!((g - 1.187).abs() < 1e-12);
    }

    #[test]
    fn geomean_filters_nonpositive_values() {
        // Invalid samples are skipped, so one dead run cannot abort a
        // whole sweep's aggregation.
        let g = geomean(&[2.0, 0.0, 8.0, -3.0, f64::NAN]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_all_invalid_is_nan() {
        assert!(geomean(&[0.0, -1.0, f64::NAN]).is_nan());
        // Empty stays 0 for backwards compatibility.
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn jaccard_disjoint_and_identical() {
        let a: BTreeSet<u32> = [1, 2].into_iter().collect();
        let b: BTreeSet<u32> = [3, 4].into_iter().collect();
        assert_eq!(jaccard(&a, &b), 0.0);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_both_empty_is_one() {
        let e: BTreeSet<u32> = BTreeSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
    }

    #[test]
    fn jaccard_one_empty_is_zero() {
        let e: BTreeSet<u32> = BTreeSet::new();
        let a: BTreeSet<u32> = [1].into_iter().collect();
        assert_eq!(jaccard(&e, &a), 0.0);
    }

    #[test]
    fn mean_pairwise_jaccard_over_three_sets() {
        let s1: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
        let s2: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
        let s3: BTreeSet<u32> = [4, 5, 6].into_iter().collect();
        // pairs: (s1,s2)=1, (s1,s3)=0, (s2,s3)=0 -> mean 1/3
        let m = mean_pairwise_jaccard(&[s1, s2, s3]);
        assert!((m - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_pairwise_jaccard_finds_outlier() {
        let s1: BTreeSet<u32> = [1, 2, 3, 4].into_iter().collect();
        let s2: BTreeSet<u32> = [1, 2, 3, 4].into_iter().collect();
        let s3: BTreeSet<u32> = [1, 2, 9, 10].into_iter().collect();
        let m = min_pairwise_jaccard(&[s1, s2, s3]);
        assert!((m - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn summary_accumulates() {
        let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert!((s.std_dev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_combined_stream() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        let c: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }
}
