//! Minimal fixed-width text tables for benchmark-harness output.
//!
//! Every figure/table reproduction prints its rows through [`TextTable`] so
//! the output of `cargo bench` lines up in readable columns (and can be
//! pasted into `EXPERIMENTS.md` verbatim).

use std::fmt;

/// A simple text table with a header row and left-aligned first column.
///
/// # Examples
///
/// ```
/// use luke_common::table::TextTable;
///
/// let mut t = TextTable::new(&["function", "speedup"]);
/// t.row(&["Auth-G".to_string(), "29.5%".to_string()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("Auth-G"));
/// assert!(rendered.contains("speedup"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = widths[0])?;
                } else {
                    write!(f, "  {:>width$}", cell, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage string with one decimal, e.g. `0.187`
/// becomes `"18.7%"`.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Formats a value with a fixed number of decimals.
pub fn fixed(value: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let mut t = TextTable::new(&["a", "bbb"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yy".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("x "));
    }

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(&["name", "v"]);
        t.row(&["longer-name".into(), "1".into()]);
        t.row(&["s".into(), "100".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // All lines equal width (right-aligned numeric column).
        let w = lines[2].len();
        assert_eq!(lines[3].len(), w);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_converts() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_display(&[1.5, 2.5]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_and_fixed_format() {
        assert_eq!(pct(0.187), "18.7%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }
}
