//! Deterministic, splittable random-number generation.
//!
//! Every stochastic choice in the workspace — workload synthesis, invocation
//! inter-arrival times, per-invocation control-flow variation — flows from a
//! [`DetRng`], so a single top-level seed reproduces an entire experiment
//! bit-for-bit. `DetRng` wraps a fast non-cryptographic generator
//! (xoshiro256++, seeded via SplitMix64 — self-contained, no external
//! dependencies) and adds *splitting*: deriving an independent child stream
//! from a label, so subsystems cannot perturb each other's randomness by
//! consuming different amounts of it.

/// A deterministic random-number generator with labelled sub-streams.
///
/// # Examples
///
/// ```
/// use luke_common::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Child streams with different labels are independent of each other
/// // and of the parent.
/// let mut fx = DetRng::new(42).split(7);
/// let mut fy = DetRng::new(42).split(8);
/// assert_ne!(fx.next_u64(), fy.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into the xoshiro state through a SplitMix64
        // stream, per the generator authors' recommendation.
        let mut sm = mix(seed);
        let mut state = [0u64; 4];
        for word in &mut state {
            sm = mix(sm);
            *word = sm;
        }
        DetRng { seed, state }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator from a label.
    ///
    /// Splitting does not consume state from `self`, so the order in which
    /// children are created never matters.
    pub fn split(&self, label: u64) -> DetRng {
        DetRng::new(mix(
            self.seed ^ mix(label.wrapping_add(0x9e37_79b9_7f4a_7c15))
        ))
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift (Lemire) bounded generation with a rejection pass
        // to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// Used for invocation inter-arrival times (the Azure study the paper
    /// cites reports second-to-minute-scale IATs, §2.1).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Sample from a normal distribution via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Chooses an index according to the relative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation used to
/// decorrelate seeds derived from nearby labels.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_order_independent() {
        let parent = DetRng::new(7);
        let mut c1 = parent.split(3);
        let first = c1.next_u64();
        // Splitting other children first must not change child 3's stream.
        let parent2 = DetRng::new(7);
        let _ = parent2.split(1);
        let _ = parent2.split(2);
        let mut c1_again = parent2.split(3);
        assert_eq!(c1_again.next_u64(), first);
    }

    #[test]
    fn split_children_differ_from_parent() {
        let parent = DetRng::new(9);
        let mut p = parent.clone();
        let mut c = parent.split(0);
        assert_ne!(p.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = DetRng::new(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut r = DetRng::new(19);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.05, "frac was {frac2}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not panicked on.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        DetRng::new(0).below(0);
    }
}
