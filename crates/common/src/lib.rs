//! Shared primitives for the `lukewarm` workspace.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! reproduction of *Lukewarm Serverless Functions: Characterization and
//! Optimization* (ISCA '22):
//!
//! * [`addr`] — strongly-typed virtual/physical addresses and the cache-line,
//!   page and code-region arithmetic the simulator performs constantly;
//! * [`error`] — the [`SimError`] type returned by validated constructors
//!   throughout the workspace, so invalid configurations surface as clean
//!   errors (and CLI exit codes) rather than panics;
//! * [`rng`] — deterministic, splittable random-number generation so that
//!   every experiment is exactly reproducible from a single seed;
//! * [`stats`] — the statistics the paper reports (arithmetic/geometric
//!   means, percentiles, the Jaccard index used in Figure 6b);
//! * [`size`] — human-readable byte-size formatting for tables;
//! * [`table`] — minimal fixed-width text-table rendering for the benchmark
//!   harness output.
//!
//! # Examples
//!
//! ```
//! use luke_common::addr::{VirtAddr, LINE_BYTES};
//!
//! let pc = VirtAddr::new(0x7f00_1234);
//! assert_eq!(pc.line().base().as_u64() % LINE_BYTES as u64, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod rng;
pub mod size;
pub mod stats;
pub mod table;

pub use addr::{LineAddr, PhysAddr, VirtAddr, LINE_BYTES, PAGE_BYTES};
pub use error::SimError;
pub use rng::DetRng;
pub use stats::Summary;
