//! Error type shared by every layer of the simulator.
//!
//! Configuration mistakes (a zero-way cache, a negative inter-arrival time,
//! a non-positive keep-alive) and runtime integrity failures (corrupted
//! prefetcher metadata) are expected, user-triggerable conditions, not
//! programming bugs — so the constructors that detect them return
//! `Result<_, SimError>` rather than panicking, and the CLI maps each
//! variant to a distinct process exit code.

use std::fmt;

/// An expected failure: invalid configuration or corrupted state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A configuration value failed validation before any simulation ran.
    ///
    /// `field` names the offending knob in dotted form (`"l2.ways"`,
    /// `"pool.keep_alive_ms"`), `reason` says what was wrong with it.
    InvalidConfig {
        /// Dotted path of the offending field.
        field: String,
        /// Human-readable explanation of the violation.
        reason: String,
    },
    /// Prefetcher metadata failed an integrity check at replay time.
    ///
    /// This is recoverable: the replayer degrades to record-only for the
    /// invocation and counts the abort, it never panics.
    CorruptMetadata {
        /// What the validator found (truncation, out-of-bounds region, …).
        reason: String,
    },
    /// Admission control shed every invocation of a fleet run — the
    /// configured reserved/burst limits left no capacity at all, so the
    /// run produced nothing but rejections.
    AdmissionRejected {
        /// How many invocations were shed (the whole arrival stream).
        shed: u64,
    },
    /// Every host in the fleet was inside a chaos down-window when an
    /// invocation arrived: there is no host left to fail over to.
    AllHostsDown {
        /// Arrival time of the unroutable invocation, whole milliseconds.
        at_ms: u64,
    },
}

impl SimError {
    /// Convenience constructor for configuration violations.
    pub fn invalid_config(field: impl Into<String>, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for metadata integrity failures.
    pub fn corrupt_metadata(reason: impl Into<String>) -> Self {
        SimError::CorruptMetadata {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for a fully shed fleet run.
    pub fn admission_rejected(shed: u64) -> Self {
        SimError::AdmissionRejected { shed }
    }

    /// Convenience constructor for a fleet-wide outage.
    pub fn all_hosts_down(at_ms: u64) -> Self {
        SimError::AllHostsDown { at_ms }
    }

    /// Process exit code the CLI uses for this error class.
    ///
    /// `2` is reserved for usage errors (unknown flags); configuration
    /// validation gets `3`, metadata corruption `4`, total admission
    /// rejection `5`, and a fleet-wide outage `6`.
    pub fn exit_code(&self) -> i32 {
        match self {
            SimError::InvalidConfig { .. } => 3,
            SimError::CorruptMetadata { .. } => 4,
            SimError::AdmissionRejected { .. } => 5,
            SimError::AllHostsDown { .. } => 6,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            SimError::CorruptMetadata { reason } => {
                write!(f, "corrupt metadata: {reason}")
            }
            SimError::AdmissionRejected { shed } => {
                write!(
                    f,
                    "admission rejected: all {shed} invocations were shed (no reserved or burst capacity admitted anything)"
                )
            }
            SimError::AllHostsDown { at_ms } => {
                write!(
                    f,
                    "all hosts down: every host was inside a chaos down-window at t={at_ms}ms; nothing left to fail over to"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let e = SimError::invalid_config("l2.ways", "must be positive");
        let s = format!("{e}");
        assert_eq!(s, "invalid config: l2.ways: must be positive");
        assert!(!s.contains('\n'));
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            SimError::invalid_config("x", "y"),
            SimError::corrupt_metadata("tag mismatch"),
            SimError::admission_rejected(100),
            SimError::all_hosts_down(1234),
        ];
        let codes: Vec<i32> = errors.iter().map(SimError::exit_code).collect();
        for (i, &a) in codes.iter().enumerate() {
            assert_ne!(a, 0);
            assert_ne!(a, 2, "2 is reserved for CLI usage errors");
            for &b in &codes[i + 1..] {
                assert_ne!(a, b, "exit codes must be distinct: {codes:?}");
            }
        }
    }

    #[test]
    fn resilience_errors_display_one_line_with_context() {
        let shed = SimError::admission_rejected(500);
        let s = format!("{shed}");
        assert!(s.contains("500") && !s.contains('\n'), "{s}");
        let down = SimError::all_hosts_down(9_000);
        let s = format!("{down}");
        assert!(s.contains("9000ms") && !s.contains('\n'), "{s}");
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::corrupt_metadata("truncated"));
        assert!(format!("{e}").contains("truncated"));
    }
}
