//! Error type shared by every layer of the simulator.
//!
//! Configuration mistakes (a zero-way cache, a negative inter-arrival time,
//! a non-positive keep-alive) and runtime integrity failures (corrupted
//! prefetcher metadata) are expected, user-triggerable conditions, not
//! programming bugs — so the constructors that detect them return
//! `Result<_, SimError>` rather than panicking, and the CLI maps each
//! variant to a distinct process exit code.

use std::fmt;

/// An expected failure: invalid configuration or corrupted state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A configuration value failed validation before any simulation ran.
    ///
    /// `field` names the offending knob in dotted form (`"l2.ways"`,
    /// `"pool.keep_alive_ms"`), `reason` says what was wrong with it.
    InvalidConfig {
        /// Dotted path of the offending field.
        field: String,
        /// Human-readable explanation of the violation.
        reason: String,
    },
    /// Prefetcher metadata failed an integrity check at replay time.
    ///
    /// This is recoverable: the replayer degrades to record-only for the
    /// invocation and counts the abort, it never panics.
    CorruptMetadata {
        /// What the validator found (truncation, out-of-bounds region, …).
        reason: String,
    },
}

impl SimError {
    /// Convenience constructor for configuration violations.
    pub fn invalid_config(field: impl Into<String>, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for metadata integrity failures.
    pub fn corrupt_metadata(reason: impl Into<String>) -> Self {
        SimError::CorruptMetadata {
            reason: reason.into(),
        }
    }

    /// Process exit code the CLI uses for this error class.
    ///
    /// `2` is reserved for usage errors (unknown flags); configuration
    /// validation gets `3`, metadata corruption `4`.
    pub fn exit_code(&self) -> i32 {
        match self {
            SimError::InvalidConfig { .. } => 3,
            SimError::CorruptMetadata { .. } => 4,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            SimError::CorruptMetadata { reason } => {
                write!(f, "corrupt metadata: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let e = SimError::invalid_config("l2.ways", "must be positive");
        let s = format!("{e}");
        assert_eq!(s, "invalid config: l2.ways: must be positive");
        assert!(!s.contains('\n'));
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let cfg = SimError::invalid_config("x", "y");
        let meta = SimError::corrupt_metadata("tag mismatch");
        assert_ne!(cfg.exit_code(), 0);
        assert_ne!(meta.exit_code(), 0);
        assert_ne!(cfg.exit_code(), meta.exit_code());
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::corrupt_metadata("truncated"));
        assert!(format!("{e}").contains("truncated"));
    }
}
