//! A minimal, dependency-free, deterministic stand-in for the subset of
//! the `proptest` API this workspace uses.
//!
//! The container this project builds in has no access to crates.io, so the
//! real `proptest` cannot be fetched. This crate re-implements exactly the
//! surface the workspace's property tests rely on:
//!
//! * [`Strategy`] with `generate` + [`Strategy::prop_map`];
//! * integer [`std::ops::Range`] strategies, tuple strategies (arity 2–6),
//!   [`any`] for primitives, and [`collection::vec`] /
//!   [`collection::btree_set`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros, plus [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: generation is seeded deterministically
//! from the test name and case index (fully reproducible, no
//! `PROPTEST_CASES` env handling), and failing cases are reported but
//! **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Deterministic generator backing all strategies (xoshiro256++ seeded via
/// SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates the generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = splitmix(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut state = [0u64; 4];
        for word in &mut state {
            sm = splitmix(sm);
            *word = sm;
        }
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Error produced by a failing `prop_assert!` inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_wide_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u128;
                let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((x % span) as $t)
            }
        }
    )*};
}

impl_wide_range_strategy!(u128, i128);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Collection-size specifications: a fixed size or a half-open range.
    pub trait IntoSizeRange {
        /// Samples a size.
        fn sample_size(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            // Sample up to `n` elements; duplicates collapse, so the set may
            // come out smaller (same as the real crate under a tight
            // domain).
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet`s of up to `size` elements.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace mirror of the real crate's `prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests.
///
/// Mirrors the real crate's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn holds(x in 0u64..100, ys in prop::collection::vec(0u64..10, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_case_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(
                            &($strat),
                            &mut proptest_case_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (early-returns a
/// [`TestCaseError`] instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} != {:?}): {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let s = Strategy::generate(&(2usize..4), &mut rng);
            assert!((2..4).contains(&s));
            let i = Strategy::generate(&(-3i64..3), &mut rng);
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 1..50);
        let a = Strategy::generate(&strat, &mut TestRng::for_case("det", 7));
        let b = Strategy::generate(&strat, &mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
        let c = Strategy::generate(&strat, &mut TestRng::for_case("det", 8));
        assert_ne!(a, c, "different cases should differ");
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::for_case("map", 0);
        for _ in 0..100 {
            assert!(Strategy::generate(&strat, &mut rng) < 19);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_checks(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag || !flag, true);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
