//! `luke-predict` — predictive pre-warming and adaptive keep-alive.
//!
//! The paper's warm-pool characterization shows lukewarm invocations
//! dominate precisely because a fixed keep-alive window is blind to
//! per-function arrival patterns: it holds instances for rare functions
//! far too long (memory burned for nothing) and still misses the next
//! arrival of bursty ones (cold start anyway). This crate supplies the
//! missing signal: a deterministic **online inter-arrival-time model**
//! per function, and a **policy engine** that turns the model into two
//! decision streams —
//!
//! * **pre-warm**: schedule a REAP pre-restore at
//!   `predicted_arrival − restore_cost`, so the instance is
//!   warm-or-lukewarm when the real arrival lands, and
//! * **early-decay**: a per-function adaptive keep-alive that releases
//!   an instance once the predicted-arrival quantile has passed,
//!   replacing the pool's single global `keep_alive_ms`.
//!
//! Everything is driven by simulated time and deterministic state — no
//! wall clock, no global RNG — so fleet runs with prediction enabled
//! stay byte-identical across worker-thread counts, and the disabled
//! sentinel ([`PrewarmConfig::disabled`]) is bit-transparent, following
//! the `ChaosConfig::none()` contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod config;
mod hist;
mod predictor;

pub use bank::PredictorBank;
pub use config::PrewarmConfig;
pub use hist::IatHistogram;
pub use predictor::Predictor;
