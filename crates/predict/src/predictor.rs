//! The per-function arrival model: log-bucketed history plus a hybrid
//! prediction head.

use crate::config::PrewarmConfig;
use crate::hist::IatHistogram;

/// Gaps kept in the short recency window for the periodicity head.
const RECENT_WINDOW: usize = 8;

/// Recent gaps required before the periodicity head may fire.
const MIN_PERIODIC_SAMPLES: usize = 4;

/// One function's online inter-arrival-time model.
///
/// Feeds every observed arrival into a log-bucketed [`IatHistogram`]
/// and a short recency ring. Predictions come from a **hybrid head**:
/// when the recent gaps are regular (coefficient of variation at or
/// below [`PrewarmConfig::periodic_cv`]) the head answers the recent
/// mean — the timer-driven / cron-style case where a point prediction
/// beats any quantile — and otherwise it falls back to the histogram
/// quantile, which is all one can honestly say about a bursty stream.
/// Entirely clock-free: arrivals carry their own simulated timestamps.
#[derive(Clone, Debug)]
pub struct Predictor {
    hist: IatHistogram,
    recent: [f64; RECENT_WINDOW],
    recent_len: usize,
    recent_head: usize,
    last_arrival_ms: Option<f64>,
}

impl Default for Predictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor {
    /// A model that has seen nothing.
    pub fn new() -> Self {
        Predictor {
            hist: IatHistogram::new(),
            recent: [0.0; RECENT_WINDOW],
            recent_len: 0,
            recent_head: 0,
            last_arrival_ms: None,
        }
    }

    /// Feeds one arrival at simulated time `now_ms`. The first arrival
    /// only anchors the clock; every later one records a gap.
    pub fn observe(&mut self, now_ms: f64) {
        if let Some(last) = self.last_arrival_ms {
            let iat = now_ms - last;
            self.hist.record(iat);
            self.recent[self.recent_head] = iat.max(0.0);
            self.recent_head = (self.recent_head + 1) % RECENT_WINDOW;
            self.recent_len = (self.recent_len + 1).min(RECENT_WINDOW);
        }
        self.last_arrival_ms = Some(now_ms);
    }

    /// Simulated time of the most recent arrival, if any.
    pub fn last_arrival_ms(&self) -> Option<f64> {
        self.last_arrival_ms
    }

    /// Observed gaps so far.
    pub fn samples(&self) -> u64 {
        self.hist.count()
    }

    /// The underlying histogram (read-only, for exporters and tests).
    pub fn histogram(&self) -> &IatHistogram {
        &self.hist
    }

    /// Mean and coefficient of variation over the recency window, if
    /// the periodicity head has enough gaps to speak.
    fn recent_stats(&self) -> Option<(f64, f64)> {
        if self.recent_len < MIN_PERIODIC_SAMPLES {
            return None;
        }
        let window = &self.recent[..self.recent_len];
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        if mean <= 0.0 {
            return None;
        }
        let var = window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / window.len() as f64;
        Some((mean, var.sqrt() / mean))
    }

    /// Predicted gap until the next arrival, or `None` while the model
    /// is under-sampled (fewer than [`PrewarmConfig::min_samples`] gaps
    /// and no periodic signal).
    pub fn predicted_iat_ms(&self, config: &PrewarmConfig) -> Option<f64> {
        if let Some((mean, cv)) = self.recent_stats() {
            if cv <= config.periodic_cv {
                return Some(mean);
            }
        }
        if self.hist.count() >= config.min_samples {
            return self.hist.quantile(config.prewarm_quantile);
        }
        None
    }

    /// The adaptive keep-alive for this function, clamped to
    /// `[min_hold_ms, cap_ms]` where `cap_ms` is the pool's global
    /// keep-alive. Under-sampled functions answer the cap — exactly the
    /// fixed-window behavior — so the policy only ever deviates on
    /// evidence. A periodic function decays at the hold floor: the
    /// pre-warm stream, not residency, covers its next arrival.
    pub fn hold_ms(&self, config: &PrewarmConfig, cap_ms: f64) -> f64 {
        let floor = config.min_hold_ms.min(cap_ms);
        if let Some((_, cv)) = self.recent_stats() {
            if cv <= config.periodic_cv {
                return floor;
            }
        }
        if self.hist.count() < config.min_samples {
            return cap_ms;
        }
        match self.hist.quantile(config.decay_quantile) {
            Some(q) => q.clamp(floor, cap_ms),
            None => cap_ms,
        }
    }

    /// Folds `other` into `self`: histograms add; the recency window
    /// and clock anchor are taken from whichever side saw the later
    /// arrival (deterministic — no tie can arise between models fed on
    /// disjoint arrival streams of one function, and an exact tie keeps
    /// `self`).
    pub fn merge(&mut self, other: &Predictor) {
        self.hist.merge(&other.hist);
        let other_later = match (self.last_arrival_ms, other.last_arrival_ms) {
            (Some(a), Some(b)) => b > a,
            (None, Some(_)) => true,
            _ => false,
        };
        if other_later {
            self.recent = other.recent;
            self.recent_len = other.recent_len;
            self.recent_head = other.recent_head;
            self.last_arrival_ms = other.last_arrival_ms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PrewarmConfig {
        PrewarmConfig::default_enabled()
    }

    #[test]
    fn first_arrival_anchors_without_a_gap() {
        let mut p = Predictor::new();
        p.observe(100.0);
        assert_eq!(p.samples(), 0);
        assert_eq!(p.last_arrival_ms(), Some(100.0));
        assert_eq!(p.predicted_iat_ms(&config()), None);
    }

    #[test]
    fn periodic_head_fires_on_regular_gaps() {
        let mut p = Predictor::new();
        for i in 0..6 {
            p.observe(i as f64 * 500.0);
        }
        let predicted = p.predicted_iat_ms(&config()).expect("periodic head fires");
        assert!((predicted - 500.0).abs() < 1.0, "predicted {predicted}");
        // Periodic functions decay at the hold floor, not the cap.
        assert_eq!(p.hold_ms(&config(), 600_000.0), config().min_hold_ms);
    }

    #[test]
    fn undersampled_model_keeps_the_global_window() {
        let mut p = Predictor::new();
        p.observe(0.0);
        p.observe(900.0);
        p.observe(1300.0);
        assert_eq!(p.hold_ms(&config(), 600_000.0), 600_000.0);
    }

    #[test]
    fn bursty_stream_falls_back_to_the_quantile() {
        let mut p = Predictor::new();
        let mut t = 0.0;
        // Irregular gaps: CV far above the periodic threshold.
        for i in 0..40u32 {
            t += if i % 3 == 0 { 50.0 } else { 2_000.0 };
            p.observe(t);
        }
        let predicted = p.predicted_iat_ms(&config()).expect("quantile fallback");
        assert!(predicted > 0.0);
        let hold = p.hold_ms(&config(), 600_000.0);
        assert!(hold >= config().min_hold_ms);
        assert!(hold < 600_000.0, "decay tightens below the cap: {hold}");
    }

    #[test]
    fn hold_never_drops_below_the_floor() {
        let mut p = Predictor::new();
        for i in 0..32 {
            p.observe(i as f64 * 2.0); // 2 ms period, far below the floor
        }
        assert_eq!(p.hold_ms(&config(), 600_000.0), config().min_hold_ms);
    }

    #[test]
    fn merge_takes_the_later_clock_anchor() {
        let mut a = Predictor::new();
        let mut b = Predictor::new();
        for i in 0..5 {
            a.observe(i as f64 * 100.0);
        }
        for i in 0..5 {
            b.observe(10_000.0 + i as f64 * 100.0);
        }
        let samples = a.samples() + b.samples();
        a.merge(&b);
        assert_eq!(a.samples(), samples);
        assert_eq!(a.last_arrival_ms(), Some(10_400.0));
    }
}
