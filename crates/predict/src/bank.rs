//! The per-host policy engine: one predictor per function, two
//! decision streams out.

use crate::config::PrewarmConfig;
use crate::predictor::Predictor;

/// A bank of per-function predictors plus the policy state derived from
/// them: the current adaptive keep-alive per function and at most one
/// pending pre-restore per function.
///
/// One bank lives inside each simulated host, fed only by that host's
/// arrival stream — shard-local state, so the fleet's parallel phase
/// needs no cross-thread coordination and merges stay deterministic.
#[derive(Clone, Debug)]
pub struct PredictorBank {
    config: PrewarmConfig,
    cap_ms: f64,
    predictors: Vec<Predictor>,
    holds: Vec<f64>,
    pending: Vec<Option<f64>>,
    prewarms_scheduled: u64,
    early_decays: u64,
}

impl PredictorBank {
    /// A bank covering `functions` function ids, with the pool's global
    /// keep-alive `cap_ms` as every function's starting hold.
    pub fn new(config: PrewarmConfig, functions: usize, cap_ms: f64) -> Self {
        PredictorBank {
            config,
            cap_ms,
            predictors: vec![Predictor::new(); functions],
            holds: vec![cap_ms; functions],
            pending: vec![None; functions],
            prewarms_scheduled: 0,
            early_decays: 0,
        }
    }

    /// The policy knobs this bank runs under.
    pub fn config(&self) -> &PrewarmConfig {
        &self.config
    }

    /// Feeds one arrival of `function` at simulated time `now_ms` and
    /// refreshes both decision streams. `restore_est_ms` is the current
    /// estimate of a REAP pre-restore's cost for this function, used to
    /// back-date the pre-warm to `predicted_arrival − restore_cost`.
    ///
    /// A pre-restore is scheduled only when the predicted arrival falls
    /// *after* the adaptive keep-alive expires — while the instance
    /// would still be resident, a pre-warm buys nothing.
    ///
    /// Returns the newly scheduled pre-restore time, if any, so an
    /// event-driven caller can push a timer instead of polling
    /// [`PredictorBank::due_prewarms`]. Each observe *replaces* the
    /// function's pending pre-restore (at most one outstanding), so a
    /// `Some` return also invalidates any timer from a prior observe.
    pub fn observe(&mut self, function: usize, now_ms: f64, restore_est_ms: f64) -> Option<f64> {
        let predictor = &mut self.predictors[function];
        predictor.observe(now_ms);
        let hold = predictor.hold_ms(&self.config, self.cap_ms);
        if hold < self.cap_ms {
            self.early_decays += 1;
        }
        self.holds[function] = hold;
        self.pending[function] = match predictor.predicted_iat_ms(&self.config) {
            Some(iat) => {
                let t_pre = now_ms + iat - restore_est_ms.max(0.0);
                if t_pre > now_ms + hold {
                    self.prewarms_scheduled += 1;
                    Some(t_pre)
                } else {
                    None
                }
            }
            None => None,
        };
        self.pending[function]
    }

    /// The current adaptive keep-alive per function id, for the pool's
    /// adaptive sweep. Functions the model has not yet justified a
    /// deviation for sit at the global cap.
    pub fn holds(&self) -> &[f64] {
        &self.holds
    }

    /// Drains every pre-restore whose scheduled time has arrived, in
    /// function-id order (deterministic). Each entry is
    /// `(function, scheduled_ms)`; the caller spawns the restored
    /// instance as of `scheduled_ms`, which by construction lies
    /// between the previous and the current arrival.
    pub fn due_prewarms(&mut self, now_ms: f64) -> Vec<(usize, f64)> {
        let mut due = Vec::new();
        for (function, slot) in self.pending.iter_mut().enumerate() {
            if let Some(t_pre) = *slot {
                if t_pre <= now_ms {
                    due.push((function, t_pre));
                    *slot = None;
                }
            }
        }
        due
    }

    /// Read-only view of one function's predictor.
    pub fn predictor(&self, function: usize) -> &Predictor {
        &self.predictors[function]
    }

    /// Pre-restores scheduled so far.
    pub fn prewarms_scheduled(&self) -> u64 {
        self.prewarms_scheduled
    }

    /// Arrivals processed while a tightened (below-cap) hold was in
    /// force for their function.
    pub fn early_decays(&self) -> u64 {
        self.early_decays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_holds_every_function_at_the_cap() {
        let bank = PredictorBank::new(PrewarmConfig::default_enabled(), 4, 600_000.0);
        assert_eq!(bank.holds(), &[600_000.0; 4]);
        assert_eq!(bank.prewarms_scheduled(), 0);
    }

    #[test]
    fn periodic_function_schedules_a_prewarm_after_its_hold() {
        let mut bank = PredictorBank::new(PrewarmConfig::default_enabled(), 1, 600_000.0);
        for i in 0..8 {
            bank.observe(0, i as f64 * 5_000.0, 100.0);
        }
        // Period 5 s, hold floor 1 s: the predicted arrival lands after
        // expiry, so a pre-restore is pending at 35_000 + 5_000 − 100.
        assert!(bank.prewarms_scheduled() > 0);
        assert!(bank.due_prewarms(39_000.0).is_empty());
        let due = bank.due_prewarms(40_000.0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 0);
        assert!((due[0].1 - 39_900.0).abs() < 1.0, "scheduled at {}", due[0].1);
        // Draining is idempotent.
        assert!(bank.due_prewarms(40_000.0).is_empty());
    }

    #[test]
    fn no_prewarm_while_the_instance_would_still_be_resident() {
        let config = PrewarmConfig {
            min_hold_ms: 60_000.0,
            ..PrewarmConfig::default_enabled()
        };
        let mut bank = PredictorBank::new(config, 1, 600_000.0);
        for i in 0..8 {
            bank.observe(0, i as f64 * 5_000.0, 100.0);
        }
        // Period 5 s but the hold floor is 60 s: every predicted
        // arrival lands while the instance is still warm.
        assert_eq!(bank.prewarms_scheduled(), 0);
    }

    #[test]
    fn early_decays_count_tightened_holds() {
        let mut bank = PredictorBank::new(PrewarmConfig::default_enabled(), 1, 600_000.0);
        for i in 0..8 {
            bank.observe(0, i as f64 * 5_000.0, 100.0);
        }
        assert!(bank.early_decays() > 0);
        assert!(bank.holds()[0] < 600_000.0);
    }
}
