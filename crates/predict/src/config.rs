//! Policy knobs for prediction-driven pre-warming and early decay.

use luke_common::SimError;

/// Configuration for the predictive pre-warm / adaptive keep-alive
/// policy.
///
/// The disabled sentinel ([`PrewarmConfig::disabled`], also the
/// `Default`) follows the `ChaosConfig::none()` contract: a fleet run
/// with prediction disabled is bit-identical to one that never heard of
/// this crate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrewarmConfig {
    /// Master switch. When `false` every other field is ignored and the
    /// pool falls back to its single global `keep_alive_ms`.
    pub enabled: bool,
    /// IAT quantile used to predict the *next arrival* for pre-warm
    /// scheduling, in `(0, 1)`. Lower fires pre-restores earlier
    /// (more hits, more wasted restores); higher waits for certainty.
    pub prewarm_quantile: f64,
    /// IAT quantile used as the *adaptive keep-alive*, in `(0, 1)`:
    /// an idle instance is released once this quantile of the
    /// function's observed gaps has passed. The complement is the
    /// per-arrival probability of a self-inflicted cold start.
    pub decay_quantile: f64,
    /// Floor on the adaptive keep-alive, in milliseconds. No instance
    /// is ever released before `last_arrival + min_hold_ms`, however
    /// aggressive the model's estimate.
    pub min_hold_ms: f64,
    /// Observed gaps required before the model may override the global
    /// keep-alive. Under-sampled functions behave exactly as without
    /// prediction.
    pub min_samples: u64,
    /// Coefficient-of-variation ceiling for the short-window
    /// periodicity head: when the recent gaps are this regular, the
    /// head predicts `mean(recent)` directly instead of the histogram
    /// quantile.
    pub periodic_cv: f64,
}

impl PrewarmConfig {
    /// The bit-transparent sentinel: prediction off, pool behavior
    /// byte-identical to a build without `luke-predict`.
    pub fn disabled() -> Self {
        PrewarmConfig {
            enabled: false,
            prewarm_quantile: 0.0,
            decay_quantile: 0.0,
            min_hold_ms: 0.0,
            min_samples: 0,
            periodic_cv: 0.0,
        }
    }

    /// Reference policy: median-quantile pre-warm, conservative
    /// 99th-quantile decay, one-second hold floor, and a model that
    /// stays silent for its first 16 gaps.
    pub fn default_enabled() -> Self {
        PrewarmConfig {
            enabled: true,
            prewarm_quantile: 0.5,
            decay_quantile: 0.99,
            min_hold_ms: 1_000.0,
            min_samples: 16,
            periodic_cv: 0.10,
        }
    }

    /// Whether this is the disabled sentinel.
    pub fn is_disabled(&self) -> bool {
        !self.enabled
    }

    /// Validates the knobs; the disabled sentinel is always valid.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.enabled {
            return Ok(());
        }
        if !(self.prewarm_quantile.is_finite()
            && self.prewarm_quantile > 0.0
            && self.prewarm_quantile < 1.0)
        {
            return Err(SimError::invalid_config(
                "prewarm.prewarm_quantile",
                "must be strictly between 0 and 1",
            ));
        }
        if !(self.decay_quantile.is_finite()
            && self.decay_quantile > 0.0
            && self.decay_quantile < 1.0)
        {
            return Err(SimError::invalid_config(
                "prewarm.decay_quantile",
                "must be strictly between 0 and 1",
            ));
        }
        if !(self.min_hold_ms.is_finite() && self.min_hold_ms > 0.0) {
            return Err(SimError::invalid_config(
                "prewarm.min_hold_ms",
                "must be positive and finite",
            ));
        }
        if self.min_samples == 0 {
            return Err(SimError::invalid_config(
                "prewarm.min_samples",
                "must be at least 1",
            ));
        }
        if !(self.periodic_cv.is_finite() && self.periodic_cv >= 0.0) {
            return Err(SimError::invalid_config(
                "prewarm.periodic_cv",
                "must be non-negative and finite",
            ));
        }
        Ok(())
    }
}

impl Default for PrewarmConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sentinel_is_default_and_valid() {
        assert_eq!(PrewarmConfig::default(), PrewarmConfig::disabled());
        assert!(PrewarmConfig::disabled().is_disabled());
        assert!(PrewarmConfig::disabled().validate().is_ok());
    }

    #[test]
    fn reference_policy_is_valid_and_enabled() {
        let c = PrewarmConfig::default_enabled();
        assert!(!c.is_disabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_fields_are_named() {
        let cases = [
            (
                PrewarmConfig {
                    prewarm_quantile: 1.0,
                    ..PrewarmConfig::default_enabled()
                },
                "prewarm.prewarm_quantile",
            ),
            (
                PrewarmConfig {
                    decay_quantile: 0.0,
                    ..PrewarmConfig::default_enabled()
                },
                "prewarm.decay_quantile",
            ),
            (
                PrewarmConfig {
                    min_hold_ms: f64::NAN,
                    ..PrewarmConfig::default_enabled()
                },
                "prewarm.min_hold_ms",
            ),
            (
                PrewarmConfig {
                    min_samples: 0,
                    ..PrewarmConfig::default_enabled()
                },
                "prewarm.min_samples",
            ),
            (
                PrewarmConfig {
                    periodic_cv: -0.1,
                    ..PrewarmConfig::default_enabled()
                },
                "prewarm.periodic_cv",
            ),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err().to_string();
            assert!(err.contains(field), "{err} should name {field}");
        }
    }
}
