//! Log-bucketed inter-arrival-time histogram.

use luke_obs::hist::{bucket_bounds, bucket_index, BUCKETS};

/// A log-bucketed histogram of one function's inter-arrival times, in
/// milliseconds.
///
/// Reuses the observability crate's HDR-style bucket geometry (exact
/// below 32 ms, ~25% relative error above), so a few hundred `u32`
/// counters cover the full range from sub-millisecond bursts to
/// multi-hour gaps. Quantiles report the holding bucket's inclusive
/// upper bound, clamped to the recorded maximum — a deliberate
/// *overestimate*: a predicted arrival errs late (the pre-warm never
/// fires earlier than the model can justify) and a decay deadline errs
/// long (an instance is never released before the quantile the policy
/// asked for has truly passed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IatHistogram {
    counts: Vec<u32>,
    count: u64,
    sum_ms: u64,
    max_ms: u64,
}

impl Default for IatHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl IatHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        IatHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ms: 0,
            max_ms: 0,
        }
    }

    /// Records one inter-arrival gap. Non-finite or negative samples are
    /// ignored (they cannot arise from a monotone simulated clock, but
    /// the model must never poison itself on one).
    pub fn record(&mut self, iat_ms: f64) {
        if !iat_ms.is_finite() || iat_ms < 0.0 {
            return;
        }
        let value = iat_ms.round() as u64;
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum_ms = self.sum_ms.saturating_add(value);
        self.max_ms = self.max_ms.max(value);
    }

    /// Number of recorded gaps.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean gap (0 if empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms as f64 / self.count as f64
        }
    }

    /// Largest recorded gap (0 if empty).
    pub fn max_ms(&self) -> u64 {
        self.max_ms
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`) as the inclusive upper
    /// bound of the holding bucket, clamped to the recorded maximum.
    /// `None` while empty: an unsampled model stays silent rather than
    /// fabricating a prediction.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += u64::from(c);
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return Some((hi - 1).min(self.max_ms) as f64);
            }
        }
        Some(self.max_ms as f64)
    }

    /// Folds `other` into `self` bucket-wise. Merging histograms fed on
    /// disjoint arrival streams is exactly equivalent to recording every
    /// gap into one histogram, in any order — the property the fleet's
    /// deterministic parallel merge relies on.
    pub fn merge(&mut self, other: &IatHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ms = self.sum_ms.saturating_add(other.sum_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_stays_silent() {
        let h = IatHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn quantile_overestimates_but_clamps_to_max() {
        let mut h = IatHistogram::new();
        for _ in 0..100 {
            h.record(1000.0);
        }
        let q = h.quantile(0.5).unwrap();
        assert!(q >= 1000.0, "quantile must not underestimate: {q}");
        assert!(q <= h.max_ms() as f64, "quantile must clamp to max: {q}");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = IatHistogram::new();
        for i in 0..500u64 {
            h.record((i * 7 % 3000) as f64);
        }
        let mut last = 0.0;
        for step in 0..=20 {
            let q = h.quantile(step as f64 / 20.0).unwrap();
            assert!(q >= last, "quantile({step}/20) = {q} < {last}");
            last = q;
        }
    }

    #[test]
    fn negative_and_non_finite_samples_are_ignored() {
        let mut h = IatHistogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = IatHistogram::new();
        let mut b = IatHistogram::new();
        let mut both = IatHistogram::new();
        for i in 0..200u64 {
            let v = (i * i % 5000) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
