//! The measurement protocol and run aggregation.
//!
//! The paper's methodology (§4.2): warm the system functionally (20000
//! invocations into a checkpoint — which also leaves Jukebox metadata
//! recorded), then measure 20 invocations in timing mode, flushing all
//! microarchitectural state between invocations for the interleaved
//! baseline. Here: `warmup` invocations establish steady state (JIT-like
//! variation is already absent by construction; what matters is that the
//! prefetcher's metadata exists and the page table is populated), then
//! `invocations` measured runs are aggregated.

use crate::config::SystemConfig;
use crate::system::{InvocationMetrics, SystemSim};
use jukebox::{JukeboxConfig, JukeboxPrefetcher};
use prefetchers::{Combined, FetchDirected, FootprintRestore, NextLine, Pif};
use sim_cpu::TopDown;
use sim_mem::hierarchy::HierarchySnapshot;
use sim_mem::prefetch::{InstructionPrefetcher, IssueCounters, NoPrefetcher};
use workloads::FunctionProfile;

/// Global experiment parameters: workload scale and repetition counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentParams {
    /// Workload scale factor (1.0 = paper-scale functions).
    pub scale: f64,
    /// Measured invocations per configuration.
    pub invocations: u64,
    /// Warm-up invocations before measurement (establishes prefetcher
    /// metadata; not measured).
    pub warmup: u64,
}

impl ExperimentParams {
    /// Validated constructor: rejects parameter combinations that would
    /// produce NaN-prone summaries (`invocations == 0` leaves every
    /// aggregate empty, so CPI/MPKI divide zero by zero) or meaningless
    /// workloads (non-finite or non-positive `scale`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`](luke_common::SimError) naming
    /// the offending field; the CLI maps it to exit code 3.
    pub fn try_new(
        scale: f64,
        invocations: u64,
        warmup: u64,
    ) -> Result<Self, luke_common::SimError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(luke_common::SimError::invalid_config(
                "params.scale",
                format!("must be a positive finite number, got {scale}"),
            ));
        }
        if invocations == 0 {
            return Err(luke_common::SimError::invalid_config(
                "params.invocations",
                "must be at least 1 (a warmup-only run measures nothing and \
                 yields NaN-prone summaries)",
            ));
        }
        Ok(ExperimentParams {
            scale,
            invocations,
            warmup,
        })
    }

    /// Paper-scale runs for the benchmark harness.
    pub fn paper() -> Self {
        ExperimentParams {
            scale: 1.0,
            invocations: 8,
            warmup: 2,
        }
    }

    /// Small, fast runs for tests.
    pub fn quick() -> Self {
        ExperimentParams {
            scale: 0.04,
            invocations: 3,
            warmup: 2,
        }
    }
}

/// Which instruction prefetcher (or oracle) a run uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrefetcherKind {
    /// No prefetching — the interleaved baseline.
    None,
    /// Jukebox with the given configuration.
    Jukebox(JukeboxConfig),
    /// The next-line baseline.
    NextLine,
    /// PIF, paper configuration (non-persistent).
    Pif,
    /// PIF-ideal (unbounded, persistent).
    PifIdeal,
    /// Jukebox combined with PIF-ideal (Figure 13's last bar).
    JukeboxPlusPifIdeal(JukeboxConfig),
    /// Indiscriminate cache restoration (Daly & Cain / RECAP, §6).
    FootprintRestore,
    /// BTB-directed run-ahead (FDIP/Boomerang, §6); cold at dispatch.
    FetchDirected,
    /// Perfect I-cache oracle (not a prefetcher: a hierarchy mode).
    PerfectICache,
}

impl PrefetcherKind {
    /// Instantiates the prefetcher. For [`PrefetcherKind::PerfectICache`]
    /// this is a no-op prefetcher; the caller must also set the hierarchy
    /// mode (done by [`run`]).
    pub fn build(&self) -> Box<dyn InstructionPrefetcher> {
        self.build_bounded(None)
    }

    /// Instantiates the prefetcher with the function's code span, when
    /// known, so Jukebox's replay validator can bounds-check metadata
    /// region pointers against the layout.
    pub fn build_bounded(
        &self,
        bounds: Option<(luke_common::VirtAddr, luke_common::VirtAddr)>,
    ) -> Box<dyn InstructionPrefetcher> {
        let jukebox = |cfg: JukeboxConfig| {
            let mut jb = JukeboxPrefetcher::new(cfg);
            if let Some((lo, hi)) = bounds {
                jb.set_address_bounds(lo, hi);
            }
            jb
        };
        match *self {
            PrefetcherKind::None | PrefetcherKind::PerfectICache => Box::new(NoPrefetcher),
            PrefetcherKind::Jukebox(cfg) => Box::new(jukebox(cfg)),
            PrefetcherKind::NextLine => Box::new(NextLine::default()),
            PrefetcherKind::Pif => Box::new(Pif::paper()),
            PrefetcherKind::PifIdeal => Box::new(Pif::ideal()),
            PrefetcherKind::JukeboxPlusPifIdeal(cfg) => Box::new(Combined::new(vec![
                Box::new(jukebox(cfg)),
                Box::new(Pif::ideal()),
            ])),
            PrefetcherKind::FootprintRestore => Box::new(FootprintRestore::new()),
            PrefetcherKind::FetchDirected => Box::new(FetchDirected::paper()),
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetcherKind::None => "baseline",
            PrefetcherKind::Jukebox(_) => "jukebox",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Pif => "pif",
            PrefetcherKind::PifIdeal => "pif-ideal",
            PrefetcherKind::JukeboxPlusPifIdeal(_) => "jukebox+pif-ideal",
            PrefetcherKind::FootprintRestore => "footprint-restore",
            PrefetcherKind::FetchDirected => "fetch-directed",
            PrefetcherKind::PerfectICache => "perfect-icache",
        }
    }
}

/// Cache-state manipulation applied before each measured invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CacheState {
    /// No manipulation: back-to-back reference execution.
    Reference,
    /// Full microarchitectural flush: the interleaved baseline (§5.2).
    Lukewarm,
    /// Partial decay with the given evicted fractions (Figure 1).
    Decayed {
        /// Fraction of private-cache lines evicted.
        l2: f64,
        /// Fraction of LLC lines evicted.
        llc: f64,
        /// Also flush core state (predictor, BTB).
        flush_core: bool,
    },
    /// Run a stressor on the same core between invocations (§2.3's
    /// `stress-ng` methodology) instead of flushing.
    Stressed {
        /// Instruction lines the stressor touches.
        code_lines: u64,
        /// Data lines the stressor touches.
        data_lines: u64,
    },
}

/// A complete run specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSpec {
    /// State manipulation between invocations.
    pub state: CacheState,
}

impl RunSpec {
    /// Back-to-back reference execution.
    pub fn reference() -> Self {
        RunSpec {
            state: CacheState::Reference,
        }
    }

    /// The interleaved (flush-between) baseline.
    pub fn lukewarm() -> Self {
        RunSpec {
            state: CacheState::Lukewarm,
        }
    }

    /// Partial decay (Figure 1).
    pub fn decayed(l2: f64, llc: f64, flush_core: bool) -> Self {
        RunSpec {
            state: CacheState::Decayed {
                l2,
                llc,
                flush_core,
            },
        }
    }

    /// Stressor interleaving (§2.3): defaults sized past the LLC capacity
    /// (131K lines), as the aggregate working sets of hundreds of
    /// interleaved invocations would be.
    pub fn stressed() -> Self {
        RunSpec {
            state: CacheState::Stressed {
                code_lines: 150_000,
                data_lines: 100_000,
            },
        }
    }
}

/// Aggregated results of the measured invocations of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Measured invocations aggregated.
    pub invocations: u64,
    /// Total cycles across measured invocations.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Summed Top-Down attribution.
    pub topdown: TopDown,
    /// Summed per-invocation memory counter deltas.
    pub mem: HierarchySnapshot,
    /// Summed prefetcher activity.
    pub prefetch: IssueCounters,
    /// Summed branch mispredictions.
    pub mispredicts: u64,
}

impl RunSummary {
    fn add(&mut self, m: &InvocationMetrics) {
        self.invocations += 1;
        self.cycles += m.result.cycles;
        self.instructions += m.result.instructions;
        self.topdown += m.result.topdown;
        self.mispredicts += m.result.stats.mispredicts;
        self.prefetch.issued += m.result.prefetch.issued;
        self.prefetch.redundant += m.result.prefetch.redundant;
        self.prefetch.metadata_written += m.result.prefetch.metadata_written;
        self.prefetch.metadata_read += m.result.prefetch.metadata_read;
        self.mem = sum_snapshots(&self.mem, &m.mem);
    }

    /// Mean cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Per-instruction Top-Down stack.
    pub fn cpi_stack(&self) -> TopDown {
        self.topdown.per_instruction(self.instructions)
    }

    /// L2 instruction MPKI.
    pub fn l2_instr_mpki(&self) -> f64 {
        self.mem.l2.instr_mpki(self.instructions)
    }

    /// L2 data MPKI.
    pub fn l2_data_mpki(&self) -> f64 {
        self.mem.l2.data_mpki(self.instructions)
    }

    /// LLC instruction MPKI.
    pub fn llc_instr_mpki(&self) -> f64 {
        self.mem.llc.instr_mpki(self.instructions)
    }

    /// LLC data MPKI.
    pub fn llc_data_mpki(&self) -> f64 {
        self.mem.llc.data_mpki(self.instructions)
    }

    /// Speedup of this run over `baseline` (cycles-per-work ratio;
    /// instruction counts can differ slightly across measured invocation
    /// sets, so compare CPI), or `None` when either run retired nothing
    /// (a zero-cycle baseline would otherwise yield a silent `inf`/NaN).
    pub fn try_speedup_over(&self, baseline: &RunSummary) -> Option<f64> {
        if self.cpi() == 0.0 || baseline.cpi() == 0.0 {
            None
        } else {
            Some(baseline.cpi() / self.cpi())
        }
    }

    /// Like [`RunSummary::try_speedup_over`], but degrades to NaN on a
    /// degenerate run. NaN propagates into [`luke_common::stats::geomean`],
    /// which filters it out, so one dead sample cannot abort a sweep;
    /// [`run_observed`] additionally surfaces it as the
    /// `run.invalid_samples` counter.
    pub fn speedup_over(&self, baseline: &RunSummary) -> f64 {
        self.try_speedup_over(baseline).unwrap_or(f64::NAN)
    }

    /// Total DRAM bytes moved (all categories).
    pub fn dram_bytes(&self) -> u64 {
        self.mem.traffic.total()
    }
}

fn sum_snapshots(a: &HierarchySnapshot, b: &HierarchySnapshot) -> HierarchySnapshot {
    // Snapshots are counter deltas; summing counter-wise aggregates them.
    // HierarchySnapshot has no Add impl to keep sim-mem lean, so sum here
    // via delta's inverse: build from parts.
    use sim_mem::stats::{CacheStats, ClassCounts, TrafficBytes};
    fn add_class(a: ClassCounts, b: ClassCounts) -> ClassCounts {
        ClassCounts {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
        }
    }
    fn add_cache(a: CacheStats, b: CacheStats) -> CacheStats {
        CacheStats {
            instr: add_class(a.instr, b.instr),
            data: add_class(a.data, b.data),
            prefetch_first_hits: a.prefetch_first_hits + b.prefetch_first_hits,
            prefetch_late_hits: a.prefetch_late_hits + b.prefetch_late_hits,
            prefetch_fills: a.prefetch_fills + b.prefetch_fills,
            instr_fills: a.instr_fills + b.instr_fills,
            data_fills: a.data_fills + b.data_fills,
            prefetch_evicted_unused: a.prefetch_evicted_unused + b.prefetch_evicted_unused,
        }
    }
    HierarchySnapshot {
        l1i: add_cache(a.l1i, b.l1i),
        l1d: add_cache(a.l1d, b.l1d),
        l2: add_cache(a.l2, b.l2),
        llc: add_cache(a.llc, b.llc),
        traffic: TrafficBytes {
            demand_instr: a.traffic.demand_instr + b.traffic.demand_instr,
            demand_data: a.traffic.demand_data + b.traffic.demand_data,
            prefetch: a.traffic.prefetch + b.traffic.prefetch,
            metadata_record: a.traffic.metadata_record + b.traffic.metadata_record,
            metadata_replay: a.traffic.metadata_replay + b.traffic.metadata_replay,
        },
    }
}

/// Runs the full measurement protocol for one (platform, function,
/// prefetcher, state) combination.
pub fn run(
    config: &SystemConfig,
    profile: &FunctionProfile,
    prefetcher: PrefetcherKind,
    spec: RunSpec,
    params: &ExperimentParams,
) -> RunSummary {
    let mut sim = SystemSim::new(*config, profile);
    if prefetcher == PrefetcherKind::PerfectICache {
        sim.set_perfect_icache(true);
    }
    let mut pf = prefetcher.build_bounded(Some(sim.function().layout().address_span()));

    let apply_state = |sim: &mut SystemSim| match spec.state {
        CacheState::Reference => {}
        CacheState::Lukewarm => sim.flush_microarch(),
        CacheState::Decayed {
            l2,
            llc,
            flush_core,
        } => sim.decay(l2, llc, flush_core),
        CacheState::Stressed {
            code_lines,
            data_lines,
        } => sim.run_stressor(code_lines, data_lines),
    };

    // Warm-up: same state manipulation as measurement, so the recorded
    // metadata reflects lukewarm miss behaviour (as it would after the
    // paper's checkpoint warm-up).
    for _ in 0..params.warmup {
        apply_state(&mut sim);
        sim.run_invocation(pf.as_mut());
    }

    let mut summary = RunSummary::default();
    for _ in 0..params.invocations {
        apply_state(&mut sim);
        let m = sim.run_invocation(pf.as_mut());
        summary.add(&m);
    }
    summary
}

/// Result of an observed run: the usual summary plus the full metrics
/// snapshot and (when a trace capacity was given) the last measured
/// invocation's lifecycle events.
#[derive(Clone, Debug)]
pub struct ObsRun {
    /// The aggregate the plain [`run`] would have produced.
    pub summary: RunSummary,
    /// Deterministic metrics snapshot covering the measured invocations.
    pub registry: luke_obs::Snapshot,
    /// Lifecycle events of the last measured invocation (empty when
    /// `trace_capacity` was 0).
    pub events: Vec<luke_obs::Event>,
}

/// The measurement protocol of [`run`] with observability enabled: the
/// per-invocation counters flow into a metrics registry, run-level gauges
/// (CPI, MPKIs) and the prefetcher's internal telemetry are added at the
/// end, and `trace_capacity > 0` additionally captures the last measured
/// invocation's lifecycle event trace.
pub fn run_observed(
    config: &SystemConfig,
    profile: &FunctionProfile,
    prefetcher: PrefetcherKind,
    spec: RunSpec,
    params: &ExperimentParams,
    trace_capacity: usize,
) -> ObsRun {
    let mut sim = SystemSim::new(*config, profile);
    if prefetcher == PrefetcherKind::PerfectICache {
        sim.set_perfect_icache(true);
    }
    let mut pf = prefetcher.build_bounded(Some(sim.function().layout().address_span()));
    sim.enable_obs();
    sim.set_event_capacity(trace_capacity);

    let apply_state = |sim: &mut SystemSim| match spec.state {
        CacheState::Reference => {}
        CacheState::Lukewarm => sim.flush_microarch(),
        CacheState::Decayed {
            l2,
            llc,
            flush_core,
        } => sim.decay(l2, llc, flush_core),
        CacheState::Stressed {
            code_lines,
            data_lines,
        } => sim.run_stressor(code_lines, data_lines),
    };

    // Warm-up runs are not measured: drop their counters and events.
    for _ in 0..params.warmup {
        apply_state(&mut sim);
        sim.run_invocation(pf.as_mut());
    }
    sim.registry_mut().clear();
    sim.take_events();

    let mut summary = RunSummary::default();
    for _ in 0..params.invocations {
        apply_state(&mut sim);
        // Keep only the last measured invocation's trace: a single
        // invocation is what the timeline exporter visualizes.
        sim.take_events();
        let m = sim.run_invocation(pf.as_mut());
        summary.add(&m);
    }
    let events = sim.take_events();

    pf.fill_registry(sim.registry_mut());
    let reg = sim.registry_mut();
    if summary.cpi() == 0.0 {
        reg.counter_inc("run.invalid_samples");
    } else {
        reg.counter_add("run.invalid_samples", 0);
    }
    reg.gauge_set("run.cpi", summary.cpi());
    reg.gauge_set("run.l2_instr_mpki", summary.l2_instr_mpki());
    reg.gauge_set("run.l2_data_mpki", summary.l2_data_mpki());
    reg.gauge_set("run.llc_instr_mpki", summary.llc_instr_mpki());
    reg.gauge_set("run.llc_data_mpki", summary.llc_data_mpki());

    ObsRun {
        summary,
        registry: sim.registry().snapshot(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile(name: &str, params: &ExperimentParams) -> FunctionProfile {
        FunctionProfile::named(name)
            .expect("suite function")
            .scaled(params.scale)
    }

    #[test]
    fn lukewarm_baseline_slower_than_reference() {
        let params = ExperimentParams::quick();
        let p = quick_profile("Fib-G", &params);
        let cfg = SystemConfig::skylake();
        let reference = run(
            &cfg,
            &p,
            PrefetcherKind::None,
            RunSpec::reference(),
            &params,
        );
        let lukewarm = run(&cfg, &p, PrefetcherKind::None, RunSpec::lukewarm(), &params);
        assert!(
            lukewarm.cpi() > reference.cpi() * 1.2,
            "lukewarm {} vs reference {}",
            lukewarm.cpi(),
            reference.cpi()
        );
    }

    #[test]
    fn jukebox_speeds_up_lukewarm_execution() {
        let params = ExperimentParams::quick();
        let p = quick_profile("Auth-G", &params);
        let cfg = SystemConfig::skylake();
        let base = run(&cfg, &p, PrefetcherKind::None, RunSpec::lukewarm(), &params);
        let jb = run(
            &cfg,
            &p,
            PrefetcherKind::Jukebox(cfg.jukebox),
            RunSpec::lukewarm(),
            &params,
        );
        let speedup = jb.speedup_over(&base);
        assert!(speedup > 1.02, "jukebox speedup {speedup}");
        assert!(jb.prefetch.issued > 0);
        assert!(jb.mem.l2.prefetch_first_hits > 0);
    }

    #[test]
    fn perfect_icache_bounds_jukebox() {
        let params = ExperimentParams::quick();
        let p = quick_profile("Auth-G", &params);
        let cfg = SystemConfig::skylake();
        let base = run(&cfg, &p, PrefetcherKind::None, RunSpec::lukewarm(), &params);
        let jb = run(
            &cfg,
            &p,
            PrefetcherKind::Jukebox(cfg.jukebox),
            RunSpec::lukewarm(),
            &params,
        );
        let perfect = run(
            &cfg,
            &p,
            PrefetcherKind::PerfectICache,
            RunSpec::lukewarm(),
            &params,
        );
        assert!(perfect.cpi() < base.cpi());
        assert!(
            perfect.speedup_over(&base) >= jb.speedup_over(&base) * 0.95,
            "perfect {} should be at least jukebox {}",
            perfect.speedup_over(&base),
            jb.speedup_over(&base)
        );
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::Jukebox(JukeboxConfig::paper_default()),
            PrefetcherKind::NextLine,
            PrefetcherKind::Pif,
            PrefetcherKind::PifIdeal,
            PrefetcherKind::JukeboxPlusPifIdeal(JukeboxConfig::paper_default()),
            PrefetcherKind::FootprintRestore,
            PrefetcherKind::FetchDirected,
            PrefetcherKind::PerfectICache,
        ];
        let labels: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn speedup_over_guards_zero_cycle_baseline() {
        let empty = RunSummary::default();
        let real = RunSummary {
            invocations: 1,
            cycles: 100,
            instructions: 50,
            ..RunSummary::default()
        };
        assert_eq!(real.try_speedup_over(&empty), None);
        assert!(real.speedup_over(&empty).is_nan());
        assert_eq!(empty.try_speedup_over(&real), None);
        assert!(empty.speedup_over(&real).is_nan());
        let s = real.try_speedup_over(&real).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observed_run_matches_plain_run_and_fills_registry() {
        let params = ExperimentParams::quick();
        let p = quick_profile("Auth-G", &params);
        let cfg = SystemConfig::skylake();
        let plain = run(
            &cfg,
            &p,
            PrefetcherKind::Jukebox(cfg.jukebox),
            RunSpec::lukewarm(),
            &params,
        );
        let observed = run_observed(
            &cfg,
            &p,
            PrefetcherKind::Jukebox(cfg.jukebox),
            RunSpec::lukewarm(),
            &params,
            4096,
        );
        // Observability must not perturb the simulation itself.
        assert_eq!(plain, observed.summary);
        let reg = &observed.registry;
        assert_eq!(reg.counter("run.invocations"), params.invocations);
        assert_eq!(reg.counter("core.instructions"), plain.instructions);
        assert_eq!(
            reg.counter("mem.l2.instr.misses"),
            plain.mem.l2.instr.misses
        );
        assert_eq!(reg.counter("prefetch.issued"), plain.prefetch.issued);
        assert_eq!(reg.counter("run.invalid_samples"), 0);
        assert!(reg.gauge("run.cpi").unwrap() > 0.0);
        assert_eq!(
            reg.hist("invocation.cycles").unwrap().count(),
            params.invocations
        );
        // Jukebox contributes its replay telemetry.
        assert!(reg.counter("replay.entries") > 0);
        if cfg!(feature = "obs_disabled") {
            assert!(observed.events.is_empty());
        } else {
            use luke_obs::EventKind;
            assert!(observed
                .events
                .iter()
                .any(|e| e.kind == EventKind::Dispatch));
            assert!(observed.events.iter().any(|e| e.kind == EventKind::Retire));
        }
    }

    #[test]
    fn observed_run_is_deterministic() {
        let params = ExperimentParams::quick();
        let p = quick_profile("Fib-G", &params);
        let cfg = SystemConfig::skylake();
        let go = || {
            run_observed(
                &cfg,
                &p,
                PrefetcherKind::None,
                RunSpec::lukewarm(),
                &params,
                0,
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.registry.to_json(), b.registry.to_json());
        assert!(a.events.is_empty(), "capacity 0 traces nothing");
    }

    #[test]
    fn try_new_validates_params() {
        let ok = ExperimentParams::try_new(0.5, 4, 2).expect("valid params");
        assert_eq!(
            ok,
            ExperimentParams {
                scale: 0.5,
                invocations: 4,
                warmup: 2,
            }
        );
        // Warmup-free runs are legitimate (several unit tests use them).
        assert!(ExperimentParams::try_new(1.0, 1, 0).is_ok());

        for bad_scale in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ExperimentParams::try_new(bad_scale, 4, 2).unwrap_err();
            assert!(
                matches!(err, luke_common::SimError::InvalidConfig { ref field, .. } if field == "params.scale"),
                "scale {bad_scale}: {err}"
            );
        }
        // Warmup-only runs measure nothing and must be rejected.
        let err = ExperimentParams::try_new(1.0, 0, 2).unwrap_err();
        assert!(
            matches!(err, luke_common::SimError::InvalidConfig { ref field, .. } if field == "params.invocations"),
            "{err}"
        );
    }

    #[test]
    fn run_summary_aggregates_invocation_counts() {
        let params = ExperimentParams::quick();
        let p = quick_profile("Fib-G", &params);
        let cfg = SystemConfig::skylake();
        let s = run(&cfg, &p, PrefetcherKind::None, RunSpec::lukewarm(), &params);
        assert_eq!(s.invocations, params.invocations);
        assert!(s.instructions > 0);
        assert!(s.cycles > 0);
        assert!(s.l2_instr_mpki() > 0.0);
        assert!(s.dram_bytes() > 0);
    }
}
