//! A multi-instance serverless host: many warm function instances
//! time-sharing **one core and one cache hierarchy**, with interleaving
//! arising naturally from their execution — no artificial flushing.
//!
//! This is the ground truth the paper's simulated baseline approximates:
//! §5.2 *models* a high degree of interleaving by flushing all
//! microarchitectural state between invocations. Here, the other
//! instances' invocations themselves obliterate the state, exactly as on
//! a real host (§2.2). The [`host_interleaving`] experiment uses this to
//! validate the flush model against true interleaving.
//!
//! Per-instance Jukebox state is managed through the OS model
//! ([`jukebox::os::JukeboxRuntime`]), mirroring §3.4.1's `task_struct`
//! bookkeeping: at dispatch, the scheduler hands the instance's metadata
//! registers to the core.
//!
//! [`host_interleaving`]: crate::experiments::host_interleaving

use crate::config::SystemConfig;
use jukebox::os::JukeboxRuntime;
use luke_common::SimError;
use sim_cpu::Core;
use sim_mem::prefetch::NoPrefetcher;
use sim_mem::{MemoryHierarchy, PageTable};
use workloads::{FunctionProfile, SyntheticFunction};

/// Per-instance accumulated statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Invocations served.
    pub invocations: u64,
    /// Total cycles across this instance's invocations.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
}

impl InstanceStats {
    /// Mean cycles per instruction across this instance's invocations,
    /// or `None` if no instructions retired — a 0/0 here used to come
    /// back as `0.0`, which silently skewed downstream geomeans.
    /// Callers that need a sentinel use `.unwrap_or(f64::NAN)`, matching
    /// the `RunSummary::try_speedup_over` convention; such degenerate
    /// samples are surfaced via the `run.invalid_samples` counter in
    /// [`HostSim::fill_registry`].
    pub fn cpi(&self) -> Option<f64> {
        if self.instructions == 0 {
            None
        } else {
            Some(self.cycles as f64 / self.instructions as f64)
        }
    }
}

struct Instance {
    function: SyntheticFunction,
    page_table: PageTable,
    next_invocation: u64,
    stats: InstanceStats,
}

/// The host (see module docs).
pub struct HostSim {
    core: Core,
    mem: MemoryHierarchy,
    instances: Vec<Instance>,
    jukebox: Option<JukeboxRuntime>,
}

impl HostSim {
    /// Creates a host running one warm instance per profile. When
    /// `jukebox_enabled`, every instance is registered with the Jukebox
    /// OS runtime (32KB of metadata each, §3.4.1).
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty. Use [`HostSim::try_new`] to get an
    /// error instead.
    pub fn new(config: SystemConfig, profiles: &[FunctionProfile], jukebox_enabled: bool) -> Self {
        match Self::try_new(config, profiles, jukebox_enabled) {
            Ok(host) => host,
            Err(e) => panic!("host needs at least one instance: {e}"),
        }
    }

    /// Creates a host, returning an error instead of panicking when
    /// `profiles` is empty (matching the `InstancePool::try_new`
    /// pattern; the CLI maps this to its invalid-config exit code).
    pub fn try_new(
        config: SystemConfig,
        profiles: &[FunctionProfile],
        jukebox_enabled: bool,
    ) -> Result<Self, SimError> {
        if profiles.is_empty() {
            return Err(SimError::invalid_config(
                "host.profiles",
                "a host needs at least one warm instance",
            ));
        }
        let instances = profiles
            .iter()
            .enumerate()
            .map(|(pid, p)| Instance {
                function: SyntheticFunction::build(p),
                // Distinct address spaces: each instance is a process.
                page_table: PageTable::new(pid as u64 + 1),
                next_invocation: 0,
                stats: InstanceStats::default(),
            })
            .collect();
        let jukebox = jukebox_enabled.then(|| {
            let mut rt = JukeboxRuntime::new(config.jukebox);
            for pid in 0..profiles.len() as u64 {
                rt.register_instance(pid);
            }
            rt
        });
        Ok(HostSim {
            core: Core::new(config.core),
            mem: MemoryHierarchy::new(config.mem),
            instances,
            jukebox,
        })
    }

    /// Number of warm instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Dispatches one invocation to instance `idx`. All microarchitectural
    /// state is whatever the previously-run invocations left behind —
    /// *that* is the interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn dispatch(&mut self, idx: usize) {
        let instance = &mut self.instances[idx];
        let trace = instance.function.invocation_trace(instance.next_invocation);
        instance.next_invocation += 1;
        let result = match &mut self.jukebox {
            Some(rt) => {
                let prefetcher = rt
                    .dispatch(idx as u64)
                    .expect("registered and enabled instance");
                self.core
                    .run_invocation(trace, &mut self.mem, &mut instance.page_table, prefetcher)
            }
            None => self.core.run_invocation(
                trace,
                &mut self.mem,
                &mut instance.page_table,
                &mut NoPrefetcher,
            ),
        };
        instance.stats.invocations += 1;
        instance.stats.cycles += result.cycles;
        instance.stats.instructions += result.instructions;
    }

    /// Dispatches a whole schedule of instance indices in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn run_schedule(&mut self, schedule: &[usize]) {
        for &idx in schedule {
            self.dispatch(idx);
        }
    }

    /// Statistics of instance `idx`.
    pub fn stats(&self, idx: usize) -> &InstanceStats {
        &self.instances[idx].stats
    }

    /// Statistics of all instances.
    pub fn all_stats(&self) -> Vec<InstanceStats> {
        self.instances.iter().map(|i| i.stats.clone()).collect()
    }

    /// Resets per-instance statistics (e.g. after a warm-up phase) without
    /// touching any microarchitectural or metadata state.
    pub fn reset_stats(&mut self) {
        for i in &mut self.instances {
            i.stats = InstanceStats::default();
        }
    }

    /// Total metadata bytes currently held by the Jukebox runtime.
    pub fn jukebox_metadata_bytes(&self) -> u64 {
        self.jukebox
            .as_ref()
            .map_or(0, |rt| rt.metadata_bytes_total())
    }

    /// Contributes host telemetry to `registry`: instance and
    /// invocation counts under `host.*`, plus one `run.invalid_samples`
    /// tick per instance whose statistics cannot yield a CPI (zero
    /// retired instructions) — the same counter `runner::run_observed`
    /// uses for degenerate run summaries.
    pub fn fill_registry(&self, registry: &mut luke_obs::Registry) {
        registry.gauge_set("host.instances", self.instances.len() as f64);
        let mut invocations = 0u64;
        let mut invalid = 0u64;
        for i in &self.instances {
            invocations += i.stats.invocations;
            if i.stats.cpi().is_none() {
                invalid += 1;
            }
        }
        registry.counter_add("host.invocations", invocations);
        registry.counter_add("run.invalid_samples", invalid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::paper_suite;

    fn profiles(n: usize, scale: f64) -> Vec<FunctionProfile> {
        paper_suite()
            .into_iter()
            .take(n)
            .map(|p| p.scaled(scale))
            .collect()
    }

    /// A round-robin schedule of `rounds` passes over `n` instances.
    fn round_robin(n: usize, rounds: usize) -> Vec<usize> {
        (0..rounds).flat_map(|_| 0..n).collect()
    }

    #[test]
    fn interleaving_degrades_a_co_run_instance() {
        // Combined co-run footprints must exceed the 1MB L2 for the
        // interleaving to bite; 6 instances at 0.45 scale span ≈1.3MB.
        let scale = 0.45;
        // Solo: instance 0 runs back-to-back.
        let mut solo = HostSim::new(SystemConfig::skylake(), &profiles(1, scale), false);
        solo.run_schedule(&[0, 0]);
        solo.reset_stats();
        solo.run_schedule(&[0]);
        let solo_cpi = solo.stats(0).cpi().expect("instance retired instructions");

        // Co-run: five other instances interleave between its invocations.
        let mut host = HostSim::new(SystemConfig::skylake(), &profiles(6, scale), false);
        host.run_schedule(&round_robin(6, 2));
        host.reset_stats();
        host.run_schedule(&round_robin(6, 1));
        let co_cpi = host.stats(0).cpi().expect("instance retired instructions");

        assert!(
            co_cpi > solo_cpi * 1.1,
            "interleaving should degrade CPI: solo {solo_cpi:.2} vs co-run {co_cpi:.2}"
        );
    }

    #[test]
    fn jukebox_recovers_co_run_performance() {
        let scale = 0.45;
        let p = profiles(6, scale);
        let schedule: Vec<usize> = round_robin(6, 2);

        let mut base = HostSim::new(SystemConfig::skylake(), &p, false);
        base.run_schedule(&schedule);
        base.reset_stats();
        base.run_schedule(&round_robin(6, 1));

        let mut jb = HostSim::new(SystemConfig::skylake(), &p, true);
        jb.run_schedule(&schedule);
        jb.reset_stats();
        jb.run_schedule(&round_robin(6, 1));

        let base_cpi: f64 = base.all_stats().iter().filter_map(InstanceStats::cpi).sum();
        let jb_cpi: f64 = jb.all_stats().iter().filter_map(InstanceStats::cpi).sum();
        assert!(
            jb_cpi < base_cpi * 0.99,
            "jukebox should help under true interleaving: {jb_cpi:.2} vs {base_cpi:.2}"
        );
        assert!(jb.jukebox_metadata_bytes() > 0);
    }

    #[test]
    fn stats_track_invocations() {
        let mut host = HostSim::new(SystemConfig::skylake(), &profiles(2, 0.02), false);
        host.run_schedule(&[0, 1, 0]);
        assert_eq!(host.stats(0).invocations, 2);
        assert_eq!(host.stats(1).invocations, 1);
        assert_eq!(host.instance_count(), 2);
        host.reset_stats();
        assert_eq!(host.stats(0).invocations, 0);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_host_rejected() {
        HostSim::new(SystemConfig::skylake(), &[], false);
    }

    #[test]
    fn try_new_reports_empty_profiles_without_panicking() {
        let err = match HostSim::try_new(SystemConfig::skylake(), &[], false) {
            Err(e) => e,
            Ok(_) => panic!("empty profile list must be rejected"),
        };
        assert!(format!("{err}").contains("host.profiles"));
        assert_eq!(err.exit_code(), 3, "invalid config maps to exit 3");
        assert!(HostSim::try_new(SystemConfig::skylake(), &profiles(1, 0.02), false).is_ok());
    }

    #[test]
    fn zero_instruction_stats_have_no_cpi() {
        let fresh = InstanceStats::default();
        assert_eq!(fresh.cpi(), None);
        let real = InstanceStats {
            invocations: 1,
            cycles: 300,
            instructions: 200,
        };
        assert_eq!(real.cpi(), Some(1.5));
    }

    #[test]
    fn fill_registry_counts_idle_instances_as_invalid_samples() {
        let mut host = HostSim::new(SystemConfig::skylake(), &profiles(3, 0.02), false);
        host.run_schedule(&[0, 1]); // instance 2 never runs
        let mut reg = luke_obs::Registry::new();
        host.fill_registry(&mut reg);
        assert_eq!(reg.counter("run.invalid_samples"), 1);
        assert_eq!(reg.counter("host.invocations"), 2);
        assert_eq!(reg.gauge("host.instances"), Some(3.0));
    }
}
