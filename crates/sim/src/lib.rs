//! Full-system simulation of lukewarm serverless functions — the glue that
//! reproduces every experiment in the paper.
//!
//! * [`config`] — [`SystemConfig`] presets for the two platforms: the
//!   Skylake-like evaluation machine (Table 1) and the Broadwell-like
//!   characterization machine (§4.1/§5.6);
//! * [`system`] — [`SystemSim`]: one core + memory hierarchy + page
//!   table + synthetic function, with the paper's state-manipulation
//!   knobs (full flush for the interleaved baseline, partial decay for
//!   the Figure 1 IAT sweep, perfect-I-cache oracle);
//! * [`runner`] — measurement protocol: warm-up invocations (which record
//!   Jukebox metadata, mirroring the paper's post-checkpoint setup) then
//!   measured invocations, aggregated into a [`runner::RunSummary`];
//! * [`experiments`] — one module per paper figure/table, each returning
//!   typed rows and rendering the same series the paper reports;
//! * [`engine`] — the shared experiment engine: the experiment registry,
//!   a deterministic parallel cell executor, and a memoized cell cache
//!   shared across experiments (see `docs/ENGINE.md`).
//!
//! # Examples
//!
//! ```
//! use lukewarm_sim::{ExperimentParams, PrefetcherKind, SystemConfig};
//! use lukewarm_sim::runner::{run, CacheState, RunSpec};
//! use workloads::FunctionProfile;
//!
//! let params = ExperimentParams::quick();
//! let profile = FunctionProfile::named("Auth-G").unwrap().scaled(params.scale);
//! let base = run(
//!     &SystemConfig::skylake(),
//!     &profile,
//!     PrefetcherKind::None,
//!     RunSpec::lukewarm(),
//!     &params,
//! );
//! assert!(base.cpi() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod experiments;
pub mod host;
pub mod runner;
pub mod system;

pub use config::SystemConfig;
pub use engine::Engine;
pub use runner::{ExperimentParams, PrefetcherKind};
pub use system::SystemSim;
