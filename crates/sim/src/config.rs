//! Full-system configuration presets.

use jukebox::JukeboxConfig;
use luke_common::SimError;
use sim_cpu::CoreConfig;
use sim_mem::HierarchyConfig;

/// A complete platform configuration: core, memory system and the Jukebox
/// parameters appropriate for it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Platform name ("skylake" / "broadwell").
    pub name: &'static str,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Cache/TLB/DRAM parameters.
    pub mem: HierarchyConfig,
    /// Jukebox parameters tuned for this platform (§5.6: the small
    /// Broadwell L2 needs 32KB of metadata).
    pub jukebox: JukeboxConfig,
}

impl SystemConfig {
    /// The Skylake-like evaluation platform of Table 1.
    pub fn skylake() -> Self {
        SystemConfig {
            name: "skylake",
            core: CoreConfig::skylake_like(),
            mem: HierarchyConfig::skylake_like(),
            jukebox: JukeboxConfig::paper_default(),
        }
    }

    /// The Broadwell-like characterization platform (§4.1, §5.6).
    pub fn broadwell() -> Self {
        SystemConfig {
            name: "broadwell",
            core: CoreConfig::broadwell_like(),
            mem: HierarchyConfig::broadwell_like(),
            jukebox: JukeboxConfig::broadwell(),
        }
    }

    /// Validates every layer of the configuration — core, memory
    /// hierarchy, Jukebox — returning the first violation. The CLI calls
    /// this before running anything, so a zero-way cache or an empty CRRB
    /// becomes a one-line error and a nonzero exit rather than a panic.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.core.freq_ghz > 0.0 && self.core.freq_ghz.is_finite()) {
            return Err(SimError::invalid_config(
                "core.freq_ghz",
                format!("must be positive and finite, got {}", self.core.freq_ghz),
            ));
        }
        if self.core.issue_width == 0 {
            return Err(SimError::invalid_config(
                "core.issue_width",
                "must be at least 1",
            ));
        }
        if self.core.rob_entries == 0 {
            return Err(SimError::invalid_config(
                "core.rob_entries",
                "must be at least 1",
            ));
        }
        if self.core.fetch_bytes_per_cycle == 0 {
            return Err(SimError::invalid_config(
                "core.fetch_bytes_per_cycle",
                "must be at least 1",
            ));
        }
        self.mem.validate()?;
        self.jukebox.try_validate()?;
        Ok(())
    }

    /// Renders the Table 1-style parameter listing.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("Platform: {}\n", self.name));
        s.push_str(&format!(
            "Core: {}-wide, {} GHz, ROB {}, fetch {}B/cycle, mispredict penalty {}\n",
            self.core.issue_width,
            self.core.freq_ghz,
            self.core.rob_entries,
            self.core.fetch_bytes_per_cycle,
            self.core.mispredict_penalty,
        ));
        s.push_str(&format!(
            "BP: gshare 2^{} + bimodal 2^{}, BTB 2^{} entries, RAS {}\n",
            self.core.gshare_bits, self.core.bimodal_bits, self.core.btb_bits, self.core.ras_depth,
        ));
        s.push_str(&format!("L1-I: {}\n", self.mem.l1i));
        s.push_str(&format!("L1-D: {}\n", self.mem.l1d));
        s.push_str(&format!("L2:   {}\n", self.mem.l2));
        s.push_str(&format!("LLC:  {}\n", self.mem.llc));
        s.push_str(&format!(
            "DRAM: {} cycles latency, {} cycles/line channel occupancy\n",
            self.mem.dram.latency, self.mem.dram.cycles_per_line,
        ));
        s.push_str(&format!(
            "Jukebox: CRRB {} entries, region {}B, metadata {} per direction\n",
            self.jukebox.crrb_entries, self.jukebox.region_bytes, self.jukebox.metadata_capacity,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use luke_common::size::ByteSize;

    #[test]
    fn presets_differ_in_l2_and_metadata() {
        let sky = SystemConfig::skylake();
        let bdw = SystemConfig::broadwell();
        assert_eq!(sky.mem.l2.capacity, ByteSize::mib(1));
        assert_eq!(bdw.mem.l2.capacity, ByteSize::kib(256));
        assert_eq!(sky.jukebox.metadata_capacity, ByteSize::kib(16));
        assert_eq!(bdw.jukebox.metadata_capacity, ByteSize::kib(32));
    }

    #[test]
    fn presets_validate_clean() {
        assert!(SystemConfig::skylake().validate().is_ok());
        assert!(SystemConfig::broadwell().validate().is_ok());
    }

    #[test]
    fn validate_surfaces_violations_in_any_layer() {
        let mut c = SystemConfig::skylake();
        c.core.freq_ghz = 0.0;
        assert!(format!("{}", c.validate().unwrap_err()).contains("core.freq_ghz"));

        let mut c = SystemConfig::skylake();
        c.mem.llc.ways = 0;
        assert!(format!("{}", c.validate().unwrap_err()).contains("llc.cache.ways"));

        let mut c = SystemConfig::skylake();
        c.mem.l2.mshrs = 0;
        assert!(format!("{}", c.validate().unwrap_err()).contains("l2.cache.mshrs"));

        let mut c = SystemConfig::skylake();
        c.jukebox.crrb_entries = 0;
        assert!(format!("{}", c.validate().unwrap_err()).contains("jukebox.crrb_entries"));
    }

    #[test]
    fn describe_contains_key_parameters() {
        let s = SystemConfig::skylake().describe();
        assert!(s.contains("skylake"));
        assert!(s.contains("1MB"));
        assert!(s.contains("CRRB 16"));
    }
}
