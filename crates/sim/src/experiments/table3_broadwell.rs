//! **Table 3 / §5.6** — Jukebox on the Broadwell-like CPU.
//!
//! Compares the reduction in L2 and LLC instruction MPKI with Jukebox on
//! both platforms, plus the Broadwell geomean speedup. Paper shape:
//! Jukebox eliminates the vast majority of LLC instruction misses on both
//! platforms (−86% Skylake, −91% Broadwell), but struggles with L2 misses
//! on Broadwell (−15% vs −74%) because the small 256KB L2 evicts
//! prefetches before use — hence the smaller 12% geomean speedup there.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::geomean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// Aggregate results for one platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlatformResult {
    /// Relative change of L2 instruction MPKI with Jukebox (negative =
    /// reduction).
    pub l2_instr_delta: f64,
    /// Relative change of LLC instruction MPKI with Jukebox.
    pub llc_instr_delta: f64,
    /// Geomean Jukebox speedup on this platform.
    pub speedup_geomean: f64,
}

/// The complete Table 3 dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Data {
    /// Skylake-like platform.
    pub skylake: PlatformResult,
    /// Broadwell-like platform.
    pub broadwell: PlatformResult,
}

/// Cell grid: (baseline, Jukebox) × suite on both platforms — the Skylake
/// half is identical to fig11/fig12's grid.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let mut cells = super::fig11_coverage::baseline_jukebox_plan(&SystemConfig::skylake(), params);
    cells.extend(super::fig11_coverage::baseline_jukebox_plan(
        &SystemConfig::broadwell(),
        params,
    ));
    cells
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "table3"
    }
    fn description(&self) -> &'static str {
        "Instruction-MPKI reduction and speedup with Jukebox on both platforms"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

fn measure_platform(
    engine: &Engine,
    config: &SystemConfig,
    params: &ExperimentParams,
) -> PlatformResult {
    let mut base_l2 = 0.0;
    let mut base_llc = 0.0;
    let mut jb_l2 = 0.0;
    let mut jb_llc = 0.0;
    let mut speedups = Vec::new();
    for p in paper_suite() {
        let profile = p.scaled(params.scale);
        let baseline = engine.run(
            config,
            &profile,
            PrefetcherKind::None,
            RunSpec::lukewarm(),
            params,
        );
        let jukebox = engine.run(
            config,
            &profile,
            PrefetcherKind::Jukebox(config.jukebox),
            RunSpec::lukewarm(),
            params,
        );
        base_l2 += baseline.l2_instr_mpki();
        base_llc += baseline.llc_instr_mpki();
        jb_l2 += jukebox.l2_instr_mpki();
        jb_llc += jukebox.llc_instr_mpki();
        speedups.push(jukebox.speedup_over(&baseline));
    }
    PlatformResult {
        l2_instr_delta: jb_l2 / base_l2.max(f64::MIN_POSITIVE) - 1.0,
        llc_instr_delta: jb_llc / base_llc.max(f64::MIN_POSITIVE) - 1.0,
        speedup_geomean: geomean(&speedups),
    }
}

/// Runs Table 3 on both platforms (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs Table 3 through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    Data {
        skylake: measure_platform(engine, &SystemConfig::skylake(), params),
        broadwell: measure_platform(engine, &SystemConfig::broadwell(), params),
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: instruction-MPKI reduction and speedup with Jukebox"
        )?;
        let mut t = TextTable::new(&["platform", "L2 instr misses", "LLC instr misses", "speedup"]);
        for (name, r) in [("Skylake", &self.skylake), ("Broadwell", &self.broadwell)] {
            t.row(&[
                name.to_string(),
                format!("{:+.0}%", r.l2_instr_delta * 100.0),
                format!("{:+.0}%", r.llc_instr_delta * 100.0),
                format!("{:+.1}%", (r.speedup_geomean - 1.0) * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut ds = luke_obs::Dataset::new(
            "table3.platforms",
            &["platform", "L2 instr misses", "LLC instr misses", "speedup"],
        );
        for (name, r) in [("Skylake", &self.skylake), ("Broadwell", &self.broadwell)] {
            ds.push_row(vec![
                name.into(),
                r.l2_instr_delta.into(),
                r.llc_instr_delta.into(),
                r.speedup_geomean.into(),
            ]);
        }
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    /// Single-function platform comparison (the suite-wide version runs
    /// in the bench harness).
    fn compare_one(name: &str) -> (f64, f64, f64, f64) {
        let params = ExperimentParams::quick();
        let engine = Engine::single();
        let measure = |config: &SystemConfig| {
            let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
            let baseline = engine.run(
                config,
                &profile,
                PrefetcherKind::None,
                RunSpec::lukewarm(),
                &params,
            );
            let jukebox = engine.run(
                config,
                &profile,
                PrefetcherKind::Jukebox(config.jukebox),
                RunSpec::lukewarm(),
                &params,
            );
            (
                jukebox.llc_instr_mpki() / baseline.llc_instr_mpki().max(f64::MIN_POSITIVE),
                jukebox.speedup_over(&baseline),
            )
        };
        let (sky_llc, sky_sp) = measure(&SystemConfig::skylake());
        let (bdw_llc, bdw_sp) = measure(&SystemConfig::broadwell());
        (sky_llc, sky_sp, bdw_llc, bdw_sp)
    }

    #[test]
    fn jukebox_eliminates_most_llc_instruction_misses() {
        let (sky_llc, _, bdw_llc, _) = compare_one("Auth-G");
        assert!(sky_llc < 0.6, "Skylake LLC ratio {sky_llc}");
        assert!(bdw_llc < 0.7, "Broadwell LLC ratio {bdw_llc}");
    }

    #[test]
    fn speedup_positive_on_both_platforms() {
        let (_, sky_sp, _, bdw_sp) = compare_one("Auth-G");
        assert!(sky_sp > 1.0, "Skylake speedup {sky_sp}");
        assert!(bdw_sp > 1.0, "Broadwell speedup {bdw_sp}");
    }

    #[test]
    fn render_has_both_platforms() {
        let data = Data {
            skylake: PlatformResult {
                l2_instr_delta: -0.74,
                llc_instr_delta: -0.86,
                speedup_geomean: 1.187,
            },
            broadwell: PlatformResult {
                l2_instr_delta: -0.15,
                llc_instr_delta: -0.91,
                speedup_geomean: 1.12,
            },
        };
        let s = data.to_string();
        assert!(s.contains("Skylake") && s.contains("Broadwell"));
        assert!(s.contains("-86%"));
    }
}
