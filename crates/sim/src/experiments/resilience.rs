//! **Resilience** — workflow latency distributions under seeded fault
//! injection.
//!
//! The paper's SLO framing (workflows must finish within a few tens of
//! milliseconds) assumes every stage completes on its first attempt. Real
//! fleets are less polite: instances crash mid-invocation, requests time
//! out, spawns fail, and warm instances are evicted under memory pressure.
//! This experiment measures the five-stage paper workflows end-to-end
//! while a deterministic [`FaultPlan`] injects those events at a swept
//! rate, with the platform's [`RetryPolicy`] retrying bounded times.
//!
//! Per-stage fault-free service times come from the cycle-accurate
//! simulator (the same measurement [`workflow_slo`] makes) for three
//! configurations: warm (reference), lukewarm (interleaved baseline) and
//! lukewarm with Jukebox — the latter with replay validation active, so a
//! degraded (record-only) Jukebox is what a corrupt-metadata fleet would
//! run. Each swept rate then replays the same seeded fault pattern against
//! all three, making every comparison paired: a rate point differs across
//! configurations only through the service times the faults act on.
//!
//! Reported per (rate, configuration): P50/P99 end-to-end latency over
//! completed requests and SLO attainment (fraction of requests that
//! completed within [`SLO_MS`]; requests abandoned by the retry policy
//! count as misses).

use crate::engine::{Cell, Engine};
use crate::experiments::workflow_slo::{self, WorkflowResult};
use crate::runner::ExperimentParams;
use luke_common::stats::percentile;
use luke_common::table::TextTable;
use server::{AttemptCosts, FaultPlan, FaultRates, FaultStats, RetryPolicy};
use std::fmt;
use workloads::workflow::Workflow;

/// Cold-start (instance spawn) overhead charged when a stage has no live
/// instance, in milliseconds — the order of a container start.
pub const COLD_START_MS: f64 = 100.0;

/// Per-attempt deadline after which the platform kills a stage attempt.
pub const TIMEOUT_MS: f64 = 250.0;

/// End-to-end SLO target: "a few tens of milliseconds" (paper §1).
pub const SLO_MS: f64 = 25.0;

/// Swept per-kind fault rates (first point is fault-free).
pub const DEFAULT_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.15];

/// Seed for the fault plan. Fixed, so rate points share their underlying
/// uniform draws: raising the rate strictly grows the set of struck
/// opportunities.
const SEED: u64 = 0x6C75_6B65; // "luke"

/// Latency distribution of one configuration at one fault rate.
#[derive(Clone, Debug, PartialEq)]
pub struct ModeOutcome {
    /// Configuration label ("warm" / "lukewarm" / "lukewarm+JB").
    pub mode: &'static str,
    /// Median end-to-end latency over completed requests, ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency over completed requests, ms.
    pub p99_ms: f64,
    /// Fraction of requests completing within [`SLO_MS`].
    pub slo_attainment: f64,
    /// What the plan injected and how the retry layer responded.
    pub faults: FaultStats,
}

/// All three configurations at one fault rate.
#[derive(Clone, Debug, PartialEq)]
pub struct RatePoint {
    /// Per-kind fault rate.
    pub rate: f64,
    /// Outcomes in warm / lukewarm / lukewarm+JB order.
    pub modes: Vec<ModeOutcome>,
}

/// The resilience sweep for one workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowResilience {
    /// Workflow name.
    pub workflow: String,
    /// Fault-free per-stage latency (the simulator measurement).
    pub latency: WorkflowResult,
    /// Requests simulated per rate point.
    pub requests: u64,
    /// One point per swept rate.
    pub points: Vec<RatePoint>,
}

/// The complete study.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One sweep per workflow.
    pub workflows: Vec<WorkflowResilience>,
}

/// Registry entry: see [`crate::engine::registry`]. The fault sweep
/// itself is pool-level; its cycle-accurate input is the workflow stage
/// latencies, so the plan is exactly [`workflow_slo::plan`]'s grid — the
/// two experiments share every cached cell.
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "resilience"
    }
    fn description(&self) -> &'static str {
        "Workflow latency distributions under seeded fault injection"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        workflow_slo::plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Runs the study on both paper workflows.
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the study on both paper workflows through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let workflows = Workflow::paper_workflows()
        .iter()
        .map(|w| run_workflow_resilience_with(engine, w, params))
        .collect();
    Data { workflows }
}

/// Measures one workflow's stage latencies, then sweeps fault rates.
pub fn run_workflow_resilience(
    workflow: &Workflow,
    params: &ExperimentParams,
) -> WorkflowResilience {
    run_workflow_resilience_with(&Engine::single(), workflow, params)
}

/// Like [`run_workflow_resilience`], but the stage-latency measurement
/// goes through a shared engine.
pub fn run_workflow_resilience_with(
    engine: &Engine,
    workflow: &Workflow,
    params: &ExperimentParams,
) -> WorkflowResilience {
    let latency = workflow_slo::run_workflow_with(engine, workflow, params);
    let stage_ms = |f: fn(&workflow_slo::StageLatency) -> f64| -> Vec<f64> {
        latency.stages.iter().map(|s| f(s) / 1000.0).collect()
    };
    let requests = requests_for(params);
    let points = sweep(
        &stage_ms(|s| s.warm_us),
        &stage_ms(|s| s.lukewarm_us),
        &stage_ms(|s| s.jukebox_us),
        &DEFAULT_RATES,
        requests,
        &RetryPolicy::default(),
    );
    WorkflowResilience {
        workflow: workflow.name.clone(),
        latency,
        requests,
        points,
    }
}

/// Requests per rate point: enough for a stable P99 even at quick scale.
fn requests_for(params: &ExperimentParams) -> u64 {
    (params.invocations * 150).max(600)
}

/// Sweeps fault rates over three sets of per-stage service times (ms).
/// Every rate point replays the same seeded fault pattern against all
/// three, so comparisons across configurations are paired.
pub fn sweep(
    warm_ms: &[f64],
    lukewarm_ms: &[f64],
    jukebox_ms: &[f64],
    rates: &[f64],
    requests: u64,
    policy: &RetryPolicy,
) -> Vec<RatePoint> {
    rates
        .iter()
        .map(|&rate| {
            let plan = if rate == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::new(SEED, FaultRates::uniform(rate)).expect("swept rate in [0, 1]")
            };
            RatePoint {
                rate,
                modes: vec![
                    simulate_mode("warm", warm_ms, &plan, policy, requests),
                    simulate_mode("lukewarm", lukewarm_ms, &plan, policy, requests),
                    simulate_mode("lukewarm+JB", jukebox_ms, &plan, policy, requests),
                ],
            }
        })
        .collect()
}

/// Pushes `requests` five-stage requests through the fault plan with the
/// given per-stage service times.
fn simulate_mode(
    mode: &'static str,
    stage_ms: &[f64],
    plan: &FaultPlan,
    policy: &RetryPolicy,
    requests: u64,
) -> ModeOutcome {
    let stages = stage_ms.len() as u64;
    let mut stats = FaultStats::default();
    let mut latencies = Vec::with_capacity(requests as usize);
    let mut met = 0u64;
    for req in 0..requests {
        let mut total_ms = 0.0;
        let mut completed = true;
        for (si, &service_ms) in stage_ms.iter().enumerate() {
            let costs = AttemptCosts {
                service_ms,
                cold_start_ms: COLD_START_MS,
                timeout_ms: TIMEOUT_MS,
                starts_cold: false,
            };
            // Each (request, stage) is its own fault-plan invocation, so
            // stages draw independent fault streams.
            let invocation = req * stages + si as u64;
            let r = plan.run_invocation(policy, invocation, &costs, &mut stats);
            total_ms += r.latency_ms;
            if !r.completed {
                completed = false;
                break;
            }
        }
        if completed {
            latencies.push(total_ms);
            if total_ms <= SLO_MS {
                met += 1;
            }
        }
    }
    ModeOutcome {
        mode,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        slo_attainment: met as f64 / requests.max(1) as f64,
        faults: stats,
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in &self.workflows {
            writeln!(
                f,
                "Workflow {}: end-to-end latency under fault injection \
                 (SLO {SLO_MS} ms, {} requests/rate, retry {} attempts)",
                w.workflow,
                w.requests,
                RetryPolicy::default().max_attempts,
            )?;
            let mut t = TextTable::new(&[
                "rate", "config", "P50 ms", "P99 ms", "SLO %", "faults", "retries", "abandoned",
            ]);
            for p in &w.points {
                for m in &p.modes {
                    t.row(&[
                        format!("{:.2}", p.rate),
                        m.mode.to_string(),
                        format!("{:.2}", m.p50_ms),
                        format!("{:.2}", m.p99_ms),
                        format!("{:.1}", m.slo_attainment * 100.0),
                        format!("{}", m.faults.total_faults()),
                        format!("{}", m.faults.retries),
                        format!("{}", m.faults.abandoned),
                    ]);
                }
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut sweep = luke_obs::Dataset::new(
            "resilience.sweep",
            &[
                "workflow",
                "rate",
                "config",
                "P50 ms",
                "P99 ms",
                "SLO %",
                "faults",
                "retries",
                "abandoned",
                "crashes",
                "timeouts",
                "cold start failures",
                "evictions",
                "completed",
            ],
        );
        let mut replay = luke_obs::Dataset::new(
            "resilience.replay_telemetry",
            &["workflow", "requests", "replay aborts", "dropped prefetches"],
        );
        for w in &self.workflows {
            for p in &w.points {
                for m in &p.modes {
                    sweep.push_row(vec![
                        w.workflow.clone().into(),
                        p.rate.into(),
                        m.mode.into(),
                        m.p50_ms.into(),
                        m.p99_ms.into(),
                        (m.slo_attainment * 100.0).into(),
                        m.faults.total_faults().into(),
                        m.faults.retries.into(),
                        m.faults.abandoned.into(),
                        m.faults.crashes.into(),
                        m.faults.timeouts.into(),
                        m.faults.cold_start_failures.into(),
                        m.faults.evictions.into(),
                        m.faults.completed.into(),
                    ]);
                }
            }
            replay.push_row(vec![
                w.workflow.clone().into(),
                w.requests.into(),
                w.latency.replay_aborts.into(),
                w.latency.dropped_prefetches.into(),
            ]);
        }
        vec![sweep, replay]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic per-stage service times (ms): lukewarm 2× warm, Jukebox
    /// recovering most of the gap — the qualitative shape the simulator
    /// produces, without paying for it in every unit test.
    fn synthetic() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let warm = vec![0.4, 0.6, 0.5, 0.3, 0.7];
        let lukewarm: Vec<f64> = warm.iter().map(|w| w * 2.0).collect();
        let jukebox: Vec<f64> = warm.iter().map(|w| w * 1.2).collect();
        (warm, lukewarm, jukebox)
    }

    fn synthetic_sweep() -> Vec<RatePoint> {
        let (warm, lukewarm, jukebox) = synthetic();
        sweep(
            &warm,
            &lukewarm,
            &jukebox,
            &DEFAULT_RATES,
            800,
            &RetryPolicy::default(),
        )
    }

    #[test]
    fn fault_free_point_is_degenerate_and_meets_slo() {
        let points = synthetic_sweep();
        let p0 = &points[0];
        assert_eq!(p0.rate, 0.0);
        for m in &p0.modes {
            // No faults: every request is identical, so P50 == P99.
            assert_eq!(m.p50_ms, m.p99_ms, "{}", m.mode);
            assert_eq!(m.slo_attainment, 1.0, "{}", m.mode);
            assert_eq!(m.faults.total_faults(), 0, "{}", m.mode);
        }
        // Fault-free latency is the plain sum of stage times.
        let (warm, ..) = synthetic();
        let e2e: f64 = warm.iter().sum();
        assert!((p0.modes[0].p50_ms - e2e).abs() < 1e-9);
    }

    #[test]
    fn faults_degrade_attainment_and_stretch_the_tail() {
        let points = synthetic_sweep();
        let (first, last) = (&points[0], &points[points.len() - 1]);
        for (clean, faulty) in first.modes.iter().zip(&last.modes) {
            assert!(faulty.faults.total_faults() > 0, "{}", faulty.mode);
            assert!(
                faulty.slo_attainment < clean.slo_attainment,
                "{}: {} !< {}",
                faulty.mode,
                faulty.slo_attainment,
                clean.slo_attainment
            );
            assert!(faulty.p99_ms > clean.p99_ms * 2.0, "{}", faulty.mode);
        }
    }

    #[test]
    fn warm_dominates_lukewarm_at_every_rate() {
        // Same seeded fault pattern, smaller service times: warm latency
        // is pointwise ≤ lukewarm, so its percentiles are too.
        for p in synthetic_sweep() {
            let (warm, lukewarm) = (&p.modes[0], &p.modes[1]);
            assert!(warm.p50_ms <= lukewarm.p50_ms, "rate {}", p.rate);
            assert!(warm.p99_ms <= lukewarm.p99_ms, "rate {}", p.rate);
            assert!(
                warm.slo_attainment >= lukewarm.slo_attainment,
                "rate {}",
                p.rate
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(synthetic_sweep(), synthetic_sweep());
    }

    #[test]
    fn experiment_runs_at_quick_scale() {
        let w = run_workflow_resilience(&Workflow::hotel_reservation(), &ExperimentParams::quick());
        assert_eq!(w.latency.stages.len(), 5);
        assert!(w.points.len() >= 3, "at least three swept rates");
        assert!(w.points.iter().any(|p| p.rate == 0.0));
        assert!(w.points.iter().any(|p| p.rate > 0.0));
        // Jukebox recovers latency at the fault-free point: it sits
        // between warm and lukewarm.
        let p0 = &w.points[0];
        let (warm, lukewarm, jukebox) = (&p0.modes[0], &p0.modes[1], &p0.modes[2]);
        assert!(jukebox.p50_ms < lukewarm.p50_ms);
        assert!(jukebox.p50_ms > warm.p50_ms * 0.99);
        // Render shape.
        let data = Data {
            workflows: vec![w],
        };
        let s = data.to_string();
        assert!(s.contains("SLO"));
        assert!(s.contains("lukewarm+JB"));
        assert!(s.contains("hotel-reservation"));
    }
}
