//! **Workflow end-to-end latency** — the SLO framing of the paper's
//! introduction, measured on the two serverless workflows in the suite.
//!
//! Interactive services must meet end-to-end SLOs of a few tens of
//! milliseconds \[20\], which is why individual functions are expected to
//! complete in about a millisecond \[25, 45, 54\]. A request to the Hotel
//! Reservation or Online Boutique application traverses five functions in
//! sequence; every stage's lukewarm penalty lands on the critical path.
//! This experiment measures per-stage and end-to-end latency (cycles →
//! wall-clock at the platform frequency) for warm, lukewarm and
//! lukewarm+Jukebox execution.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{run_observed, ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::table::TextTable;
use std::fmt;
use workloads::workflow::Workflow;

/// Latency of one workflow stage under the three configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct StageLatency {
    /// Stage function name.
    pub function: String,
    /// Mean warm (reference) invocation latency in microseconds.
    pub warm_us: f64,
    /// Mean lukewarm invocation latency in microseconds.
    pub lukewarm_us: f64,
    /// Mean lukewarm latency with Jukebox, in microseconds.
    pub jukebox_us: f64,
}

/// End-to-end results for one workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowResult {
    /// Workflow name.
    pub workflow: String,
    /// Per-stage latencies.
    pub stages: Vec<StageLatency>,
    /// Replay validation aborts observed across the Jukebox stage
    /// measurements (corrupt metadata degrades Jukebox to record-only).
    pub replay_aborts: u64,
    /// Prefetches dropped by replay validation across the Jukebox stage
    /// measurements.
    pub dropped_prefetches: u64,
}

impl WorkflowResult {
    /// End-to-end latency (sum of stages) for (warm, lukewarm, jukebox),
    /// in microseconds.
    pub fn end_to_end_us(&self) -> (f64, f64, f64) {
        let sum = |f: fn(&StageLatency) -> f64| self.stages.iter().map(f).sum();
        (
            sum(|s| s.warm_us),
            sum(|s| s.lukewarm_us),
            sum(|s| s.jukebox_us),
        )
    }

    /// Fraction of the lukewarm end-to-end *slowdown* that Jukebox
    /// removes.
    pub fn recovered_fraction(&self) -> f64 {
        let (warm, lukewarm, jukebox) = self.end_to_end_us();
        if lukewarm <= warm {
            return 0.0;
        }
        (lukewarm - jukebox) / (lukewarm - warm)
    }
}

/// The complete workflow study.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One result per workflow.
    pub workflows: Vec<WorkflowResult>,
}

/// Cell grid: the warm (reference) and lukewarm baseline points of every
/// stage of both workflows. The Jukebox stage runs observed — its
/// replay-validation telemetry is part of the result — so it stays
/// outside the cell cache.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    Workflow::paper_workflows()
        .into_iter()
        .flat_map(|w| w.scaled(params.scale).stages)
        .flat_map(|profile| {
            [RunSpec::reference(), RunSpec::lukewarm()]
                .into_iter()
                .map(move |spec| Cell::new(&config, &profile, PrefetcherKind::None, spec, params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "workflows"
    }
    fn description(&self) -> &'static str {
        "End-to-end workflow latency: warm vs lukewarm vs lukewarm+Jukebox"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Runs the study on both paper workflows.
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the study on both paper workflows through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let workflows = Workflow::paper_workflows()
        .into_iter()
        .map(|w| run_workflow_with(engine, &w, params))
        .collect();
    Data { workflows }
}

/// Measures one workflow.
pub fn run_workflow(workflow: &Workflow, params: &ExperimentParams) -> WorkflowResult {
    run_workflow_with(&Engine::single(), workflow, params)
}

/// Measures one workflow through a shared engine.
pub fn run_workflow_with(
    engine: &Engine,
    workflow: &Workflow,
    params: &ExperimentParams,
) -> WorkflowResult {
    let config = SystemConfig::skylake();
    let cycles_to_us = 1.0 / (config.core.freq_ghz * 1000.0);
    let mut replay_aborts = 0u64;
    let mut dropped_prefetches = 0u64;
    let stages = workflow
        .scaled(params.scale)
        .stages
        .iter()
        .map(|profile| {
            let mean_us = |kind: PrefetcherKind, spec: RunSpec| {
                let s = engine.run(&config, profile, kind, spec, params);
                s.cycles as f64 / s.invocations.max(1) as f64 * cycles_to_us
            };
            // The Jukebox configuration runs observed (event tracing off)
            // so its replay-validation telemetry lands in the result; the
            // observed summary is identical to a plain run's.
            let obs = run_observed(
                &config,
                profile,
                PrefetcherKind::Jukebox(config.jukebox),
                RunSpec::lukewarm(),
                params,
                0,
            );
            replay_aborts += obs.registry.counter("replay.aborts");
            dropped_prefetches += obs.registry.counter("replay.dropped_prefetches");
            StageLatency {
                function: profile.name.clone(),
                warm_us: mean_us(PrefetcherKind::None, RunSpec::reference()),
                lukewarm_us: mean_us(PrefetcherKind::None, RunSpec::lukewarm()),
                jukebox_us: obs.summary.cycles as f64
                    / obs.summary.invocations.max(1) as f64
                    * cycles_to_us,
            }
        })
        .collect();
    WorkflowResult {
        workflow: workflow.name.clone(),
        stages,
        replay_aborts,
        dropped_prefetches,
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in &self.workflows {
            writeln!(f, "Workflow {}: per-stage latency (µs)", w.workflow)?;
            let mut t = TextTable::new(&["stage", "warm", "lukewarm", "lukewarm+JB"]);
            for s in &w.stages {
                t.row(&[
                    s.function.clone(),
                    format!("{:.0}", s.warm_us),
                    format!("{:.0}", s.lukewarm_us),
                    format!("{:.0}", s.jukebox_us),
                ]);
            }
            let (warm, lukewarm, jukebox) = w.end_to_end_us();
            t.row(&[
                "END-TO-END".to_string(),
                format!("{warm:.0}"),
                format!("{lukewarm:.0}"),
                format!("{jukebox:.0}"),
            ]);
            writeln!(f, "{t}")?;
            writeln!(
                f,
                "Jukebox recovers {:.0}% of the end-to-end lukewarm slowdown\n",
                w.recovered_fraction() * 100.0
            )?;
        }
        Ok(())
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut stages = luke_obs::Dataset::new(
            "workflow_slo.stages",
            &["workflow", "stage", "warm", "lukewarm", "lukewarm+JB"],
        );
        let mut summary = luke_obs::Dataset::new(
            "workflow_slo.summary",
            &[
                "workflow",
                "warm end-to-end us",
                "lukewarm end-to-end us",
                "jukebox end-to-end us",
                "recovered fraction",
                "replay aborts",
                "dropped prefetches",
            ],
        );
        for w in &self.workflows {
            for s in &w.stages {
                stages.push_row(vec![
                    w.workflow.clone().into(),
                    s.function.clone().into(),
                    s.warm_us.into(),
                    s.lukewarm_us.into(),
                    s.jukebox_us.into(),
                ]);
            }
            let (warm, lukewarm, jukebox) = w.end_to_end_us();
            stages.push_row(vec![
                w.workflow.clone().into(),
                "END-TO-END".into(),
                warm.into(),
                lukewarm.into(),
                jukebox.into(),
            ]);
            summary.push_row(vec![
                w.workflow.clone().into(),
                warm.into(),
                lukewarm.into(),
                jukebox.into(),
                w.recovered_fraction().into(),
                w.replay_aborts.into(),
                w.dropped_prefetches.into(),
            ]);
        }
        vec![stages, summary]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> WorkflowResult {
        run_workflow(&Workflow::hotel_reservation(), &ExperimentParams::quick())
    }

    #[test]
    fn lukewarm_penalty_accumulates_across_stages() {
        let r = result();
        let (warm, lukewarm, _) = r.end_to_end_us();
        assert_eq!(r.stages.len(), 5);
        assert!(
            lukewarm > warm * 1.3,
            "end-to-end lukewarm {lukewarm} vs warm {warm}"
        );
    }

    #[test]
    fn jukebox_recovers_substantial_slowdown() {
        let r = result();
        let recovered = r.recovered_fraction();
        assert!(
            (0.2..=1.0).contains(&recovered),
            "recovered fraction {recovered}"
        );
        let (_, lukewarm, jukebox) = r.end_to_end_us();
        assert!(jukebox < lukewarm);
    }

    #[test]
    fn every_stage_reports_positive_latency() {
        let r = result();
        for s in &r.stages {
            assert!(s.warm_us > 0.0 && s.lukewarm_us > 0.0 && s.jukebox_us > 0.0);
            assert!(s.lukewarm_us > s.warm_us, "{}", s.function);
        }
    }

    #[test]
    fn render_has_end_to_end_row() {
        let data = Data {
            workflows: vec![result()],
        };
        let s = data.to_string();
        assert!(s.contains("END-TO-END"));
        assert!(s.contains("hotel-reservation"));
    }
}
