//! **Cold-start spectrum (beyond the paper)** — what a cold start costs
//! under each restore strategy, and how much of it snapshots win back.
//!
//! The paper's lukewarm analysis takes the cold/warm split as given;
//! this experiment prices the cold side. The same keep-alive-driven
//! traffic is charged four ways: a full container boot (the fleet's flat
//! `cold_start_ms`), a snapshot restore with demand paging (one fault
//! per working-set page), a REAP-style restore that records the page
//! working set once and bulk-prefetches it afterwards, and REAP combined
//! with Jukebox replay on the warm side — the two record-and-replay
//! mechanisms stacked, one for the data plane and one for the
//! instruction plane.
//!
//! A corruption axis stress-tests the validate-or-degrade discipline:
//! before a fraction of REAP restores, the recorded metadata is tampered
//! with (a bit-flip on the snapshot medium), which must degrade that
//! restore to lazy paging, bump `snapshot.replay_aborts`, and re-record
//! — never panic, never prefetch a bogus page.
//!
//! This is a pool-level simulation (no cycle-accurate timing); working
//! sets are always paper-scale (`workloads::paper_suite`), so the REAP
//! recovery fraction is meaningful at every `--scale`.

use crate::engine::{Cell, Engine};
use crate::runner::ExperimentParams;
use luke_common::rng::DetRng;
use luke_common::table::TextTable;
use luke_fleet::ServiceModel;
use luke_snapshot::{ColdStartModel, SnapshotStore, SnapshotTimings};
use server::{IatDistribution, InstancePool, TrafficGenerator};
use std::fmt;

/// Seed-space tag for the metadata-corruption draw stream.
const CORRUPT_STREAM: u64 = 0x636F_7272; // "corr"

/// Flat full-boot cost charged by the `cold-boot` variant, ms — the
/// fleet's default `cold_start_ms`.
pub const COLD_BOOT_MS: f64 = 125.0;

/// Keep-alive windows swept, minutes: short, provider-typical, long.
pub const KEEP_ALIVE_MINUTES: [f64; 3] = [5.0, 15.0, 60.0];

/// Metadata-corruption probabilities applied per REAP restore.
pub const CORRUPTION_RATES: [f64; 3] = [0.0, 0.1, 0.3];

/// Results for one (keep-alive window, corruption rate) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Row {
    /// Keep-alive window in minutes.
    pub keep_alive_min: f64,
    /// Probability each REAP restore finds its metadata corrupted.
    pub corruption_rate: f64,
    /// Fraction of invocations that started cold.
    pub cold_rate: f64,
    /// Mean end-to-end latency with the flat full-boot cost, ms.
    pub cold_boot_latency_ms: f64,
    /// Mean end-to-end latency with lazily-paged restores, ms.
    pub lazy_latency_ms: f64,
    /// Mean end-to-end latency with REAP prefetch restores, ms.
    pub reap_latency_ms: f64,
    /// Mean end-to-end latency with REAP restores *and* Jukebox-priced
    /// warm invocations, ms.
    pub reap_jukebox_latency_ms: f64,
    /// Mean lazy restore cost per cold start, ms.
    pub lazy_restore_ms: f64,
    /// Mean REAP restore cost per cold start, ms (record passes and
    /// degraded restores included).
    pub reap_restore_ms: f64,
    /// Fraction of the lazy-paging restore cost a *replayed* (prefetch)
    /// restore wins back: `1 − replay/lazy`. Record and degraded passes
    /// are excluded — they pay lazy cost by construction, and show up in
    /// [`Row::reap_restore_ms`] and [`Row::replay_aborts`] instead.
    pub reap_recovery: f64,
    /// REAP restores that failed validation and degraded to lazy paging.
    pub replay_aborts: u64,
    /// Pages bulk-prefetched by the REAP store.
    pub pages_prefetched: u64,
    /// Pages demand-faulted by the REAP store.
    pub pages_faulted: u64,
}

/// The complete cold-start spectrum sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per (keep-alive window, corruption rate).
    pub rows: Vec<Row>,
    /// Number of deployed functions in the population.
    pub functions: usize,
    /// Invocations simulated per cell.
    pub invocations: usize,
}

/// Registry entry: see [`crate::engine::registry`]. The pool-level
/// simulation has no cycle-accurate runner cells, so the plan is empty
/// and the run ignores the engine.
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "cold-spectrum"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["cold_spectrum"]
    }
    fn description(&self) -> &'static str {
        "Cold-start spectrum: full boot vs lazy restore vs REAP prefetch vs REAP+Jukebox"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, _params: &ExperimentParams) -> Vec<Cell> {
        Vec::new()
    }
    fn run(
        &self,
        _engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        run_experiment(params).map(|d| Box::new(d) as Box<dyn crate::engine::ExperimentData>)
    }
}

/// Builds a heavy-tailed population of invocation rates (log-uniform
/// mean IAT, 30 seconds to 2 days) — rare enough that every keep-alive
/// window sees real cold-start traffic.
fn population(functions: usize, seed: u64) -> Vec<IatDistribution> {
    let mut rng = DetRng::new(seed);
    (0..functions)
        .map(|_| {
            let log_lo = (30_000.0f64).ln();
            let log_hi = (2.0 * 24.0 * 3600.0 * 1000.0f64).ln();
            let mean_ms = (log_lo + rng.unit() * (log_hi - log_lo)).exp();
            IatDistribution::Exponential { mean_ms }
        })
        .collect()
}

/// Runs the sweep. `params.scale` scales the population and event count;
/// the working sets stay paper-scale regardless (restore cost is
/// closed-form, so large pages are free).
///
/// # Errors
///
/// Propagates `ServiceModel`/`SnapshotStore` construction errors (the
/// paper suite and default timings always validate).
pub fn run_experiment(params: &ExperimentParams) -> Result<Data, luke_common::SimError> {
    let functions = ((150.0 * params.scale) as usize).max(20);
    let invocations = ((30_000.0 * params.scale) as usize).max(2_000);
    let suite = workloads::paper_suite();
    let model = ServiceModel::analytic(&suite)?;
    let distributions = population(functions, 0xC01D);
    let timings = SnapshotTimings::default();

    let mut rows = Vec::new();
    for &minutes in &KEEP_ALIVE_MINUTES {
        for &corruption_rate in &CORRUPTION_RATES {
            rows.push(run_cell(
                minutes,
                corruption_rate,
                functions,
                invocations,
                &distributions,
                &model,
                timings,
            )?);
        }
    }
    Ok(Data {
        rows,
        functions,
        invocations,
    })
}

/// Simulates one (window, corruption) cell: a single pass over the
/// traffic, pricing every invocation under all four variants at once so
/// the cold/warm split is identical across them.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    minutes: f64,
    corruption_rate: f64,
    functions: usize,
    invocations: usize,
    distributions: &[IatDistribution],
    model: &ServiceModel,
    timings: SnapshotTimings,
) -> Result<Row, luke_common::SimError> {
    let mut pool = InstancePool::try_new(minutes * 60_000.0)?;
    let mut traffic = TrafficGenerator::new(distributions, 7);
    let mut lazy_store =
        SnapshotStore::for_profiles(ColdStartModel::LazyPaging, timings, &workloads::paper_suite())?;
    let mut reap_store = SnapshotStore::for_profiles(
        ColdStartModel::ReapPrefetch,
        timings,
        &workloads::paper_suite(),
    )?;
    let mut corrupt_rng = DetRng::new(0xC01D)
        .split(CORRUPT_STREAM)
        .split((minutes * 1000.0) as u64)
        .split((corruption_rate * 1000.0) as u64);

    let mut live: Vec<Option<u64>> = vec![None; functions];
    let mut fn_invocations: Vec<u64> = vec![0; functions];
    let mut cold_starts = 0usize;
    // Latency sums per variant: cold-boot, lazy, reap, reap+jukebox.
    let mut sums = [0.0f64; 4];
    let mut lazy_restore_sum = 0.0;
    let mut reap_restore_sum = 0.0;
    // Replayed (prefetch) restores only — the steady-state REAP cost.
    let mut replay_sum = 0.0;
    let mut replays = 0usize;

    for (processed, event) in traffic.take_events(invocations).into_iter().enumerate() {
        let at = event.at_ms;
        let function = event.instance;
        let profile = function % model.functions();
        pool.sweep(at);
        if let Some(id) = live[function] {
            if pool.instance(id).is_none() {
                live[function] = None;
            }
        }
        match live[function] {
            Some(id) => {
                let gap_ms = pool.invoke(id, at).expect("live instance");
                let elapsed_sec = at / 1000.0;
                let other_per_sec = if elapsed_sec > 0.0 {
                    let host_rate = processed as f64 / elapsed_sec;
                    let own_rate = fn_invocations[function] as f64 / elapsed_sec;
                    (host_rate - own_rate).max(0.0)
                } else {
                    0.0
                };
                let degree = model.degree(other_per_sec, gap_ms);
                let plain = model.service_ms(profile, degree, false);
                let jukebox = model.service_ms(profile, degree, true);
                sums[0] += plain;
                sums[1] += plain;
                sums[2] += plain;
                sums[3] += jukebox;
            }
            None => {
                let id = pool.spawn(function, at);
                pool.invoke(id, at);
                live[function] = Some(id);
                cold_starts += 1;
                let service = model.service_ms(profile, 1.0, false);
                let lazy_ms = lazy_store.restore_ms(function);
                // A crash mid-write or a bit-flip on the snapshot medium
                // corrupts the record this restore would replay.
                if corruption_rate > 0.0 && corrupt_rng.chance(corruption_rate) {
                    reap_store.tamper(function);
                }
                let recorded_before = reap_store.stats().pages_recorded;
                let reap_ms = reap_store.restore_ms(function);
                if reap_store.stats().pages_recorded == recorded_before {
                    // No fresh record means this restore replayed one.
                    replay_sum += reap_ms;
                    replays += 1;
                }
                lazy_restore_sum += lazy_ms;
                reap_restore_sum += reap_ms;
                sums[0] += service + COLD_BOOT_MS;
                sums[1] += service + lazy_ms;
                sums[2] += service + reap_ms;
                sums[3] += service + reap_ms;
            }
        }
        fn_invocations[function] += 1;
    }

    let n = invocations as f64;
    let cold = cold_starts.max(1) as f64;
    let lazy_restore_ms = lazy_restore_sum / cold;
    let reap_restore_ms = reap_restore_sum / cold;
    let stats = reap_store.stats();
    Ok(Row {
        keep_alive_min: minutes,
        corruption_rate,
        cold_rate: cold_starts as f64 / n,
        cold_boot_latency_ms: sums[0] / n,
        lazy_latency_ms: sums[1] / n,
        reap_latency_ms: sums[2] / n,
        reap_jukebox_latency_ms: sums[3] / n,
        lazy_restore_ms,
        reap_restore_ms,
        reap_recovery: if replays > 0 && lazy_restore_ms > 0.0 {
            1.0 - (replay_sum / replays as f64) / lazy_restore_ms
        } else {
            0.0
        },
        replay_aborts: stats.replay_aborts,
        pages_prefetched: stats.pages_prefetched,
        pages_faulted: stats.pages_faulted,
    })
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = SnapshotTimings::default();
        writeln!(
            f,
            "Cold-start spectrum: {} functions, {} invocations per cell \
             (boot {COLD_BOOT_MS:.0}ms; restore base {:.0}µs, fault {:.0}µs/page, \
             prefetch {:.0}µs + {:.1}µs/page)",
            self.functions,
            self.invocations,
            t.base_restore_us,
            t.page_fault_us,
            t.prefetch_batch_us,
            t.prefetch_page_us
        )?;
        let mut t = TextTable::new(&[
            "keep-alive",
            "corrupt",
            "cold rate",
            "boot",
            "lazy",
            "reap",
            "reap+jb",
            "recovery",
            "aborts",
        ]);
        for r in &self.rows {
            t.row(&[
                format!("{:.0} min", r.keep_alive_min),
                format!("{:.0}%", r.corruption_rate * 100.0),
                format!("{:.1}%", r.cold_rate * 100.0),
                format!("{:.2} ms", r.cold_boot_latency_ms),
                format!("{:.2} ms", r.lazy_latency_ms),
                format!("{:.2} ms", r.reap_latency_ms),
                format!("{:.2} ms", r.reap_jukebox_latency_ms),
                format!("{:.0}%", r.reap_recovery * 100.0),
                format!("{}", r.replay_aborts),
            ]);
        }
        writeln!(
            f,
            "{t}REAP turns the per-page fault storm into one batched read; corruption \
             degrades single restores to lazy paging (never a panic), and Jukebox \
             stacks on the warm side."
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut sweep = luke_obs::Dataset::new(
            "cold_spectrum.sweep",
            &[
                "keep-alive min",
                "corruption rate",
                "cold rate",
                "cold-boot ms",
                "lazy ms",
                "reap ms",
                "reap+jukebox ms",
            ],
        );
        let mut restore = luke_obs::Dataset::new(
            "cold_spectrum.restore",
            &[
                "keep-alive min",
                "corruption rate",
                "lazy restore ms",
                "reap restore ms",
                "reap recovery",
                "replay aborts",
                "pages prefetched",
                "pages faulted",
            ],
        );
        for r in &self.rows {
            sweep.push_row(vec![
                r.keep_alive_min.into(),
                r.corruption_rate.into(),
                r.cold_rate.into(),
                r.cold_boot_latency_ms.into(),
                r.lazy_latency_ms.into(),
                r.reap_latency_ms.into(),
                r.reap_jukebox_latency_ms.into(),
            ]);
            restore.push_row(vec![
                r.keep_alive_min.into(),
                r.corruption_rate.into(),
                r.lazy_restore_ms.into(),
                r.reap_restore_ms.into(),
                r.reap_recovery.into(),
                r.replay_aborts.into(),
                r.pages_prefetched.into(),
                r.pages_faulted.into(),
            ]);
        }
        vec![sweep, restore]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use luke_obs::Export;

    fn data() -> Data {
        run_experiment(&ExperimentParams {
            scale: 0.25,
            invocations: 1,
            warmup: 0,
        })
        .expect("paper suite and default timings validate")
    }

    #[test]
    fn reap_recovers_at_least_half_the_lazy_penalty_without_corruption() {
        let d = data();
        for r in d.rows.iter().filter(|r| r.corruption_rate == 0.0) {
            assert!(
                r.reap_recovery >= 0.5,
                "recovery {:.2} at {} min",
                r.reap_recovery,
                r.keep_alive_min
            );
            assert_eq!(r.replay_aborts, 0, "no corruption, no aborts");
        }
    }

    #[test]
    fn restore_strategies_order_as_designed() {
        // Per cell: REAP ≤ lazy on both the restore cost and the
        // end-to-end mean, and Jukebox only improves on REAP.
        let d = data();
        for r in &d.rows {
            assert!(r.cold_rate > 0.0, "cells must see cold traffic");
            assert!(
                r.reap_restore_ms <= r.lazy_restore_ms + 1e-9,
                "{r:?}"
            );
            assert!(r.reap_latency_ms <= r.lazy_latency_ms + 1e-9, "{r:?}");
            assert!(
                r.reap_jukebox_latency_ms <= r.reap_latency_ms + 1e-9,
                "{r:?}"
            );
        }
    }

    #[test]
    fn corruption_costs_recovery_and_counts_aborts() {
        let d = data();
        for window in KEEP_ALIVE_MINUTES {
            let cell = |rate: f64| {
                *d.rows
                    .iter()
                    .find(|r| r.keep_alive_min == window && r.corruption_rate == rate)
                    .expect("cell exists")
            };
            let clean = cell(0.0);
            let noisy = cell(0.3);
            assert!(
                noisy.replay_aborts > 0,
                "30% corruption must draw aborts at {window} min"
            );
            assert!(
                noisy.reap_restore_ms >= clean.reap_restore_ms,
                "degraded restores cost more: {noisy:?} vs {clean:?}"
            );
        }
    }

    #[test]
    fn export_and_render_cover_every_cell() {
        let d = data();
        assert_eq!(
            d.rows.len(),
            KEEP_ALIVE_MINUTES.len() * CORRUPTION_RATES.len()
        );
        let datasets = d.datasets();
        assert_eq!(datasets.len(), 2);
        assert_eq!(datasets[0].name, "cold_spectrum.sweep");
        assert_eq!(datasets[1].name, "cold_spectrum.restore");
        let s = d.to_string();
        for m in KEEP_ALIVE_MINUTES {
            assert!(s.contains(&format!("{m:.0} min")), "{s}");
        }
    }
}
