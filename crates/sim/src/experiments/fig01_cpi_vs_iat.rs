//! **Figure 1** — effect of request inter-arrival time on CPI.
//!
//! Two representative functions (an authentication function in Python and
//! AES in NodeJS — deliberately different languages, §2.2) run on a
//! high-occupancy host. For each fixed IAT, the interleaving between
//! consecutive invocations of the function-under-test partially decays
//! the cache hierarchy (see [`server::InterleaveModel`]); CPI is reported
//! normalized to back-to-back execution (IAT = 0). The paper's curves
//! rise from 100% and saturate around 250–270% past one-second IATs.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{CacheState, ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::table::TextTable;
use luke_obs::{Dataset, Export, Value};
use server::InterleaveModel;
use std::fmt;
use workloads::FunctionProfile;

/// The IAT sweep points in milliseconds (the paper's log-scale axis:
/// 0, 10, 100, 1000, 10000).
pub const IATS_MS: [f64; 5] = [0.0, 10.0, 100.0, 1000.0, 10_000.0];

/// The two functions-under-test.
pub const FUNCTIONS: [&str; 2] = ["Auth-P", "AES-N"];

/// One measured curve.
#[derive(Clone, Debug, PartialEq)]
pub struct Curve {
    /// Function name.
    pub function: String,
    /// `(iat_ms, normalized_cpi)` points; normalized to the IAT = 0 point.
    pub points: Vec<(f64, f64)>,
}

/// The complete Figure 1 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One curve per function-under-test.
    pub curves: Vec<Curve>,
}

/// The `(iat_ms, RunSpec)` sweep points: IAT 0 is back-to-back reference
/// execution; longer gaps partially decay the hierarchy according to the
/// high-occupancy interleave model. Shared by [`plan`] and [`run_with`] so
/// the plan always matches what the fold requests.
fn iat_specs(config: &SystemConfig) -> Vec<(f64, RunSpec)> {
    let model = InterleaveModel::high_occupancy();
    let l2_lines = config.mem.l2.lines();
    let llc_lines = config.mem.llc.lines();
    IATS_MS
        .iter()
        .map(|&iat| {
            let spec = if iat == 0.0 {
                RunSpec::reference()
            } else {
                let l2 = model.decay_fraction(l2_lines, iat);
                let llc = model.llc_decay_fraction(llc_lines, iat);
                RunSpec {
                    state: CacheState::Decayed {
                        l2,
                        llc,
                        flush_core: l2 > 0.5,
                    },
                }
            };
            (iat, spec)
        })
        .collect()
}

/// Cell grid: one decay point per (function, IAT).
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::broadwell();
    FUNCTIONS
        .iter()
        .flat_map(|name| {
            let profile = FunctionProfile::named(name)
                .expect("figure 1 function in suite")
                .scaled(params.scale);
            iat_specs(&config)
                .into_iter()
                .map(move |(_, spec)| {
                    Cell::new(&config, &profile, PrefetcherKind::None, spec, params)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig01"
    }
    fn description(&self) -> &'static str {
        "Normalized CPI vs invocation inter-arrival time (Broadwell)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Runs the Figure 1 experiment (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the Figure 1 experiment through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::broadwell(); // characterization platform
    let curves = FUNCTIONS
        .iter()
        .map(|name| {
            let profile = FunctionProfile::named(name)
                .expect("figure 1 function in suite")
                .scaled(params.scale);
            let mut points = Vec::new();
            let mut base_cpi = None;
            for (iat, spec) in iat_specs(&config) {
                let summary = engine.run(&config, &profile, PrefetcherKind::None, spec, params);
                let cpi = summary.cpi();
                let base = *base_cpi.get_or_insert(cpi);
                points.push((iat, cpi / base));
            }
            Curve {
                function: name.to_string(),
                points,
            }
        })
        .collect();
    Data { curves }
}

impl Data {
    /// Normalized CPI of `function` at the largest IAT (the saturated
    /// right end of the curve).
    pub fn saturated_cpi(&self, function: &str) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.function == function)
            .and_then(|c| c.points.last())
            .map(|&(_, cpi)| cpi)
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: normalized CPI vs invocation inter-arrival time"
        )?;
        let mut header = vec!["IAT [ms]".to_string()];
        header.extend(self.curves.iter().map(|c| c.function.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = TextTable::new(&header_refs);
        for (i, &(iat, _)) in self.curves[0].points.iter().enumerate() {
            let mut row = vec![format!("{iat:.0}")];
            for c in &self.curves {
                row.push(format!("{:.0}%", c.points[i].1 * 100.0));
            }
            table.row(&row);
        }
        write!(f, "{table}")
    }
}

impl Export for Data {
    fn datasets(&self) -> Vec<Dataset> {
        let mut columns = vec!["IAT [ms]".to_string()];
        columns.extend(self.curves.iter().map(|c| c.function.clone()));
        let mut ds = Dataset {
            name: "fig01.normalized_cpi".to_string(),
            columns,
            rows: Vec::new(),
        };
        if let Some(first) = self.curves.first() {
            for (i, &(iat, _)) in first.points.iter().enumerate() {
                let mut row: Vec<Value> = vec![iat.into()];
                for c in &self.curves {
                    row.push(c.points[i].1.into());
                }
                ds.push_row(row);
            }
        }
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_grows_with_iat_and_saturates() {
        let data = run_experiment(&ExperimentParams::quick());
        assert_eq!(data.curves.len(), 2);
        for curve in &data.curves {
            assert_eq!(curve.points.len(), IATS_MS.len());
            // Starts at 1.0 by construction.
            assert!((curve.points[0].1 - 1.0).abs() < 1e-9);
            // Non-trivially degraded at the saturated end.
            let last = curve.points.last().unwrap().1;
            assert!(last > 1.2, "{}: saturated at {last}", curve.function);
            // Monotone within tolerance (stochastic workloads jitter).
            for pair in curve.points.windows(2) {
                assert!(
                    pair[1].1 > pair[0].1 * 0.93,
                    "{}: CPI should not materially decrease with IAT ({:?})",
                    curve.function,
                    curve.points
                );
            }
        }
    }

    #[test]
    fn render_contains_every_iat() {
        let data = run_experiment(&ExperimentParams::quick());
        let s = data.to_string();
        for iat in IATS_MS {
            assert!(s.contains(&format!("{iat:.0}")), "missing {iat} in\n{s}");
        }
        assert!(data.saturated_cpi("Auth-P").is_some());
        assert!(data.saturated_cpi("nope").is_none());
    }
}
