//! **Tenancy sweep** — cross-function page sharing and multi-tenant
//! contention, per routing policy.
//!
//! Co-resident instances of the same language runtime duplicate most of
//! their memory: the interpreter or runtime core and the shared
//! libraries are byte-identical across functions, and only the heap is
//! truly private. `luke-tenancy` models that with a content-addressed
//! shared-page store per host — registrations dedup against resident
//! pages, REAP restores skip what is already mapped, and the pool's
//! memory bill charges each instance only the fraction of its footprint
//! the host actually materialized. Sharing has a price, though: the
//! more working sets a host packs, the more they fight over the same
//! memory system, modeled as a continuous pressure-to-slowdown curve.
//!
//! This experiment sweeps tenancy variants (off, dedup only, dedup with
//! contention) against routing policies (least-loaded, keep-alive-aware,
//! placement-aware) under the REAP cold-start model and identical Zipf
//! traffic. The headline claims: dedup cuts both memory-instance-seconds
//! and the mean restore bill at no latency cost; contention buys back
//! some of that as a real co-residency-vs-P99 trade-off; and the
//! placement-aware policy — which chases shared-page affinity while
//! fleeing contention pressure — sits on the frontier of that trade-off
//! rather than inside it.
//!
//! Service times are calibrated from the cycle-accurate core exactly as
//! in [`fleet_scale`] (same cells, so a shared engine simulates them
//! once).

use crate::engine::{Cell, Engine};
use crate::experiments::fleet_scale;
use crate::runner::ExperimentParams;
use luke_common::table::TextTable;
use luke_common::SimError;
use luke_fleet::{
    run_fleet, ColdStartModel, ContentionConfig, FleetConfig, FleetRun, RoutingPolicy,
    TenancyConfig,
};
use std::fmt;

/// Fleet size — small enough that the 9-point grid stays test-speed.
const HOSTS: usize = 4;
/// Invocations per host per point.
const INVOCATIONS_PER_HOST: usize = 2_000;
/// Logical functions sharing the fleet — enough co-residency per host
/// that same-language instances actually overlap.
const POPULATION: usize = 40;
/// Per-host memory capacity for the contention variant, bytes. Sized so
/// the swept population's working sets genuinely crowd it (pressure
/// crosses the curve's knee) without saturating the slowdown cap.
const CONTENTION_CAPACITY_BYTES: u64 = 4 << 20;

/// Routing policies swept.
pub const POLICIES: [RoutingPolicy; 3] = [
    RoutingPolicy::LeastLoaded,
    RoutingPolicy::KeepAliveAware,
    RoutingPolicy::PlacementAware,
];

/// Tenancy variant labels, in sweep order.
pub const VARIANTS: [&str; 3] = ["off", "dedup", "dedup+contention"];

/// The tenancy configuration behind each variant label.
fn variant_config(variant: &str) -> TenancyConfig {
    match variant {
        "dedup" => TenancyConfig::dedup_enabled(),
        "dedup+contention" => TenancyConfig {
            contention: ContentionConfig {
                capacity_bytes: CONTENTION_CAPACITY_BYTES,
                ..ContentionConfig::default_enabled()
            },
            ..TenancyConfig::default_enabled()
        },
        _ => TenancyConfig::disabled(),
    }
}

/// One sweep point: a routing policy under one tenancy variant.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Routing policy label.
    pub policy: &'static str,
    /// Tenancy variant label.
    pub variant: &'static str,
    /// Total instance-seconds of (dedup-weighted) pool residency.
    pub memory_instance_s: f64,
    /// Fraction of invocations with no warm instance.
    pub cold_start_rate: f64,
    /// Mean end-to-end latency, ms.
    pub mean_ms: f64,
    /// Tail latency, ms.
    pub p99_ms: f64,
    /// Shared-page hit rate over all shareable registrations.
    pub hit_rate: f64,
    /// Memory dedup avoided materializing, MiB.
    pub dedup_mib_saved: f64,
    /// Invocations slowed by contention pressure.
    pub slowed: u64,
    /// Latency contention pressure added fleet-wide, ms.
    pub contention_extra_ms: f64,
}

/// The full sweep: policies × tenancy variants.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per (policy, variant) point, variants inner.
    pub rows: Vec<Row>,
}

/// Cell grid: the same calibration runs as the fleet sweep, so a shared
/// engine simulates them once for both experiments.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    fleet_scale::plan(params)
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "tenancy"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["tenancy-sweep", "multi-tenancy", "page-sharing"]
    }
    fn description(&self) -> &'static str {
        "Shared-page dedup and contention pressure across routing policies"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(try_run_experiment_with(engine, params)?))
    }
}

/// One sweep point's fleet configuration. Every point uses the REAP
/// prefetch model so restore pricing can actually discount resident
/// pages.
fn fleet_config(policy: RoutingPolicy, variant: &str) -> FleetConfig {
    FleetConfig {
        hosts: HOSTS,
        invocations: HOSTS * INVOCATIONS_PER_HOST,
        population: POPULATION,
        policy,
        cold_start_model: ColdStartModel::ReapPrefetch,
        tenancy: variant_config(variant),
        ..FleetConfig::default()
    }
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics on invalid configuration; see [`try_run_experiment`].
pub fn run_experiment(params: &ExperimentParams) -> Data {
    match try_run_experiment(params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_experiment`] for callers that map
/// [`SimError`] to exit codes (the CLI).
pub fn try_run_experiment(params: &ExperimentParams) -> Result<Data, SimError> {
    try_run_experiment_with(&Engine::single(), params)
}

/// Fallible run whose calibration goes through a shared engine.
pub fn try_run_experiment_with(
    engine: &Engine,
    params: &ExperimentParams,
) -> Result<Data, SimError> {
    let model = fleet_scale::calibrate_model_with(engine, params)?;
    let mut rows = Vec::new();
    for policy in POLICIES {
        for variant in VARIANTS {
            let run = run_fleet(&fleet_config(policy, variant), &model, false)?;
            rows.push(point(&run, policy, variant));
        }
    }
    Ok(Data { rows })
}

/// Measures one simulated sweep point.
fn point(run: &FleetRun, policy: RoutingPolicy, variant: &'static str) -> Row {
    Row {
        policy: policy.label(),
        variant,
        memory_instance_s: run.memory_instance_s(),
        cold_start_rate: run.cold_start_rate(),
        mean_ms: run.mean_latency_ms(),
        p99_ms: run.p99_ms(),
        hit_rate: run.shared_page_hit_rate(),
        dedup_mib_saved: run.dedup_bytes_saved as f64 / (1024.0 * 1024.0),
        slowed: run.slowed_invocations,
        contention_extra_ms: run.contention_extra_ms,
    }
}

impl Data {
    /// The row for one (policy, variant) point.
    pub fn row(&self, policy: RoutingPolicy, variant: &str) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.policy == policy.label() && r.variant == variant)
    }

    /// Memory-instance-seconds dedup saved under `policy`: the tenancy
    /// bill subtracted from the baseline bill over identical traffic.
    pub fn memory_savings(&self, policy: RoutingPolicy) -> f64 {
        match (self.row(policy, "off"), self.row(policy, "dedup")) {
            (Some(off), Some(dedup)) => off.memory_instance_s - dedup.memory_instance_s,
            _ => 0.0,
        }
    }

    /// Mean latency recovered by dedup'd restores under `policy`, ms —
    /// resident shared pages shrink the REAP prefetch batch, so cold
    /// starts get cheaper with no behavioural change.
    pub fn restore_recovery_ms(&self, policy: RoutingPolicy) -> f64 {
        match (self.row(policy, "off"), self.row(policy, "dedup")) {
            (Some(off), Some(dedup)) => off.mean_ms - dedup.mean_ms,
            _ => 0.0,
        }
    }

    /// Whether the placement-aware policy sits on the memory-vs-P99
    /// frontier under full tenancy: no other swept policy beats it on
    /// *both* axes at once.
    pub fn placement_on_frontier(&self) -> bool {
        let Some(pa) = self.row(RoutingPolicy::PlacementAware, "dedup+contention") else {
            return false;
        };
        POLICIES
            .iter()
            .filter(|&&p| p != RoutingPolicy::PlacementAware)
            .filter_map(|&p| self.row(p, "dedup+contention"))
            .all(|other| {
                !(other.memory_instance_s < pa.memory_instance_s && other.p99_ms < pa.p99_ms)
            })
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tenancy sweep: shared-page dedup and contention pressure per routing policy"
        )?;
        let mut t = TextTable::new(&[
            "policy",
            "tenancy",
            "memory inst-s",
            "cold %",
            "mean ms",
            "p99 ms",
            "hit %",
            "MiB deduped",
            "slowed",
            "contention ms",
        ]);
        for r in &self.rows {
            t.row(&[
                r.policy.to_string(),
                r.variant.to_string(),
                format!("{:.1}", r.memory_instance_s),
                format!("{:.1}", r.cold_start_rate * 100.0),
                format!("{:.3}", r.mean_ms),
                format!("{:.3}", r.p99_ms),
                format!("{:.1}", r.hit_rate * 100.0),
                format!("{:.2}", r.dedup_mib_saved),
                r.slowed.to_string(),
                format!("{:.1}", r.contention_extra_ms),
            ]);
        }
        write!(f, "{t}")?;
        for policy in POLICIES {
            writeln!(
                f,
                "{}: dedup saves {:.1} memory inst-s and recovers {:.3}ms mean restore cost",
                policy.label(),
                self.memory_savings(policy),
                self.restore_recovery_ms(policy),
            )?;
        }
        writeln!(
            f,
            "placement-aware on the memory-vs-P99 frontier under contention: {}",
            if self.placement_on_frontier() { "yes" } else { "no" }
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut sweep = luke_obs::Dataset::new(
            "tenancy.sweep",
            &[
                "policy",
                "variant",
                "memory_instance_s",
                "cold_start_rate",
                "mean_ms",
                "p99_ms",
                "hit_rate",
                "dedup_mib_saved",
                "slowed",
                "contention_extra_ms",
            ],
        );
        for r in &self.rows {
            sweep.push_row(vec![
                r.policy.into(),
                r.variant.into(),
                r.memory_instance_s.into(),
                r.cold_start_rate.into(),
                r.mean_ms.into(),
                r.p99_ms.into(),
                r.hit_rate.into(),
                r.dedup_mib_saved.into(),
                r.slowed.into(),
                r.contention_extra_ms.into(),
            ]);
        }
        let mut savings = luke_obs::Dataset::new(
            "tenancy.savings",
            &["policy", "memory_savings_instance_s", "restore_recovery_ms"],
        );
        for policy in POLICIES {
            savings.push_row(vec![
                policy.label().into(),
                self.memory_savings(policy).into(),
                self.restore_recovery_ms(policy).into(),
            ]);
        }
        vec![sweep, savings]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_experiment(&ExperimentParams::quick())
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        let d = data();
        assert_eq!(d.rows.len(), POLICIES.len() * VARIANTS.len());
        for policy in POLICIES {
            for variant in VARIANTS {
                assert!(d.row(policy, variant).is_some(), "{policy:?}/{variant}");
            }
        }
    }

    #[test]
    fn dedup_cuts_memory_and_recovers_restore_cost_under_every_policy() {
        let d = data();
        for policy in POLICIES {
            assert!(
                d.memory_savings(policy) > 0.0,
                "{}: dedup must cut the memory bill\n{d}",
                policy.label()
            );
            assert!(
                d.restore_recovery_ms(policy) >= 0.0,
                "{}: shared restores must not cost extra\n{d}",
                policy.label()
            );
            let dedup = d.row(policy, "dedup").unwrap();
            assert!(dedup.hit_rate > 0.0, "{}: no shared-page hits", policy.label());
            assert!(dedup.dedup_mib_saved > 0.0);
            let off = d.row(policy, "off").unwrap();
            assert_eq!(off.hit_rate, 0.0, "disabled variant must not dedup");
            assert_eq!(off.slowed, 0);
        }
    }

    #[test]
    fn contention_is_a_real_tradeoff_with_placement_on_the_frontier() {
        let d = data();
        // Under at least one policy the pressure curve must actually
        // engage and show up in the tail.
        let engaged: Vec<_> = POLICIES
            .iter()
            .filter_map(|&p| d.row(p, "dedup+contention"))
            .filter(|r| r.slowed > 0 && r.contention_extra_ms > 0.0)
            .collect();
        assert!(!engaged.is_empty(), "contention never engaged\n{d}");
        for r in &engaged {
            let dedup = d
                .rows
                .iter()
                .find(|q| q.policy == r.policy && q.variant == "dedup")
                .unwrap();
            assert!(
                r.p99_ms >= dedup.p99_ms,
                "{}: pressure cannot improve the tail\n{d}",
                r.policy
            );
        }
        assert!(d.placement_on_frontier(), "{d}");
    }

    #[test]
    fn render_reports_the_sweep_and_exports_two_datasets() {
        let d = data();
        let s = d.to_string();
        assert!(s.contains("Tenancy sweep"));
        assert!(s.contains("placement-aware on the memory-vs-P99 frontier"));
        let datasets = luke_obs::Export::datasets(&d);
        assert_eq!(datasets.len(), 2);
        assert_eq!(datasets[0].name, "tenancy.sweep");
        assert_eq!(datasets[0].rows.len(), d.rows.len());
        assert_eq!(datasets[1].name, "tenancy.savings");
        assert_eq!(datasets[1].rows.len(), POLICIES.len());
    }
}
