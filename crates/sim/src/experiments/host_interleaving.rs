//! **Host-interleaving validation** — true multi-instance interleaving vs
//! the paper's flush-between-invocations model (§5.2).
//!
//! The paper's simulated baseline *models* interleaving by flushing all
//! microarchitectural state between invocations of the function under
//! test. This experiment runs the real thing: a set of warm instances
//! time-sharing one core and hierarchy in a round-robin schedule, so each
//! instance's state is obliterated by the others' actual execution. It
//! reports, per instance: solo (back-to-back) CPI, flush-model CPI,
//! co-run CPI, and the Jukebox speedup under *true* interleaving — the
//! end-to-end check that the flush model, and Jukebox's benefit under it,
//! carry over.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::host::HostSim;
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::{geomean, mean};
use luke_common::table::TextTable;
use luke_common::SimError;
use std::fmt;
use workloads::paper_suite;

/// Per-instance results.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// Back-to-back (warm) CPI, solo on the host.
    pub solo_cpi: f64,
    /// CPI under the flush-between-invocations model.
    pub flush_cpi: f64,
    /// CPI under true co-run interleaving.
    pub corun_cpi: f64,
    /// CPI under true co-run interleaving with Jukebox on every instance.
    pub corun_jukebox_cpi: f64,
}

impl Row {
    /// Jukebox speedup under true interleaving.
    pub fn jukebox_speedup(&self) -> f64 {
        self.corun_cpi / self.corun_jukebox_cpi
    }
}

/// The complete validation dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per co-run instance.
    pub rows: Vec<Row>,
}

/// Cell grid: the solo (reference) and flush-model (lukewarm) reference
/// points per suite function. The true co-run drives [`HostSim`] directly
/// — multi-instance state is not a per-cell quantity — and stays outside
/// the cache.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            [RunSpec::reference(), RunSpec::lukewarm()]
                .into_iter()
                .map(move |spec| Cell::new(&config, &profile, PrefetcherKind::None, spec, params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "host"
    }
    fn description(&self) -> &'static str {
        "True multi-instance host interleaving vs the flush-between-invocations model"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(try_run_experiment_with(engine, params)?))
    }
}

/// Runs the validation with the full 20-function suite co-resident: at
/// paper scale their combined footprints (~9MB) exceed the LLC, so true
/// interleaving pushes instruction working sets to DRAM — the regime the
/// paper describes (§2.2, with thousands of instances).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    match try_run_experiment(params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_experiment`] for callers that map
/// [`SimError`] to exit codes (the CLI).
pub fn try_run_experiment(params: &ExperimentParams) -> Result<Data, SimError> {
    try_run_experiment_with(&Engine::single(), params)
}

/// Fallible full-suite run through a shared engine.
pub fn try_run_experiment_with(
    engine: &Engine,
    params: &ExperimentParams,
) -> Result<Data, SimError> {
    let profiles: Vec<_> = paper_suite()
        .into_iter()
        .map(|p| p.scaled(params.scale))
        .collect();
    try_run_with_engine(engine, &profiles, params)
}

/// Runs the validation on an explicit instance set.
///
/// # Panics
///
/// Panics if `profiles` is empty; see [`try_run_with`].
pub fn run_with(profiles: &[workloads::FunctionProfile], params: &ExperimentParams) -> Data {
    match try_run_with(profiles, params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Runs the validation on an explicit instance set, rejecting an empty
/// one with [`SimError`] instead of panicking.
pub fn try_run_with(
    profiles: &[workloads::FunctionProfile],
    params: &ExperimentParams,
) -> Result<Data, SimError> {
    try_run_with_engine(&Engine::single(), profiles, params)
}

/// Runs the validation on an explicit instance set through a shared
/// engine (which memoizes the solo and flush-model reference points).
pub fn try_run_with_engine(
    engine: &Engine,
    profiles: &[workloads::FunctionProfile],
    params: &ExperimentParams,
) -> Result<Data, SimError> {
    let config = SystemConfig::skylake();

    let warmup_rounds = params.warmup.max(1) as usize;
    let measure_rounds = params.invocations.max(1) as usize;
    let schedule =
        |rounds: usize| -> Vec<usize> { (0..rounds).flat_map(|_| 0..profiles.len()).collect() };

    // True co-run, without and with Jukebox.
    let corun = |jukebox: bool| -> Result<Vec<f64>, SimError> {
        let mut host = HostSim::try_new(config, profiles, jukebox)?;
        host.run_schedule(&schedule(warmup_rounds));
        host.reset_stats();
        host.run_schedule(&schedule(measure_rounds));
        Ok(host
            .all_stats()
            .iter()
            // Every instance in the round-robin schedule retires
            // instructions; a `None` CPI would mean the schedule broke,
            // so degrade it to NaN (filtered by the geomean) rather
            // than panic.
            .map(|s| s.cpi().unwrap_or(f64::NAN))
            .collect())
    };
    let corun_base = corun(false)?;
    let corun_jukebox = corun(true)?;

    // Solo and flush-model references per function.
    let rows = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let solo = engine.run(
                &config,
                p,
                PrefetcherKind::None,
                RunSpec::reference(),
                params,
            );
            let flush = engine.run(
                &config,
                p,
                PrefetcherKind::None,
                RunSpec::lukewarm(),
                params,
            );
            Row {
                function: p.name.clone(),
                solo_cpi: solo.cpi(),
                flush_cpi: flush.cpi(),
                corun_cpi: corun_base[i],
                corun_jukebox_cpi: corun_jukebox[i],
            }
        })
        .collect();
    Ok(Data { rows })
}

impl Data {
    /// Mean ratio of co-run CPI to flush-model CPI: 1.0 means the flush
    /// model predicts true interleaving exactly.
    pub fn flush_model_fidelity(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.corun_cpi / r.flush_cpi)
                .collect::<Vec<_>>(),
        )
    }

    /// Geomean Jukebox speedup under true interleaving.
    pub fn jukebox_geomean(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|r| r.jukebox_speedup())
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Host interleaving: {} co-resident instances, round-robin dispatch",
            self.rows.len()
        )?;
        let mut t = TextTable::new(&[
            "function",
            "solo CPI",
            "flush-model CPI",
            "co-run CPI",
            "co-run+JB CPI",
            "JB speedup",
        ]);
        for r in &self.rows {
            t.row(&[
                r.function.clone(),
                format!("{:.2}", r.solo_cpi),
                format!("{:.2}", r.flush_cpi),
                format!("{:.2}", r.corun_cpi),
                format!("{:.2}", r.corun_jukebox_cpi),
                format!("{:+.1}%", (r.jukebox_speedup() - 1.0) * 100.0),
            ]);
        }
        writeln!(
            f,
            "{t}Flush-model fidelity (co-run/flush CPI): {:.2}; \
             Jukebox geomean under true interleaving: {:+.1}%",
            self.flush_model_fidelity(),
            (self.jukebox_geomean() - 1.0) * 100.0
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut cpi = luke_obs::Dataset::new(
            "host_interleaving.cpi",
            &[
                "function",
                "solo CPI",
                "flush-model CPI",
                "co-run CPI",
                "co-run+JB CPI",
                "JB speedup",
            ],
        );
        for r in &self.rows {
            cpi.push_row(vec![
                r.function.clone().into(),
                r.solo_cpi.into(),
                r.flush_cpi.into(),
                r.corun_cpi.into(),
                r.corun_jukebox_cpi.into(),
                r.jukebox_speedup().into(),
            ]);
        }
        let mut summary = luke_obs::Dataset::new(
            "host_interleaving.summary",
            &["flush-model fidelity", "jukebox geomean"],
        );
        summary.push_row(vec![
            self.flush_model_fidelity().into(),
            self.jukebox_geomean().into(),
        ]);
        vec![cpi, summary]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A co-run whose combined footprints exceed the 1MB L2, so true
    /// interleaving visibly degrades each instance. (Exceeding the 8MB
    /// LLC — the paper-scale regime where the flush model's fidelity is
    /// near 1 — is exercised by the `host_interleaving` bench target.)
    fn data() -> Data {
        let scale = 0.55;
        let profiles: Vec<_> = paper_suite()
            .into_iter()
            .rev()
            .take(5)
            .map(|p| p.scaled(scale))
            .collect();
        run_with(
            &profiles,
            &ExperimentParams {
                scale,
                invocations: 1,
                warmup: 1,
            },
        )
    }

    #[test]
    fn co_run_degrades_and_jukebox_recovers() {
        let d = data();
        for r in &d.rows {
            assert!(
                r.corun_cpi > r.solo_cpi * 1.02,
                "{}: co-run {:.2} vs solo {:.2}",
                r.function,
                r.corun_cpi,
                r.solo_cpi
            );
        }
        assert!(
            d.jukebox_geomean() > 1.005,
            "geomean {:.3}",
            d.jukebox_geomean()
        );
    }

    #[test]
    fn flush_model_is_an_upper_bound_at_llc_resident_scale() {
        // With combined footprints between L2 and LLC capacity, true
        // interleaving is milder than the full flush (misses hit the LLC,
        // not DRAM): fidelity below ~1. At paper scale it approaches 1.
        let d = data();
        let fidelity = d.flush_model_fidelity();
        assert!((0.25..=1.15).contains(&fidelity), "fidelity {fidelity}");
    }

    #[test]
    fn empty_instance_set_is_an_error_not_a_panic() {
        let err = try_run_with(
            &[],
            &ExperimentParams {
                scale: 0.1,
                invocations: 1,
                warmup: 0,
            },
        );
        assert!(err.is_err());
        assert_eq!(err.err().map(|e| e.exit_code()), Some(3));
    }

    #[test]
    fn render_reports_fidelity() {
        let s = data().to_string();
        assert!(s.contains("Flush-model fidelity"));
        assert!(s.contains("JB speedup"));
    }
}
