//! **Related-work comparison (§6)** — Jukebox against the two prior-work
//! families the paper argues cannot solve the lukewarm problem, measured
//! on the same harness:
//!
//! * **cache restoration** (Daly & Cain \[10\], RECAP \[53\]): saves the full
//!   cache footprint to memory and restores it indiscriminately — high
//!   coverage but per-line metadata (8B/line vs Jukebox's 54b/region) and
//!   heavy restore traffic, "in some cases more than doubling the amount
//!   of memory traffic";
//! * **BTB-directed prefetching** (FDIP \[41\], Boomerang \[33\]): drives
//!   prefetch from the BTB and branch predictor, which are core state and
//!   therefore *cold* at every lukewarm invocation — near-zero benefit.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::size::ByteSize;
use luke_common::table::TextTable;
use std::fmt;
use workloads::FunctionProfile;

/// Per-prefetcher measurements on one function.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Prefetcher label.
    pub prefetcher: &'static str,
    /// Speedup over the lukewarm baseline.
    pub speedup: f64,
    /// Metadata bytes moved per invocation (record + replay traffic).
    pub metadata_bytes_per_invocation: u64,
    /// Total DRAM bytes relative to the baseline.
    pub bandwidth_ratio: f64,
}

/// The comparison for one function.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// Function studied.
    pub function: String,
    /// One row per prefetcher.
    pub rows: Vec<Row>,
}

/// The configurations compared, baseline first.
fn kinds(config: &SystemConfig) -> [PrefetcherKind; 4] {
    [
        PrefetcherKind::None,
        PrefetcherKind::Jukebox(config.jukebox),
        PrefetcherKind::FootprintRestore,
        PrefetcherKind::FetchDirected,
    ]
}

/// Cell grid: Auth-G under (baseline, Jukebox, footprint-restore,
/// fetch-directed).
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    let profile = FunctionProfile::named("Auth-G")
        .expect("suite function")
        .scaled(params.scale);
    kinds(&config)
        .into_iter()
        .map(|kind| Cell::new(&config, &profile, kind, RunSpec::lukewarm(), params))
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "related-work"
    }
    fn description(&self) -> &'static str {
        "Jukebox vs cache restoration and BTB-directed prefetching (§6)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Runs the §6 comparison on one function (default Auth-G).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the §6 comparison on the default function through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    run_for(
        engine,
        &FunctionProfile::named("Auth-G").expect("suite function"),
        params,
    )
}

/// Runs the §6 comparison on the given function.
pub fn run_for(engine: &Engine, profile: &FunctionProfile, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let profile = profile.scaled(params.scale);
    let baseline = engine.run(
        &config,
        &profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        params,
    );
    let rows = [
        PrefetcherKind::Jukebox(config.jukebox),
        PrefetcherKind::FootprintRestore,
        PrefetcherKind::FetchDirected,
    ]
    .iter()
    .map(|&kind| {
        let s = engine.run(&config, &profile, kind, RunSpec::lukewarm(), params);
        Row {
            prefetcher: kind.label(),
            speedup: s.speedup_over(&baseline),
            metadata_bytes_per_invocation: (s.mem.traffic.metadata_record
                + s.mem.traffic.metadata_replay)
                / params.invocations.max(1),
            bandwidth_ratio: s.mem.traffic.total() as f64
                / baseline.mem.traffic.total().max(1) as f64,
        }
    })
    .collect();
    Data {
        function: profile.name.clone(),
        rows,
    }
}

impl Data {
    /// The row for a given prefetcher label.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.prefetcher == label)
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Related work (§6) on {}: speedup, metadata traffic, bandwidth",
            self.function
        )?;
        let mut t = TextTable::new(&[
            "prefetcher",
            "speedup",
            "metadata/invocation",
            "DRAM bytes vs baseline",
        ]);
        for r in &self.rows {
            t.row(&[
                r.prefetcher.to_string(),
                format!("{:+.1}%", (r.speedup - 1.0) * 100.0),
                ByteSize::new(r.metadata_bytes_per_invocation).to_string(),
                format!("{:.2}x", r.bandwidth_ratio),
            ]);
        }
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut ds = luke_obs::Dataset::new(
            "related_work.comparison",
            &[
                "function",
                "prefetcher",
                "speedup",
                "metadata/invocation",
                "DRAM bytes vs baseline",
            ],
        );
        for r in &self.rows {
            ds.push_row(vec![
                self.function.clone().into(),
                r.prefetcher.into(),
                r.speedup.into(),
                r.metadata_bytes_per_invocation.into(),
                r.bandwidth_ratio.into(),
            ]);
        }
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_for(
            &Engine::single(),
            &FunctionProfile::named("Auth-G").unwrap(),
            &ExperimentParams::quick(),
        )
    }

    #[test]
    fn btb_directed_is_nearly_useless_when_cold() {
        let d = data();
        let fd = d.row("fetch-directed").unwrap();
        let jb = d.row("jukebox").unwrap();
        assert!(
            fd.speedup < 1.0 + (jb.speedup - 1.0) * 0.4,
            "fetch-directed ({:.3}) should capture far less than jukebox ({:.3})",
            fd.speedup,
            jb.speedup
        );
    }

    #[test]
    fn cache_restoration_needs_far_more_metadata() {
        let d = data();
        let fr = d.row("footprint-restore").unwrap();
        let jb = d.row("jukebox").unwrap();
        assert!(
            fr.metadata_bytes_per_invocation > 3 * jb.metadata_bytes_per_invocation,
            "restore metadata {}B vs jukebox {}B",
            fr.metadata_bytes_per_invocation,
            jb.metadata_bytes_per_invocation
        );
    }

    #[test]
    fn cache_restoration_also_helps_but_with_more_traffic() {
        let d = data();
        let fr = d.row("footprint-restore").unwrap();
        let jb = d.row("jukebox").unwrap();
        assert!(fr.speedup > 1.0, "restoration should help: {}", fr.speedup);
        assert!(
            fr.bandwidth_ratio > jb.bandwidth_ratio,
            "restore traffic {:.2}x should exceed jukebox {:.2}x",
            fr.bandwidth_ratio,
            jb.bandwidth_ratio
        );
    }

    #[test]
    fn render_lists_all_three() {
        let s = data().to_string();
        assert!(s.contains("jukebox"));
        assert!(s.contains("footprint-restore"));
        assert!(s.contains("fetch-directed"));
    }
}
