//! **Keep-alive economics (§2.1)** — why lukewarm invocations exist at all.
//!
//! Providers keep idle instances warm for 5–60 minutes because cold boots
//! cost hundreds of milliseconds; the Azure study the paper cites found
//! that with such windows, roughly 20–40% of deployed functions have a
//! warm instance when a request arrives, and fewer than 5% of invocations
//! arrive less than a second apart. This experiment reproduces that
//! trade-off with the host model: a population of functions with
//! heavy-tailed inter-arrival times, swept across keep-alive windows,
//! reporting the warm-hit rate and the memory cost of the warm pool —
//! the supply side of the lukewarm phenomenon.
//!
//! This is a pool-level simulation (no cycle-accurate timing), so it runs
//! a large population cheaply.

use crate::engine::{Cell, Engine};
use crate::runner::ExperimentParams;
use luke_common::rng::DetRng;
use luke_common::table::TextTable;
use server::{IatDistribution, InstancePool, TrafficGenerator};
use std::fmt;

/// Results for one keep-alive window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Row {
    /// Keep-alive window in minutes.
    pub keep_alive_min: f64,
    /// Fraction of invocations served by a warm instance. High in
    /// practice — which is exactly why warm (and therefore lukewarm)
    /// executions dominate.
    pub warm_hit_rate: f64,
    /// Mean number of warm instances resident on the host.
    pub mean_warm_instances: f64,
    /// Mean fraction of the *function population* with a warm instance —
    /// the Azure study's 20–40% statistic.
    pub warm_function_fraction: f64,
    /// Fraction of invocations with a sub-second gap to the previous one
    /// on the same instance (the Azure study: <5%).
    pub subsecond_gap_rate: f64,
}

/// The complete keep-alive sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per keep-alive window.
    pub rows: Vec<Row>,
    /// Number of functions in the population.
    pub functions: usize,
    /// Invocations simulated per window.
    pub invocations: usize,
}

/// The windows the paper cites providers using (§2.1: 5–60 minutes).
pub const KEEP_ALIVE_MINUTES: [f64; 4] = [5.0, 10.0, 30.0, 60.0];

/// Builds a heavy-tailed population of invocation rates: a few chatty
/// functions (tens of seconds), a long tail of rare ones (hours to a
/// week) — the shape of the Azure trace's per-function IAT distribution.
fn population(functions: usize, seed: u64) -> Vec<IatDistribution> {
    let mut rng = DetRng::new(seed);
    (0..functions)
        .map(|_| {
            // Log-uniform mean IAT between 30 seconds and 7 days.
            let log_lo = (30_000.0f64).ln();
            let log_hi = (7.0 * 24.0 * 3600.0 * 1000.0f64).ln();
            let mean_ms = (log_lo + rng.unit() * (log_hi - log_lo)).exp();
            IatDistribution::Exponential { mean_ms }
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`]. The pool-level
/// simulation has no cycle-accurate runner cells, so the plan is empty
/// and the run ignores the engine.
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "keep-alive"
    }
    fn description(&self) -> &'static str {
        "Keep-alive economics: warm-hit rate vs warm-pool memory cost (§2.1)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, _params: &ExperimentParams) -> Vec<Cell> {
        Vec::new()
    }
    fn run(
        &self,
        _engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        try_run_experiment(params).map(|d| Box::new(d) as Box<dyn crate::engine::ExperimentData>)
    }
}

/// Runs the sweep. `params.scale` scales the population size; the default
/// population is 400 functions, 40_000 invocations per window.
///
/// # Panics
///
/// Panics on invalid configuration; see [`try_run_experiment`].
pub fn run_experiment(params: &ExperimentParams) -> Data {
    match try_run_experiment(params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_experiment`] for callers that map
/// [`luke_common::SimError`] to exit codes (the CLI): invalid windows
/// surface as `InvalidConfig` (exit 3), not a panic.
pub fn try_run_experiment(params: &ExperimentParams) -> Result<Data, luke_common::SimError> {
    let functions = ((400.0 * params.scale) as usize).max(20);
    let invocations = ((40_000.0 * params.scale) as usize).max(2_000);
    let distributions = population(functions, 0xAC11);

    let rows = KEEP_ALIVE_MINUTES
        .iter()
        .map(|&minutes| {
            let keep_alive_ms = minutes * 60_000.0;
            let mut pool = InstancePool::try_new(keep_alive_ms)?;
            let mut traffic = TrafficGenerator::new(&distributions, 7);
            // function index -> live instance id
            let mut live: Vec<Option<u64>> = vec![None; functions];
            let mut warm_hits = 0usize;
            let mut subsecond = 0usize;
            let mut warm_sum = 0u64;

            for event in traffic.take_events(invocations) {
                pool.sweep(event.at_ms);
                let function = event.instance;
                // An instance expired by the sweep no longer exists.
                if let Some(id) = live[function] {
                    if pool.instance(id).is_none() {
                        live[function] = None;
                    }
                }
                match live[function] {
                    Some(id) => {
                        let gap = pool.invoke(id, event.at_ms).expect("live instance");
                        warm_hits += 1;
                        if gap < 1_000.0 {
                            subsecond += 1;
                        }
                    }
                    None => {
                        // Cold start: boot a fresh instance.
                        let id = pool.spawn(function, event.at_ms);
                        pool.invoke(id, event.at_ms);
                        live[function] = Some(id);
                    }
                }
                warm_sum += pool.warm_count() as u64;
            }

            let mean_warm = warm_sum as f64 / invocations as f64;
            Ok(Row {
                keep_alive_min: minutes,
                warm_hit_rate: warm_hits as f64 / invocations as f64,
                mean_warm_instances: mean_warm,
                warm_function_fraction: mean_warm / functions as f64,
                subsecond_gap_rate: subsecond as f64 / invocations as f64,
            })
        })
        .collect::<Result<Vec<Row>, luke_common::SimError>>()?;

    Ok(Data {
        rows,
        functions,
        invocations,
    })
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Keep-alive economics (§2.1): {} functions, {} invocations per window",
            self.functions, self.invocations
        )?;
        let mut t = TextTable::new(&[
            "keep-alive",
            "warm-hit rate",
            "warm functions",
            "mean warm instances",
            "sub-second gaps",
        ]);
        for r in &self.rows {
            t.row(&[
                format!("{:.0} min", r.keep_alive_min),
                format!("{:.0}%", r.warm_hit_rate * 100.0),
                format!("{:.0}%", r.warm_function_fraction * 100.0),
                format!("{:.0}", r.mean_warm_instances),
                format!("{:.1}%", r.subsecond_gap_rate * 100.0),
            ]);
        }
        writeln!(
            f,
            "{t}Longer windows turn cold starts into warm — and therefore lukewarm — \
             invocations, at the cost of memory-resident instances."
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut sweep = luke_obs::Dataset::new(
            "keep_alive.sweep",
            &[
                "keep-alive",
                "warm-hit rate",
                "warm functions",
                "mean warm instances",
                "sub-second gaps",
            ],
        );
        for r in &self.rows {
            sweep.push_row(vec![
                r.keep_alive_min.into(),
                r.warm_hit_rate.into(),
                r.warm_function_fraction.into(),
                r.mean_warm_instances.into(),
                r.subsecond_gap_rate.into(),
            ]);
        }
        let mut population = luke_obs::Dataset::new(
            "keep_alive.population",
            &["functions", "invocations"],
        );
        population.push_row(vec![
            (self.functions as u64).into(),
            (self.invocations as u64).into(),
        ]);
        vec![sweep, population]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_experiment(&ExperimentParams {
            scale: 0.25,
            invocations: 1,
            warmup: 0,
        })
    }

    #[test]
    fn warm_statistics_grow_with_keep_alive() {
        let d = data();
        for pair in d.rows.windows(2) {
            assert!(
                pair[1].warm_hit_rate >= pair[0].warm_hit_rate - 0.02,
                "warm hits should grow with the window: {:?}",
                d.rows
            );
        }
        assert!(
            d.rows.last().unwrap().mean_warm_instances
                > d.rows.first().unwrap().mean_warm_instances,
            "{:?}",
            d.rows
        );
    }

    #[test]
    fn a_minority_of_functions_is_warm_at_any_instant() {
        // §2.1 / Azure: with 5–60 minute windows, roughly 20–40% of
        // deployed functions have a warm instance when a request arrives.
        let d = data();
        for r in &d.rows {
            assert!(
                (0.05..0.8).contains(&r.warm_function_fraction),
                "warm-function fraction {:.2} at {} min",
                r.warm_function_fraction,
                r.keep_alive_min
            );
        }
        let at_5 = d.rows[0].warm_function_fraction;
        let at_60 = d.rows.last().unwrap().warm_function_fraction;
        assert!(at_60 > at_5, "fraction must grow with the window");
    }

    #[test]
    fn subsecond_gaps_are_rare() {
        // "fewer than 5% of all invocations have an IAT of under a
        // second" — warm-instance gaps are overwhelmingly ≥ 1s.
        let d = data();
        for r in &d.rows {
            assert!(
                r.subsecond_gap_rate < 0.08,
                "sub-second rate {:.2} at {} min",
                r.subsecond_gap_rate,
                r.keep_alive_min
            );
        }
    }

    #[test]
    fn render_lists_all_windows() {
        let s = data().to_string();
        for m in KEEP_ALIVE_MINUTES {
            assert!(s.contains(&format!("{m:.0} min")));
        }
    }
}
