//! **Figure 10** — the headline result: Jukebox and Perfect-I-cache
//! speedups over the interleaved baseline on the Skylake-like platform.
//!
//! Paper shape: Perfect I-cache (the opportunity bound) averages ≈31%
//! (max ≈46% on Auth-N); Jukebox delivers ≈18.7% geomean, tracking the
//! per-function opportunity — large where Perfect is large (Auth-G
//! ≈29.5%), small where it is small (AES-P ≈6.2%).

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::geomean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// The three prefetcher configurations each function is measured under.
fn kinds(config: &SystemConfig) -> [PrefetcherKind; 3] {
    [
        PrefetcherKind::None,
        PrefetcherKind::Jukebox(config.jukebox),
        PrefetcherKind::PerfectICache,
    ]
}

/// Cell grid: (baseline, Jukebox, Perfect-I-cache) × suite, all lukewarm.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            kinds(&config)
                .into_iter()
                .map(move |kind| Cell::new(&config, &profile, kind, RunSpec::lukewarm(), params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig10"
    }
    fn description(&self) -> &'static str {
        "Jukebox and Perfect-I-cache speedup over the interleaved baseline (Skylake)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Speedups for one function.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// Jukebox speedup over the interleaved baseline (1.0 = no change).
    pub jukebox: f64,
    /// Perfect-I-cache speedup over the interleaved baseline.
    pub perfect: f64,
}

/// The complete Figure 10 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
}

/// Runs the speedup study for one function.
pub fn measure_function(
    engine: &Engine,
    config: &SystemConfig,
    profile: &workloads::FunctionProfile,
    params: &ExperimentParams,
) -> Row {
    let [baseline, jukebox, perfect] =
        kinds(config).map(|kind| engine.run(config, profile, kind, RunSpec::lukewarm(), params));
    Row {
        function: profile.name.clone(),
        jukebox: jukebox.speedup_over(&baseline),
        perfect: perfect.speedup_over(&baseline),
    }
}

/// Runs Figure 10 over the whole suite (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs Figure 10 over the whole suite through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let rows = paper_suite()
        .into_iter()
        .map(|p| measure_function(engine, &config, &p.scaled(params.scale), params))
        .collect();
    Data { rows }
}

impl Data {
    /// Geometric-mean Jukebox speedup (the paper's 18.7%).
    pub fn jukebox_geomean(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|r| r.jukebox)
                .collect::<Vec<_>>(),
        )
    }

    /// Geometric-mean Perfect-I-cache speedup (the paper's ≈31%... as an
    /// arithmetic mean in the text; we report geomean for consistency).
    pub fn perfect_geomean(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|r| r.perfect)
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: speedup over the interleaved baseline (Skylake-like)"
        )?;
        let mut t = TextTable::new(&["function", "jukebox", "perfect I-cache"]);
        for row in &self.rows {
            t.row(&[
                row.function.clone(),
                format!("{:+.1}%", (row.jukebox - 1.0) * 100.0),
                format!("{:+.1}%", (row.perfect - 1.0) * 100.0),
            ]);
        }
        t.row(&[
            "GEOMEAN".to_string(),
            format!("{:+.1}%", (self.jukebox_geomean() - 1.0) * 100.0),
            format!("{:+.1}%", (self.perfect_geomean() - 1.0) * 100.0),
        ]);
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut ds = luke_obs::Dataset::new(
            "fig10.speedup",
            &["function", "jukebox", "perfect I-cache"],
        );
        for row in &self.rows {
            ds.push_row(vec![
                row.function.clone().into(),
                row.jukebox.into(),
                row.perfect.into(),
            ]);
        }
        ds.push_row(vec![
            "GEOMEAN".into(),
            self.jukebox_geomean().into(),
            self.perfect_geomean().into(),
        ]);
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    fn measure(name: &str) -> Row {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
        measure_function(&Engine::single(), &config, &profile, &params)
    }

    #[test]
    fn plan_covers_three_cells_per_function() {
        let params = ExperimentParams::quick();
        let cells = plan(&params);
        assert_eq!(cells.len(), workloads::paper_suite().len() * 3);
    }

    #[test]
    fn jukebox_speedup_is_positive_and_bounded_by_perfect() {
        for name in ["Auth-G", "Email-P"] {
            let row = measure(name);
            assert!(row.jukebox > 1.0, "{name}: jukebox {}", row.jukebox);
            assert!(row.perfect > 1.0, "{name}: perfect {}", row.perfect);
            assert!(
                row.perfect > row.jukebox * 0.9,
                "{name}: perfect {} should bound jukebox {}",
                row.perfect,
                row.jukebox
            );
        }
    }

    #[test]
    fn geomean_math() {
        let data = Data {
            rows: vec![
                Row {
                    function: "a".into(),
                    jukebox: 1.1,
                    perfect: 1.3,
                },
                Row {
                    function: "b".into(),
                    jukebox: 1.3,
                    perfect: 1.3,
                },
            ],
        };
        let g = data.jukebox_geomean();
        assert!((g - (1.1f64 * 1.3).sqrt()).abs() < 1e-12);
        assert!((data.perfect_geomean() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn render_has_geomean_row() {
        let data = Data {
            rows: vec![Row {
                function: "Auth-G".into(),
                jukebox: 1.2,
                perfect: 1.3,
            }],
        };
        let s = data.to_string();
        assert!(s.contains("GEOMEAN"));
        assert!(s.contains("+20.0%"));
    }
}
