//! **Figure 9** — speedup as a function of the metadata-storage budget.
//!
//! Jukebox is run with per-direction metadata capacities of 8/12/16/32KB
//! on one representative function per language (Email-P, Pay-N, ProdL-G)
//! plus the whole-suite geometric mean. Paper shape: functions with large
//! working sets (Pay-N) are the most sensitive to the cap; beyond 16KB
//! the average gains little — which is why 16KB is the default.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::size::ByteSize;
use luke_common::stats::geomean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// The metadata capacities swept (KB), as in the paper.
pub const CAPACITIES_KB: [u64; 4] = [8, 12, 16, 32];

/// The representative functions plotted individually.
pub const REPRESENTATIVES: [&str; 3] = ["Email-P", "Pay-N", "ProdL-G"];

/// Speedups for one function (or the geomean row) across the sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name, or `"GEOMEAN"`.
    pub function: String,
    /// `(capacity_kb, speedup_over_baseline)` points.
    pub speedups: Vec<(u64, f64)>,
}

impl Row {
    /// Speedup at a given capacity.
    pub fn at(&self, capacity_kb: u64) -> Option<f64> {
        self.speedups
            .iter()
            .find(|&&(c, _)| c == capacity_kb)
            .map(|&(_, s)| s)
    }
}

/// The complete Figure 9 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// Representative rows plus the geomean row (last).
    pub rows: Vec<Row>,
}

/// The prefetcher configurations swept per function: the baseline plus
/// one Jukebox per metadata capacity.
fn kinds(config: &SystemConfig) -> Vec<PrefetcherKind> {
    std::iter::once(PrefetcherKind::None)
        .chain(CAPACITIES_KB.iter().map(|&kb| {
            PrefetcherKind::Jukebox(config.jukebox.with_metadata_capacity(ByteSize::kib(kb)))
        }))
        .collect()
}

/// Cell grid: (baseline + 4 capacity-limited Jukeboxes) × suite.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            kinds(&config)
                .into_iter()
                .map(move |kind| Cell::new(&config, &profile, kind, RunSpec::lukewarm(), params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig09"
    }
    fn description(&self) -> &'static str {
        "Jukebox speedup vs metadata storage capacity (8/12/16/32KB)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Measures `function`'s Jukebox speedup across the capacity sweep.
fn sweep_function(
    engine: &Engine,
    config: &SystemConfig,
    profile: &workloads::FunctionProfile,
    params: &ExperimentParams,
) -> Vec<(u64, f64)> {
    let baseline = engine.run(
        config,
        profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        params,
    );
    CAPACITIES_KB
        .iter()
        .map(|&kb| {
            let jb = config.jukebox.with_metadata_capacity(ByteSize::kib(kb));
            let s = engine.run(
                config,
                profile,
                PrefetcherKind::Jukebox(jb),
                RunSpec::lukewarm(),
                params,
            );
            (kb, s.speedup_over(&baseline))
        })
        .collect()
}

/// Runs the Figure 9 sweep: representatives individually, geomean over
/// the full suite (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the Figure 9 sweep through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let mut rows = Vec::new();
    let mut all: Vec<Vec<(u64, f64)>> = Vec::new();
    for p in paper_suite() {
        let profile = p.scaled(params.scale);
        let speedups = sweep_function(engine, &config, &profile, params);
        if REPRESENTATIVES.contains(&profile.name.as_str()) {
            rows.push(Row {
                function: profile.name.clone(),
                speedups: speedups.clone(),
            });
        }
        all.push(speedups);
    }
    let geo: Vec<(u64, f64)> = CAPACITIES_KB
        .iter()
        .enumerate()
        .map(|(i, &kb)| {
            let values: Vec<f64> = all.iter().map(|s| s[i].1).collect();
            (kb, geomean(&values))
        })
        .collect();
    rows.push(Row {
        function: "GEOMEAN".to_string(),
        speedups: geo,
    });
    Data { rows }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: Jukebox speedup vs metadata storage capacity")?;
        let mut header = vec!["function".to_string()];
        header.extend(CAPACITIES_KB.iter().map(|kb| format!("{kb}KB")));
        let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = TextTable::new(&refs);
        for row in &self.rows {
            let mut cells = vec![row.function.clone()];
            cells.extend(
                row.speedups
                    .iter()
                    .map(|&(_, s)| format!("{:+.1}%", (s - 1.0) * 100.0)),
            );
            t.row(&cells);
        }
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut columns = vec!["function".to_string()];
        columns.extend(CAPACITIES_KB.iter().map(|kb| format!("{kb}KB")));
        let mut ds = luke_obs::Dataset {
            name: "fig09.speedup_vs_capacity".to_string(),
            columns,
            rows: Vec::new(),
        };
        for row in &self.rows {
            let mut cells: Vec<luke_obs::Value> = vec![row.function.clone().into()];
            cells.extend(row.speedups.iter().map(|&(_, s)| s.into()));
            ds.push_row(cells);
        }
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    #[test]
    fn more_metadata_never_materially_hurts() {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named("Pay-N")
            .unwrap()
            .scaled(params.scale);
        let speedups = sweep_function(&Engine::single(), &config, &profile, &params);
        let at_8 = speedups[0].1;
        let at_32 = speedups[3].1;
        assert!(
            at_32 > at_8 * 0.97,
            "32KB ({at_32}) should not be materially worse than 8KB ({at_8})"
        );
    }

    #[test]
    fn speedups_are_positive_at_full_budget() {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named("ProdL-G")
            .unwrap()
            .scaled(params.scale);
        let speedups = sweep_function(&Engine::single(), &config, &profile, &params);
        let at_16 = speedups[2].1;
        assert!(at_16 > 1.0, "16KB speedup {at_16}");
    }

    #[test]
    fn render_contains_capacities() {
        let data = Data {
            rows: vec![Row {
                function: "X".into(),
                speedups: CAPACITIES_KB.iter().map(|&kb| (kb, 1.1)).collect(),
            }],
        };
        let s = data.to_string();
        for kb in CAPACITIES_KB {
            assert!(s.contains(&format!("{kb}KB")));
        }
    }
}
