//! **Surge** — fleet resilience under flash crowds and host faults.
//!
//! The fleet sweep ([`fleet_scale`]) assumes stationary traffic and
//! perfectly reliable hosts. This experiment drops both assumptions at
//! once: traffic follows a diurnal ramp with an 8x flash crowd on the
//! hottest function ([`luke_fleet::SurgeConfig`]), while a seeded chaos
//! timeline crashes and degrades whole hosts
//! ([`luke_fleet::ChaosConfig`]). The resilience stack responds —
//! probe-driven circuit breakers fail traffic over, half-open hosts get
//! hedged dispatches, down-host reconnects burn a per-function retry
//! budget, and (when enabled) SLO-driven admission control walks its
//! shedding ladder: revoke burst for the long tail, degrade restores to
//! lazy paging under memory pressure, shed only as the last rung.
//!
//! The sweep is routing policy x chaos level (fault-free / moderate /
//! heavy) x admission control (off / on), over identical surge traffic.
//! Service times are calibrated from the cycle-accurate core exactly as
//! in [`fleet_scale`] (same cells, so a shared engine simulates them
//! once). Reported per point: SLO-violation rate at [`SLO_MS`], shed
//! arrivals, degraded restores, failovers, host crashes, retry
//! amplification, and the cold/lukewarm/warm mix.
//!
//! Chaos transitions, hedge joins, and retry reconnects all ride the
//! fleet's calendar-queue event order (`crates/fleet/src/event.rs`), so
//! even the heavy-chaos points are byte-identical across worker-thread
//! counts — the surge rows here are reproducible artifacts, not samples.

use crate::engine::{Cell, Engine};
use crate::experiments::fleet_scale;
use crate::runner::ExperimentParams;
use luke_common::table::TextTable;
use luke_common::SimError;
use luke_fleet::{
    run_fleet, AdmissionConfig, ChaosConfig, FleetConfig, FleetRun, HedgeConfig, RetryBudget,
    RoutingPolicy, ServiceModel, SurgeConfig,
};
use luke_obs::hist::{bucket_index, BUCKETS};
use luke_obs::WindowRow;
use server::RetryPolicy;
use std::fmt;

/// End-to-end latency SLO, ms. Above the 125ms instant cold start, so a
/// plain cold start does not violate; chaos-driven reconnect backoffs
/// and degraded-host slowdowns do.
pub const SLO_MS: f64 = 150.0;

/// Fleet size for the sweep — small enough that the 18-point grid stays
/// test-speed, large enough that even heavy chaos (each host down ~20%
/// of the time) leaves somewhere to fail over to.
const HOSTS: usize = 6;
/// Invocations per host per point (~60–80 surge-seconds of fleet time:
/// several heavy-chaos MTBFs and the whole flash window).
const INVOCATIONS_PER_HOST: usize = 2_000;
/// Deployed functions — smaller than the fleet default so per-function
/// admission limits bind during the flash crowd.
const POPULATION: usize = 60;
/// Timeline window width — 12+ windows over the run, enough to see the
/// flash crowd enter and leave.
const WINDOW_MS: f64 = 5_000.0;

/// Chaos severity swept against every policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosLevel {
    /// No host faults: the surge-only baseline.
    None,
    /// Occasional crashes, mild degradation.
    Moderate,
    /// Frequent crashes, severe (thrashing-host) degradation.
    Heavy,
}

impl ChaosLevel {
    /// Sweep order.
    pub const ALL: [ChaosLevel; 3] = [ChaosLevel::None, ChaosLevel::Moderate, ChaosLevel::Heavy];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            ChaosLevel::None => "none",
            ChaosLevel::Moderate => "moderate",
            ChaosLevel::Heavy => "heavy",
        }
    }

    /// The chaos timeline this level seeds.
    pub fn chaos(self) -> ChaosConfig {
        match self {
            ChaosLevel::None => ChaosConfig::none(),
            ChaosLevel::Moderate => ChaosConfig {
                host_mtbf_ms: 30_000.0,
                crash_downtime_ms: 2_000.0,
                degrade_mtbf_ms: 25_000.0,
                degrade_duration_ms: 3_000.0,
                degrade_slowdown: 5.0,
            },
            ChaosLevel::Heavy => ChaosConfig {
                host_mtbf_ms: 10_000.0,
                crash_downtime_ms: 2_500.0,
                degrade_mtbf_ms: 10_000.0,
                degrade_duration_ms: 4_000.0,
                degrade_slowdown: 30.0,
            },
        }
    }
}

/// The non-stationary traffic every point replays: a diurnal ramp plus
/// an 8x flash crowd on the hottest function.
fn surge() -> SurgeConfig {
    SurgeConfig {
        diurnal_amplitude: 0.3,
        diurnal_period_ms: 60_000.0,
        flash_multiplier: 8.0,
        flash_start_ms: 15_000.0,
        flash_duration_ms: 20_000.0,
    }
}

/// Admission knobs when the sweep point enables the controller: tight
/// per-function limits (so the flash crowd actually sheds) and a
/// memory-pressure rung that degrades restores first.
fn admission_on() -> AdmissionConfig {
    AdmissionConfig {
        enabled: true,
        reserved_concurrency: 1,
        burst_concurrency: 2,
        host_concurrency: 24,
        memory_pressure_instances: 40,
    }
}

/// One sweep point's fleet configuration.
fn fleet_config(policy: RoutingPolicy, level: ChaosLevel, admission: bool) -> FleetConfig {
    FleetConfig {
        hosts: HOSTS,
        invocations: HOSTS * INVOCATIONS_PER_HOST,
        population: POPULATION,
        policy,
        chaos: level.chaos(),
        hedge: HedgeConfig {
            enabled: true,
            max_fraction: 0.05,
        },
        retry_budget: RetryBudget::new(10.0, 0.1).expect("budget knobs are valid"),
        admission: if admission {
            admission_on()
        } else {
            AdmissionConfig::disabled()
        },
        surge: surge(),
        // Windowed time-series: the sweep reports per-window timelines
        // (latency percentiles, shed rate, SLO burn) instead of only
        // end-of-run scalars.
        series_window_ms: WINDOW_MS,
        series_slo_ms: SLO_MS,
        // Heavier backoff than the platform default so waiting out a
        // host outage is visible at the SLO (60ms doubling to 500ms).
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 60.0,
            backoff_multiplier: 2.0,
            max_backoff_ms: 500.0,
            jitter: 0.3,
            deadline_ms: 10_000.0,
        },
        ..FleetConfig::default()
    }
}

/// Served requests slower than `slo_ms`, by histogram bucket walk (the
/// bucket containing the threshold counts as violating, so the rate is
/// a conservative upper bound — consistent with the histogram's
/// `P99 >= actual` convention).
fn over_slo(run: &FleetRun, slo_ms: f64) -> u64 {
    let first = bucket_index((slo_ms * 1_000.0) as u64);
    (first..BUCKETS).map(|i| run.latency_us.bucket_count(i)).sum()
}

/// One sweep point: a routing policy under a chaos level, admission on
/// or off, over identical surge traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Routing policy label.
    pub policy: &'static str,
    /// Chaos level label.
    pub chaos: &'static str,
    /// Whether admission control was enabled.
    pub admission: bool,
    /// Fraction of served requests exceeding [`SLO_MS`] (abandoned
    /// requests count as violations).
    pub slo_violation_rate: f64,
    /// Arrivals rejected by the admission ladder's last rung.
    pub shed: u64,
    /// Cold starts degraded to lazy-paging restores under memory
    /// pressure.
    pub degraded_restores: u64,
    /// Arrivals re-routed around an open breaker.
    pub failovers: u64,
    /// Hedged dispatches to half-open hosts.
    pub hedges: u64,
    /// Whole-host crashes over the run.
    pub host_crashes: u64,
    /// Mean dispatch attempts per served invocation (1.0 = no retries).
    pub retry_amplification: f64,
    /// Fraction of served invocations with no warm instance.
    pub cold_start_rate: f64,
    /// Fraction served warm but microarchitecturally cold.
    pub lukewarm_fraction: f64,
    /// Fraction served truly warm.
    pub warm_fraction: f64,
    /// Mean end-to-end latency, ms.
    pub mean_ms: f64,
    /// Tail latency, ms.
    pub p99_ms: f64,
}

/// One window of one sweep point's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineRow {
    /// Routing policy label.
    pub policy: &'static str,
    /// Chaos level label.
    pub chaos: &'static str,
    /// Whether admission control was enabled.
    pub admission: bool,
    /// The windowed statistics.
    pub window: WindowRow,
}

/// The full sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per (policy, chaos level, admission) point.
    pub rows: Vec<Row>,
    /// Per-window timelines ([`WINDOW_MS`]-wide), one run per point, in
    /// sweep order. The series is plain aggregation, not cfg-gated, so
    /// it is populated even in `obs_disabled` builds.
    pub timelines: Vec<TimelineRow>,
}

/// Cell grid: the same calibration runs as the fleet sweep, so a shared
/// engine simulates them once for both experiments.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    fleet_scale::plan(params)
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "surge"
    }
    fn description(&self) -> &'static str {
        "Resilience sweep: policy x chaos level x admission under a flash crowd"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(try_run_experiment_with(engine, params)?))
    }
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics on invalid configuration; see [`try_run_experiment`].
pub fn run_experiment(params: &ExperimentParams) -> Data {
    match try_run_experiment(params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_experiment`] for callers that map
/// [`SimError`] to exit codes (the CLI).
pub fn try_run_experiment(params: &ExperimentParams) -> Result<Data, SimError> {
    try_run_experiment_with(&Engine::single(), params)
}

/// Fallible run whose calibration goes through a shared engine.
pub fn try_run_experiment_with(
    engine: &Engine,
    params: &ExperimentParams,
) -> Result<Data, SimError> {
    let model = fleet_scale::calibrate_model_with(engine, params)?;
    let mut rows = Vec::new();
    let mut timelines = Vec::new();
    for level in ChaosLevel::ALL {
        for admission in [false, true] {
            for policy in RoutingPolicy::ALL {
                let (row, timeline) = run_point(&model, policy, level, admission)?;
                rows.push(row);
                timelines.extend(timeline.into_iter().map(|window| TimelineRow {
                    policy: policy.label(),
                    chaos: level.label(),
                    admission,
                    window,
                }));
            }
        }
    }
    Ok(Data { rows, timelines })
}

fn run_point(
    model: &ServiceModel,
    policy: RoutingPolicy,
    level: ChaosLevel,
    admission: bool,
) -> Result<(Row, Vec<WindowRow>), SimError> {
    let run = run_fleet(&fleet_config(policy, level, admission), model, false)?;
    let served = run.latency_us.count();
    let row = Row {
        policy: policy.label(),
        chaos: level.label(),
        admission,
        slo_violation_rate: if served == 0 {
            0.0
        } else {
            (over_slo(&run, SLO_MS) + run.abandoned).min(served) as f64 / served as f64
        },
        shed: run.shed,
        degraded_restores: run.degraded_restores,
        failovers: run.failovers,
        hedges: run.hedges,
        host_crashes: run.host_crashes,
        retry_amplification: run.retry_amplification(),
        cold_start_rate: run.cold_start_rate(),
        lukewarm_fraction: run.lukewarm_fraction(),
        warm_fraction: if run.invocations == 0 {
            0.0
        } else {
            run.warm_hits as f64 / run.invocations as f64
        },
        mean_ms: run.mean_latency_ms(),
        p99_ms: run.p99_ms(),
    };
    Ok((row, run.timeline))
}

impl Data {
    /// Rows at one chaos level, in sweep order.
    pub fn rows_at(&self, level: ChaosLevel) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.chaos == level.label()).collect()
    }

    /// Mean SLO-violation rate over the rows at `level`.
    pub fn mean_violation_rate(&self, level: ChaosLevel) -> f64 {
        let rows = self.rows_at(level);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.slo_violation_rate).sum::<f64>() / rows.len() as f64
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Surge: policy x chaos x admission under a flash crowd, SLO {SLO_MS}ms"
        )?;
        let mut t = TextTable::new(&[
            "policy",
            "chaos",
            "admission",
            "SLO viol %",
            "shed",
            "degraded",
            "failovers",
            "hedges",
            "crashes",
            "retry amp",
            "cold %",
            "lukewarm %",
            "warm %",
            "mean ms",
            "p99 ms",
        ]);
        for r in &self.rows {
            t.row(&[
                r.policy.to_string(),
                r.chaos.to_string(),
                if r.admission { "on" } else { "off" }.to_string(),
                format!("{:.2}", r.slo_violation_rate * 100.0),
                r.shed.to_string(),
                r.degraded_restores.to_string(),
                r.failovers.to_string(),
                r.hedges.to_string(),
                r.host_crashes.to_string(),
                format!("{:.3}", r.retry_amplification),
                format!("{:.1}", r.cold_start_rate * 100.0),
                format!("{:.1}", r.lukewarm_fraction * 100.0),
                format!("{:.1}", r.warm_fraction * 100.0),
                format!("{:.3}", r.mean_ms),
                format!("{:.3}", r.p99_ms),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "Mean SLO violations: fault-free {:.2}% vs heavy chaos {:.2}%",
            self.mean_violation_rate(ChaosLevel::None) * 100.0,
            self.mean_violation_rate(ChaosLevel::Heavy) * 100.0,
        )?;
        // The headline point's timeline: heavy chaos with admission on,
        // under the keep-alive-aware router. Empty windows print "-"
        // (percentile of nothing is None, never a fake zero).
        let headline: Vec<&TimelineRow> = self
            .timelines
            .iter()
            .filter(|t| t.chaos == "heavy" && t.admission && t.policy == "keep-alive-aware")
            .collect();
        if headline.is_empty() {
            return Ok(());
        }
        writeln!(
            f,
            "\nTimeline (keep-alive-aware, heavy chaos, admission on):"
        )?;
        let fmt_ms = |v: Option<f64>| match v {
            Some(ms) => format!("{ms:.1}"),
            None => "-".to_string(),
        };
        let mut t = TextTable::new(&[
            "window s", "arrivals", "p50 ms", "p99 ms", "shed %", "burn %", "cold %", "luke %",
            "warm %",
        ]);
        for row in headline {
            let w = &row.window;
            t.row(&[
                format!("{:.0}", w.start_ms / 1000.0),
                w.arrivals.to_string(),
                fmt_ms(w.p50_ms),
                fmt_ms(w.p99_ms),
                format!("{:.1}", w.shed_rate * 100.0),
                format!("{:.1}", w.slo_burn * 100.0),
                format!("{:.1}", w.cold_frac * 100.0),
                format!("{:.1}", w.luke_frac * 100.0),
                format!("{:.1}", w.warm_frac * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut sweep = luke_obs::Dataset::new(
            "surge.sweep",
            &[
                "policy",
                "chaos",
                "admission",
                "slo_violation_rate",
                "shed",
                "degraded_restores",
                "failovers",
                "hedges",
                "host_crashes",
                "retry_amplification",
                "cold_start_rate",
                "lukewarm_fraction",
                "warm_fraction",
                "mean_ms",
                "p99_ms",
            ],
        );
        for r in &self.rows {
            sweep.push_row(vec![
                r.policy.into(),
                r.chaos.into(),
                u64::from(r.admission).into(),
                r.slo_violation_rate.into(),
                r.shed.into(),
                r.degraded_restores.into(),
                r.failovers.into(),
                r.hedges.into(),
                r.host_crashes.into(),
                r.retry_amplification.into(),
                r.cold_start_rate.into(),
                r.lukewarm_fraction.into(),
                r.warm_fraction.into(),
                r.mean_ms.into(),
                r.p99_ms.into(),
            ]);
        }
        let mut timeline = luke_obs::Dataset::new(
            "surge.timeline",
            &[
                "policy",
                "chaos",
                "admission",
                "window_start_ms",
                "arrivals",
                "p50_ms",
                "p99_ms",
                "shed_rate",
                "slo_burn",
                "cold_frac",
                "luke_frac",
                "warm_frac",
            ],
        );
        for t in &self.timelines {
            let w = &t.window;
            timeline.push_row(vec![
                t.policy.into(),
                t.chaos.into(),
                u64::from(t.admission).into(),
                w.start_ms.into(),
                w.arrivals.into(),
                // Empty windows export as NaN, which the JSON writer
                // renders as null (never a fake 0).
                w.p50_ms.unwrap_or(f64::NAN).into(),
                w.p99_ms.unwrap_or(f64::NAN).into(),
                w.shed_rate.into(),
                w.slo_burn.into(),
                w.cold_frac.into(),
                w.luke_frac.into(),
                w.warm_frac.into(),
            ]);
        }
        vec![sweep, timeline]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_experiment(&ExperimentParams::quick())
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        let d = data();
        assert_eq!(
            d.rows.len(),
            RoutingPolicy::ALL.len() * ChaosLevel::ALL.len() * 2
        );
    }

    #[test]
    fn fault_free_points_see_no_resilience_activity() {
        let d = data();
        for r in d.rows_at(ChaosLevel::None) {
            assert_eq!(r.host_crashes, 0, "{}: crashes without chaos", r.policy);
            assert_eq!(r.failovers, 0, "{}: failovers without chaos", r.policy);
            assert_eq!(r.hedges, 0, "{}: hedges without half-open hosts", r.policy);
            if !r.admission {
                assert_eq!(r.shed, 0, "{}: shed without admission", r.policy);
                assert!(
                    (r.retry_amplification - 1.0).abs() < 1e-12,
                    "{}: retries without faults",
                    r.policy
                );
            }
        }
    }

    #[test]
    fn heavy_chaos_crashes_hosts_and_fails_over_everywhere() {
        let d = data();
        for r in d.rows_at(ChaosLevel::Heavy) {
            assert!(r.host_crashes > 0, "{} adm={}: no crashes", r.policy, r.admission);
            assert!(r.failovers > 0, "{} adm={}: no failovers", r.policy, r.admission);
            assert!(
                r.retry_amplification > 1.0,
                "{} adm={}: down-host reconnects must retry",
                r.policy,
                r.admission
            );
        }
    }

    #[test]
    fn chaos_raises_the_slo_violation_rate() {
        let d = data();
        let none = d.mean_violation_rate(ChaosLevel::None);
        let heavy = d.mean_violation_rate(ChaosLevel::Heavy);
        assert!(heavy > none, "heavy {heavy} vs fault-free {none}");
    }

    #[test]
    fn admission_sheds_the_flash_crowd() {
        let d = data();
        let shed_on: u64 = d.rows.iter().filter(|r| r.admission).map(|r| r.shed).sum();
        let shed_off: u64 = d.rows.iter().filter(|r| !r.admission).map(|r| r.shed).sum();
        assert!(shed_on > 0, "tight limits under an 8x flash must shed");
        assert_eq!(shed_off, 0, "no controller, no shedding");
    }

    #[test]
    fn render_reports_the_sweep_and_exports_two_datasets() {
        let d = data();
        let s = d.to_string();
        assert!(s.contains("Mean SLO violations"));
        assert!(s.contains("heavy"));
        assert!(s.contains("Timeline (keep-alive-aware"));
        let datasets = luke_obs::Export::datasets(&d);
        assert_eq!(datasets.len(), 2);
        assert_eq!(datasets[0].name, "surge.sweep");
        assert_eq!(datasets[0].rows.len(), d.rows.len());
        assert_eq!(datasets[1].name, "surge.timeline");
        assert_eq!(datasets[1].rows.len(), d.timelines.len());
    }

    #[test]
    fn timelines_track_the_flash_crowd_per_window() {
        let d = data();
        // Every sweep point reports a multi-window timeline.
        for r in &d.rows {
            let windows: Vec<_> = d
                .timelines
                .iter()
                .filter(|t| t.policy == r.policy && t.chaos == r.chaos && t.admission == r.admission)
                .collect();
            assert!(windows.len() >= 3, "{} {}: {} windows", r.policy, r.chaos, windows.len());
            // Windowed arrivals cover every routed invocation.
            let arrivals: u64 = windows.iter().map(|t| t.window.arrivals).sum();
            assert!(arrivals > 0, "{} {}: empty timeline", r.policy, r.chaos);
        }
        // The flash window (15s–35s) concentrates arrivals: its busiest
        // window beats the pre-flash baseline window.
        let heavy_off: Vec<_> = d
            .timelines
            .iter()
            .filter(|t| t.chaos == "none" && !t.admission && t.policy == "keep-alive-aware")
            .collect();
        let at = |ms: f64| {
            heavy_off
                .iter()
                .find(|t| t.window.start_ms <= ms && ms < t.window.start_ms + WINDOW_MS)
                .map(|t| t.window.arrivals)
                .unwrap_or(0)
        };
        assert!(
            at(20_000.0) > at(5_000.0),
            "flash window {} vs baseline {}",
            at(20_000.0),
            at(5_000.0)
        );
        // Shedding shows up in the windowed shed rate exactly when the
        // controller is on.
        let shed_on: f64 = d
            .timelines
            .iter()
            .filter(|t| t.admission)
            .map(|t| t.window.shed_rate)
            .sum();
        let shed_off: f64 = d
            .timelines
            .iter()
            .filter(|t| !t.admission)
            .map(|t| t.window.shed_rate)
            .sum();
        assert!(shed_on > 0.0);
        assert_eq!(shed_off, 0.0);
    }
}
