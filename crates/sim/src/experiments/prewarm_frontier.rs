//! **Pre-warm frontier** — memory-seconds vs tail latency, fixed
//! keep-alive vs predictive policy, per cold-start model.
//!
//! Every keep-alive window buys tail latency with memory: hold
//! instances longer and fewer arrivals start cold, but idle instances
//! bill instance-seconds the whole time. This experiment charts that
//! trade-off. Identical Zipf traffic is replayed under three fixed
//! windows (15 s, 2 min, 10 min), under the predictive policy from
//! `luke-predict` (per-function adaptive keep-alive plus IAT-driven
//! REAP pre-restores, capped at the 10-minute window), and against an
//! *oracle* reference that foresees every arrival and pays only the
//! restore lead time. The sweep repeats per [`luke_fleet::ColdStartModel`]
//! — a flat boot, a lazily-paged snapshot restore, and a REAP prefetch —
//! because the cheaper a cold start is, the less memory a rational
//! policy should spend avoiding one.
//!
//! Service times are calibrated from the cycle-accurate core exactly as
//! in [`fleet_scale`] (same cells, so a shared engine simulates them
//! once). The headline check: the adaptive policy lands strictly below
//! at least one fixed window on memory-seconds without giving up P99 —
//! it decays the Zipf tail early while predictions keep the head warm.
//!
//! The predictive policy's decisions execute as `PrewarmTimer` /
//! `AdaptiveDecay` entries in each host's calendar queue (see
//! `docs/PREDICT.md`), so the adaptive rows share the fixed windows'
//! event order exactly — the frontier differences are pure policy, not
//! scheduling artifacts.

use crate::engine::{Cell, Engine};
use crate::experiments::fleet_scale;
use crate::runner::ExperimentParams;
use luke_common::table::TextTable;
use luke_common::SimError;
use luke_fleet::{
    run_fleet, ColdStartModel, FleetConfig, FleetRun, PrewarmConfig,
};
use luke_obs::hist::{bucket_index, BUCKETS};
use std::fmt;

/// End-to-end latency SLO, ms. Warm paper-suite service times sit well
/// under it; any cold start (even a REAP restore) blows through it, so
/// the violation rate tracks the cold-start rate each policy tolerates.
pub const SLO_MS: f64 = 25.0;

/// Fleet size — small enough that the 12-point grid stays test-speed.
const HOSTS: usize = 4;
/// Invocations per host per point (~100 fleet-seconds at the default
/// 20/s per host, so the short fixed window below actually binds).
const INVOCATIONS_PER_HOST: usize = 2_000;
/// Fixed keep-alive windows swept, minutes: aggressive, provider-short,
/// Azure-style long. The long window doubles as the adaptive policy's
/// cap.
pub const FIXED_KEEP_ALIVE_MINUTES: [f64; 3] = [0.25, 2.0, 10.0];
/// The adaptive policy's hold cap, minutes (the longest fixed window,
/// so the comparison isolates the policy, not the budget).
pub const ADAPTIVE_CAP_MINUTES: f64 = 10.0;

/// Cold-start models swept; each gets its own frontier.
pub const MODELS: [ColdStartModel; 3] = [
    ColdStartModel::Instant,
    ColdStartModel::LazyPaging,
    ColdStartModel::ReapPrefetch,
];

/// The predictive policy under test: conservative early decay (99th
/// IAT percentile, 1 s floor) with median-IAT pre-warm scheduling.
/// `min_samples` is low enough that the ~100-second run actually
/// graduates the Zipf head out of the under-sampled (hold = cap) state.
fn adaptive_policy() -> PrewarmConfig {
    PrewarmConfig {
        min_samples: 32,
        ..PrewarmConfig::default_enabled()
    }
}

/// One frontier point: a keep-alive policy under one cold-start model.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Cold-start model label.
    pub model: &'static str,
    /// Policy label: `fixed`, `adaptive`, or `oracle`.
    pub policy: &'static str,
    /// Keep-alive window (fixed) or hold cap (adaptive), minutes.
    pub keep_alive_min: f64,
    /// Total instance-seconds of pool residency billed by the run.
    pub memory_instance_s: f64,
    /// Fraction of invocations with no warm instance.
    pub cold_start_rate: f64,
    /// Fraction of served requests exceeding [`SLO_MS`].
    pub slo_violation_rate: f64,
    /// Mean end-to-end latency, ms.
    pub mean_ms: f64,
    /// Tail latency, ms.
    pub p99_ms: f64,
    /// Pre-restores actually spawned (adaptive only).
    pub prewarm_spawns: u64,
    /// Arrivals served off a finished pre-restore (adaptive only).
    pub prewarm_hits: u64,
    /// Arrivals whose hold was shortened below the cap (adaptive only).
    pub early_decays: u64,
}

/// The full sweep: one frontier per cold-start model.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per (model, policy) point, fixed windows first.
    pub rows: Vec<Row>,
}

/// Cell grid: the same calibration runs as the fleet sweep, so a shared
/// engine simulates them once for both experiments.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    fleet_scale::plan(params)
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "prewarm-frontier"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["prewarm_frontier", "prewarm"]
    }
    fn description(&self) -> &'static str {
        "Memory-seconds vs P99 frontier: fixed keep-alive vs predictive pre-warming"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(try_run_experiment_with(engine, params)?))
    }
}

/// Served requests slower than `slo_ms`, by histogram bucket walk (the
/// bucket containing the threshold counts as violating — a conservative
/// upper bound, consistent with the histogram's `P99 >= actual`
/// convention).
fn over_slo(run: &FleetRun, slo_ms: f64) -> u64 {
    let first = bucket_index((slo_ms * 1_000.0) as u64);
    (first..BUCKETS).map(|i| run.latency_us.bucket_count(i)).sum()
}

/// One sweep point's fleet configuration.
fn fleet_config(model: ColdStartModel, keep_alive_min: f64, prewarm: PrewarmConfig) -> FleetConfig {
    FleetConfig {
        hosts: HOSTS,
        invocations: HOSTS * INVOCATIONS_PER_HOST,
        keep_alive_ms: keep_alive_min * 60_000.0,
        cold_start_model: model,
        prewarm,
        ..FleetConfig::default()
    }
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics on invalid configuration; see [`try_run_experiment`].
pub fn run_experiment(params: &ExperimentParams) -> Data {
    match try_run_experiment(params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_experiment`] for callers that map
/// [`SimError`] to exit codes (the CLI).
pub fn try_run_experiment(params: &ExperimentParams) -> Result<Data, SimError> {
    try_run_experiment_with(&Engine::single(), params)
}

/// Fallible run whose calibration goes through a shared engine.
pub fn try_run_experiment_with(
    engine: &Engine,
    params: &ExperimentParams,
) -> Result<Data, SimError> {
    let model = fleet_scale::calibrate_model_with(engine, params)?;
    let mut rows = Vec::new();
    for cold_model in MODELS {
        for keep_alive_min in FIXED_KEEP_ALIVE_MINUTES {
            let config = fleet_config(cold_model, keep_alive_min, PrewarmConfig::disabled());
            let run = run_fleet(&config, &model, false)?;
            rows.push(point(&run, cold_model, "fixed", keep_alive_min));
        }
        let config = fleet_config(cold_model, ADAPTIVE_CAP_MINUTES, adaptive_policy());
        let adaptive = run_fleet(&config, &model, false)?;
        rows.push(point(&adaptive, cold_model, "adaptive", ADAPTIVE_CAP_MINUTES));
        rows.push(oracle_point(&rows, cold_model, &adaptive));
    }
    Ok(Data { rows })
}

/// Measures one simulated frontier point.
fn point(run: &FleetRun, model: ColdStartModel, policy: &'static str, keep_alive_min: f64) -> Row {
    let served = run.latency_us.count();
    Row {
        model: model.label(),
        policy,
        keep_alive_min,
        memory_instance_s: run.memory_instance_s(),
        cold_start_rate: run.cold_start_rate(),
        slo_violation_rate: if served == 0 {
            0.0
        } else {
            over_slo(run, SLO_MS).min(served) as f64 / served as f64
        },
        mean_ms: run.mean_latency_ms(),
        p99_ms: run.p99_ms(),
        prewarm_spawns: run.prewarm_spawns,
        prewarm_hits: run.prewarm_hits,
        early_decays: run.early_decays,
    }
}

/// The oracle reference for one model: perfect prediction pre-restores
/// exactly one restore-lead ahead of every arrival, so it matches the
/// best measured latency while billing only the lead time — the
/// analytic floor the frontier converges toward, not a simulated run.
fn oracle_point(rows: &[Row], model: ColdStartModel, adaptive: &FleetRun) -> Row {
    let measured = rows.iter().filter(|r| r.model == model.label());
    let best_p99 = measured
        .clone()
        .map(|r| r.p99_ms)
        .fold(f64::INFINITY, f64::min);
    let best_mean = measured.map(|r| r.mean_ms).fold(f64::INFINITY, f64::min);
    // Lead time per arrival: the flat boot cost bounds every restore
    // path from above, so the floor is conservative (never understated).
    let lead_s = FleetConfig::default().cold_start_ms / 1000.0;
    Row {
        model: model.label(),
        policy: "oracle",
        keep_alive_min: 0.0,
        memory_instance_s: adaptive.invocations as f64 * lead_s,
        cold_start_rate: 0.0,
        slo_violation_rate: 0.0,
        mean_ms: best_mean,
        p99_ms: best_p99,
        prewarm_spawns: 0,
        prewarm_hits: 0,
        early_decays: 0,
    }
}

impl Data {
    /// Rows under one cold-start model, in sweep order.
    pub fn rows_for(&self, model: ColdStartModel) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.model == model.label()).collect()
    }

    /// Fixed windows the adaptive policy strictly dominates under
    /// `model`: lower memory-seconds at equal-or-better P99.
    pub fn dominated_fixed_windows(&self, model: ColdStartModel) -> Vec<f64> {
        let rows = self.rows_for(model);
        let Some(adaptive) = rows.iter().find(|r| r.policy == "adaptive") else {
            return Vec::new();
        };
        rows.iter()
            .filter(|r| {
                r.policy == "fixed"
                    && adaptive.memory_instance_s < r.memory_instance_s
                    && adaptive.p99_ms <= r.p99_ms
            })
            .map(|r| r.keep_alive_min)
            .collect()
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pre-warm frontier: memory-seconds vs P99 per cold-start model, SLO {SLO_MS}ms"
        )?;
        let mut t = TextTable::new(&[
            "model",
            "policy",
            "window",
            "memory inst-s",
            "cold %",
            "SLO viol %",
            "mean ms",
            "p99 ms",
            "pre-spawns",
            "pre-hits",
            "decays",
        ]);
        for r in &self.rows {
            t.row(&[
                r.model.to_string(),
                r.policy.to_string(),
                if r.policy == "oracle" {
                    "-".to_string()
                } else {
                    format!("{:.2}min", r.keep_alive_min)
                },
                format!("{:.1}", r.memory_instance_s),
                format!("{:.1}", r.cold_start_rate * 100.0),
                format!("{:.2}", r.slo_violation_rate * 100.0),
                format!("{:.3}", r.mean_ms),
                format!("{:.3}", r.p99_ms),
                r.prewarm_spawns.to_string(),
                r.prewarm_hits.to_string(),
                r.early_decays.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        for model in MODELS {
            let dominated = self.dominated_fixed_windows(model);
            if dominated.is_empty() {
                writeln!(
                    f,
                    "{}: adaptive dominates no fixed window",
                    model.label()
                )?;
            } else {
                writeln!(
                    f,
                    "{}: adaptive strictly dominates fixed {} (less memory, P99 no worse)",
                    model.label(),
                    dominated
                        .iter()
                        .map(|m| format!("{m:.2}min"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )?;
            }
        }
        Ok(())
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut frontier = luke_obs::Dataset::new(
            "prewarm_frontier.sweep",
            &[
                "model",
                "policy",
                "keep_alive_min",
                "memory_instance_s",
                "cold_start_rate",
                "slo_violation_rate",
                "mean_ms",
                "p99_ms",
                "prewarm_spawns",
                "prewarm_hits",
                "early_decays",
            ],
        );
        for r in &self.rows {
            frontier.push_row(vec![
                r.model.into(),
                r.policy.into(),
                r.keep_alive_min.into(),
                r.memory_instance_s.into(),
                r.cold_start_rate.into(),
                r.slo_violation_rate.into(),
                r.mean_ms.into(),
                r.p99_ms.into(),
                r.prewarm_spawns.into(),
                r.prewarm_hits.into(),
                r.early_decays.into(),
            ]);
        }
        let mut dominance = luke_obs::Dataset::new(
            "prewarm_frontier.dominance",
            &["model", "dominated_fixed_windows"],
        );
        for model in MODELS {
            dominance.push_row(vec![
                model.label().into(),
                (self.dominated_fixed_windows(model).len() as u64).into(),
            ]);
        }
        vec![frontier, dominance]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_experiment(&ExperimentParams::quick())
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        let d = data();
        // Per model: the fixed windows, one adaptive point, one oracle.
        assert_eq!(
            d.rows.len(),
            MODELS.len() * (FIXED_KEEP_ALIVE_MINUTES.len() + 2)
        );
        for model in MODELS {
            assert_eq!(d.rows_for(model).len(), FIXED_KEEP_ALIVE_MINUTES.len() + 2);
        }
    }

    #[test]
    fn longer_fixed_windows_buy_latency_with_memory() {
        let d = data();
        for model in MODELS {
            let rows = d.rows_for(model);
            let short = rows
                .iter()
                .find(|r| r.policy == "fixed" && r.keep_alive_min < 1.0)
                .unwrap();
            let long = rows
                .iter()
                .find(|r| r.policy == "fixed" && r.keep_alive_min >= 10.0)
                .unwrap();
            assert!(
                short.memory_instance_s < long.memory_instance_s,
                "{}: short window must bill less memory",
                model.label()
            );
            assert!(
                short.cold_start_rate > long.cold_start_rate,
                "{}: short window must start colder",
                model.label()
            );
        }
    }

    #[test]
    fn adaptive_dominates_at_least_one_fixed_window_per_model() {
        let d = data();
        for model in MODELS {
            let dominated = d.dominated_fixed_windows(model);
            assert!(
                !dominated.is_empty(),
                "{}: adaptive must dominate a fixed window\n{d}",
                model.label()
            );
        }
    }

    #[test]
    fn adaptive_policy_actually_predicts() {
        let d = data();
        for model in MODELS {
            let rows = d.rows_for(model);
            let adaptive = rows.iter().find(|r| r.policy == "adaptive").unwrap();
            assert!(adaptive.early_decays > 0, "{}: no early decays", model.label());
            assert!(
                adaptive.memory_instance_s > 0.0,
                "{}: memory must be billed",
                model.label()
            );
        }
    }

    #[test]
    fn oracle_is_the_latency_floor() {
        let d = data();
        for model in MODELS {
            let rows = d.rows_for(model);
            let oracle = rows.iter().find(|r| r.policy == "oracle").unwrap();
            for r in &rows {
                assert!(
                    oracle.p99_ms <= r.p99_ms,
                    "{}: oracle p99 above {}",
                    model.label(),
                    r.policy
                );
            }
            assert_eq!(oracle.cold_start_rate, 0.0);
        }
    }

    #[test]
    fn render_reports_the_frontier_and_exports_two_datasets() {
        let d = data();
        let s = d.to_string();
        assert!(s.contains("Pre-warm frontier"));
        assert!(s.contains("adaptive strictly dominates"));
        let datasets = luke_obs::Export::datasets(&d);
        assert_eq!(datasets.len(), 2);
        assert_eq!(datasets[0].name, "prewarm_frontier.sweep");
        assert_eq!(datasets[0].rows.len(), d.rows.len());
        assert_eq!(datasets[1].name, "prewarm_frontier.dominance");
        assert_eq!(datasets[1].rows.len(), MODELS.len());
    }
}
