//! **Figure 11** — L2 instruction-miss coverage, uncovered misses and
//! overprediction, normalized to the interleaved baseline's miss count.
//!
//! Paper shape: coverage correlates with language — Go functions reach
//! 75–90% (their metadata fits the 16KB budget), Python/NodeJS 48–74%
//! (metadata overflows); overprediction averages just 10% (max ≈15.8%),
//! reflecting the high cross-invocation commonality.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::mean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// Coverage results for one function (fractions of baseline L2
/// instruction misses).
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// Baseline misses eliminated by a demand hit on a prefetched line.
    pub covered: f64,
    /// Misses remaining with Jukebox.
    pub uncovered: f64,
    /// Prefetched-but-never-referenced lines.
    pub overpredicted: f64,
}

/// The complete Figure 11 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
}

/// Cell grid: (baseline, Jukebox) × suite, all lukewarm.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    baseline_jukebox_plan(&SystemConfig::skylake(), params)
}

/// The shared (baseline, Jukebox) × suite grid — fig11, fig12 and the
/// per-platform halves of table3 all request exactly these cells, which
/// is where the cross-figure cache earns its keep.
pub fn baseline_jukebox_plan(config: &SystemConfig, params: &ExperimentParams) -> Vec<Cell> {
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            [
                PrefetcherKind::None,
                PrefetcherKind::Jukebox(config.jukebox),
            ]
            .into_iter()
            .map(move |kind| Cell::new(config, &profile, kind, RunSpec::lukewarm(), params))
            .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig11"
    }
    fn description(&self) -> &'static str {
        "L2 instruction-miss coverage, uncovered misses and overprediction"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Measures coverage for one function.
pub fn measure_function(
    engine: &Engine,
    config: &SystemConfig,
    profile: &workloads::FunctionProfile,
    params: &ExperimentParams,
) -> Row {
    let baseline = engine.run(
        config,
        profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        params,
    );
    let jukebox = engine.run(
        config,
        profile,
        PrefetcherKind::Jukebox(config.jukebox),
        RunSpec::lukewarm(),
        params,
    );
    let base_misses = baseline.mem.l2.instr.misses.max(1) as f64;
    let covered = jukebox.mem.l2.prefetch_first_hits as f64;
    let overpredicted = jukebox
        .mem
        .l2
        .prefetch_fills
        .saturating_sub(jukebox.mem.l2.prefetch_first_hits) as f64;
    Row {
        function: profile.name.clone(),
        covered: covered / base_misses,
        uncovered: jukebox.mem.l2.instr.misses as f64 / base_misses,
        overpredicted: overpredicted / base_misses,
    }
}

/// Runs Figure 11 over the whole suite (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs Figure 11 through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let rows = paper_suite()
        .into_iter()
        .map(|p| measure_function(engine, &config, &p.scaled(params.scale), params))
        .collect();
    Data { rows }
}

impl Data {
    /// Mean coverage across the suite.
    pub fn mean_coverage(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.covered).collect::<Vec<_>>())
    }

    /// Mean overprediction across the suite (the paper's ≈10%).
    pub fn mean_overprediction(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.overpredicted)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean coverage restricted to functions whose name ends in the
    /// given language suffix (e.g. `'G'`).
    pub fn mean_coverage_for_suffix(&self, suffix: char) -> f64 {
        let values: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.function.ends_with(suffix))
            .map(|r| r.covered)
            .collect();
        mean(&values)
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11: L2 instruction-miss coverage (fractions of baseline misses)"
        )?;
        let mut t = TextTable::new(&["function", "covered", "uncovered", "overpredicted"]);
        for row in &self.rows {
            t.row(&[
                row.function.clone(),
                format!("{:.0}%", row.covered * 100.0),
                format!("{:.0}%", row.uncovered * 100.0),
                format!("{:.0}%", row.overpredicted * 100.0),
            ]);
        }
        writeln!(
            f,
            "{t}Mean coverage {:.0}%, mean overprediction {:.0}%",
            self.mean_coverage() * 100.0,
            self.mean_overprediction() * 100.0
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut coverage = luke_obs::Dataset::new(
            "fig11.coverage",
            &["function", "covered", "uncovered", "overpredicted"],
        );
        for row in &self.rows {
            coverage.push_row(vec![
                row.function.clone().into(),
                row.covered.into(),
                row.uncovered.into(),
                row.overpredicted.into(),
            ]);
        }
        let mut means = luke_obs::Dataset::new(
            "fig11.means",
            &["mean coverage", "mean overprediction"],
        );
        means.push_row(vec![
            self.mean_coverage().into(),
            self.mean_overprediction().into(),
        ]);
        vec![coverage, means]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    fn measure(name: &str) -> Row {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
        measure_function(&Engine::single(), &config, &profile, &params)
    }

    #[test]
    fn coverage_is_substantial() {
        let row = measure("Auth-G");
        assert!(row.covered > 0.4, "coverage {}", row.covered);
        assert!(row.uncovered < 0.7, "uncovered {}", row.uncovered);
    }

    #[test]
    fn coverage_plus_uncovered_accounts_for_baseline() {
        let row = measure("Ship-G");
        let total = row.covered + row.uncovered;
        // Not exactly 1.0 (stochastic invocation variation), but close.
        assert!(
            (0.6..1.45).contains(&total),
            "covered {} + uncovered {} = {total}",
            row.covered,
            row.uncovered
        );
    }

    #[test]
    fn overprediction_is_modest() {
        let row = measure("Fib-G");
        assert!(
            row.overpredicted < 0.5,
            "overprediction {}",
            row.overpredicted
        );
    }

    #[test]
    fn render_has_percentages() {
        let data = Data {
            rows: vec![Row {
                function: "Auth-G".into(),
                covered: 0.85,
                uncovered: 0.15,
                overpredicted: 0.10,
            }],
        };
        let s = data.to_string();
        assert!(s.contains("85%"));
        assert!(s.contains("Mean coverage"));
    }
}
