//! **Figures 2, 3 and 4** — Top-Down CPI analysis of reference vs
//! interleaved execution for all 20 functions.
//!
//! Figure 2 stacks each function's CPI into retiring / front-end / bad
//! speculation / back-end for both configurations (reference = repeated
//! back-to-back invocations; interleaved = all microarchitectural state
//! flushed between invocations). Figure 3 isolates the front-end portion
//! and splits it into fetch latency vs fetch bandwidth. Figure 4
//! aggregates the means. Paper headlines: interleaving raises CPI by
//! 31–114% (70% average); fetch latency is ≈56% of the *extra* stall
//! cycles.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::mean;
use luke_common::table::TextTable;
use luke_obs::{Dataset, Export};
use sim_cpu::TopDown;
use std::fmt;
use workloads::paper_suite;

/// Per-function Top-Down results for both configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// Per-instruction CPI stack, reference execution.
    pub reference: TopDown,
    /// Per-instruction CPI stack, interleaved execution.
    pub interleaved: TopDown,
}

impl Row {
    /// Interleaved CPI increase over reference (the 31–114% band).
    pub fn cpi_increase(&self) -> f64 {
        self.interleaved.total() / self.reference.total() - 1.0
    }

    /// Fraction of the *extra* cycles (interleaved − reference) that are
    /// fetch-latency stalls (Figure 4's 56% headline).
    pub fn fetch_latency_share_of_extra(&self) -> f64 {
        let extra = self.interleaved.total() - self.reference.total();
        if extra <= 0.0 {
            return 0.0;
        }
        (self.interleaved.fetch_latency - self.reference.fetch_latency).max(0.0) / extra
    }
}

/// The complete Figures 2–4 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
}

/// Cell grid: (reference, interleaved) × suite, no prefetcher.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            [RunSpec::reference(), RunSpec::lukewarm()]
                .into_iter()
                .map(move |spec| Cell::new(&config, &profile, PrefetcherKind::None, spec, params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Runs reference + interleaved Top-Down for the whole suite (fresh
/// single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs reference + interleaved Top-Down through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let rows = paper_suite()
        .into_iter()
        .map(|p| {
            let profile = p.scaled(params.scale);
            let reference = engine.run(
                &config,
                &profile,
                PrefetcherKind::None,
                RunSpec::reference(),
                params,
            );
            let interleaved = engine.run(
                &config,
                &profile,
                PrefetcherKind::None,
                RunSpec::lukewarm(),
                params,
            );
            Row {
                function: profile.name.clone(),
                reference: reference.cpi_stack(),
                interleaved: interleaved.cpi_stack(),
            }
        })
        .collect();
    Data { rows }
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig02"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig03", "fig04"]
    }
    fn description(&self) -> &'static str {
        "Top-Down CPI stacks, reference vs interleaved execution (Figures 2-4)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

impl Data {
    /// Mean CPI increase across the suite (the 70% headline).
    pub fn mean_cpi_increase(&self) -> f64 {
        mean(&self.rows.iter().map(Row::cpi_increase).collect::<Vec<_>>())
    }

    /// Mean fetch-latency share of extra stalls (the 56% headline).
    pub fn mean_fetch_latency_share(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(Row::fetch_latency_share_of_extra)
                .collect::<Vec<_>>(),
        )
    }

    /// Renders Figure 2 (full Top-Down stacks).
    pub fn render_fig2(&self) -> String {
        let mut t = TextTable::new(&[
            "function", "config", "CPI", "retiring", "frontend", "bad_spec", "backend",
        ]);
        for row in &self.rows {
            for (label, td) in [("ref", &row.reference), ("interleaved", &row.interleaved)] {
                t.row(&[
                    row.function.clone(),
                    label.to_string(),
                    format!("{:.2}", td.total()),
                    format!("{:.2}", td.retiring),
                    format!("{:.2}", td.frontend()),
                    format!("{:.2}", td.bad_speculation),
                    format!("{:.2}", td.backend),
                ]);
            }
        }
        format!(
            "Figure 2: Top-Down CPI stacks (mean CPI increase {:.0}%)\n{t}",
            self.mean_cpi_increase() * 100.0
        )
    }

    /// Renders Figure 3 (front-end stalls: latency vs bandwidth,
    /// normalized to the reference front-end CPI).
    pub fn render_fig3(&self) -> String {
        let mut t = TextTable::new(&[
            "function",
            "ref_fetch_lat",
            "ref_fetch_bw",
            "int_fetch_lat",
            "int_fetch_bw",
            "norm_total",
        ]);
        for row in &self.rows {
            let base = row.reference.frontend().max(f64::MIN_POSITIVE);
            t.row(&[
                row.function.clone(),
                format!("{:.3}", row.reference.fetch_latency),
                format!("{:.3}", row.reference.fetch_bandwidth),
                format!("{:.3}", row.interleaved.fetch_latency),
                format!("{:.3}", row.interleaved.fetch_bandwidth),
                format!("{:.0}%", row.interleaved.frontend() / base * 100.0),
            ]);
        }
        format!("Figure 3: front-end stall breakdown\n{t}")
    }

    /// Renders Figure 4 (mean interleaved CPI normalized to reference,
    /// split into fetch latency / fetch bandwidth / rest).
    pub fn render_fig4(&self) -> String {
        let ref_cpi = mean(
            &self
                .rows
                .iter()
                .map(|r| r.reference.total())
                .collect::<Vec<_>>(),
        );
        let int_cpi = mean(
            &self
                .rows
                .iter()
                .map(|r| r.interleaved.total())
                .collect::<Vec<_>>(),
        );
        let int_lat = mean(
            &self
                .rows
                .iter()
                .map(|r| r.interleaved.fetch_latency)
                .collect::<Vec<_>>(),
        );
        let int_bw = mean(
            &self
                .rows
                .iter()
                .map(|r| r.interleaved.fetch_bandwidth)
                .collect::<Vec<_>>(),
        );
        format!(
            "Figure 4: mean interleaved CPI = {:.0}% of reference \
             (fetch latency {:.0}%, fetch bandwidth {:.0}%, rest {:.0}%); \
             fetch latency is {:.0}% of extra stalls\n",
            int_cpi / ref_cpi * 100.0,
            int_lat / ref_cpi * 100.0,
            int_bw / ref_cpi * 100.0,
            (int_cpi - int_lat - int_bw) / ref_cpi * 100.0,
            self.mean_fetch_latency_share() * 100.0,
        )
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\n{}\n{}",
            self.render_fig2(),
            self.render_fig3(),
            self.render_fig4()
        )
    }
}

impl Export for Data {
    fn datasets(&self) -> Vec<Dataset> {
        let mut fig2 = Dataset::new(
            "fig02.topdown",
            &[
                "function", "config", "CPI", "retiring", "frontend", "bad_spec", "backend",
            ],
        );
        let mut fig3 = Dataset::new(
            "fig03.frontend",
            &[
                "function",
                "ref_fetch_lat",
                "ref_fetch_bw",
                "int_fetch_lat",
                "int_fetch_bw",
                "norm_total",
            ],
        );
        for row in &self.rows {
            for (label, td) in [("ref", &row.reference), ("interleaved", &row.interleaved)] {
                fig2.push_row(vec![
                    row.function.clone().into(),
                    label.into(),
                    td.total().into(),
                    td.retiring.into(),
                    td.frontend().into(),
                    td.bad_speculation.into(),
                    td.backend.into(),
                ]);
            }
            let base = row.reference.frontend().max(f64::MIN_POSITIVE);
            fig3.push_row(vec![
                row.function.clone().into(),
                row.reference.fetch_latency.into(),
                row.reference.fetch_bandwidth.into(),
                row.interleaved.fetch_latency.into(),
                row.interleaved.fetch_bandwidth.into(),
                (row.interleaved.frontend() / base).into(),
            ]);
        }
        let mut fig4 = Dataset::new(
            "fig04.means",
            &["mean_cpi_increase", "mean_fetch_latency_share"],
        );
        fig4.push_row(vec![
            self.mean_cpi_increase().into(),
            self.mean_fetch_latency_share().into(),
        ]);
        vec![fig2, fig3, fig4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentParams;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            scale: 0.03,
            invocations: 2,
            warmup: 2,
        }
    }

    /// A cut-down run over a few functions for shape checks (the full
    /// 20-function suite runs in the bench harness).
    fn subset_data() -> Data {
        let params = tiny_params();
        let config = SystemConfig::skylake();
        let engine = Engine::single();
        let rows = ["Fib-G", "Auth-P", "Pay-N"]
            .iter()
            .map(|name| {
                let profile = workloads::FunctionProfile::named(name)
                    .unwrap()
                    .scaled(params.scale);
                let reference = engine.run(
                    &config,
                    &profile,
                    PrefetcherKind::None,
                    RunSpec::reference(),
                    &params,
                );
                let interleaved = engine.run(
                    &config,
                    &profile,
                    PrefetcherKind::None,
                    RunSpec::lukewarm(),
                    &params,
                );
                Row {
                    function: name.to_string(),
                    reference: reference.cpi_stack(),
                    interleaved: interleaved.cpi_stack(),
                }
            })
            .collect();
        Data { rows }
    }

    #[test]
    fn interleaving_increases_cpi_substantially() {
        let data = subset_data();
        for row in &data.rows {
            assert!(
                row.cpi_increase() > 0.15,
                "{}: increase only {:.0}%",
                row.function,
                row.cpi_increase() * 100.0
            );
        }
        assert!(data.mean_cpi_increase() > 0.2);
    }

    #[test]
    fn fetch_latency_dominates_extra_stalls() {
        let data = subset_data();
        let share = data.mean_fetch_latency_share();
        assert!(
            share > 0.35,
            "fetch latency should dominate extra stalls, got {share}"
        );
    }

    #[test]
    fn renders_are_nonempty_and_labelled() {
        let data = subset_data();
        assert!(data.render_fig2().contains("Figure 2"));
        assert!(data.render_fig3().contains("Figure 3"));
        assert!(data.render_fig4().contains("Figure 4"));
        assert!(data.to_string().contains("Fib-G"));
    }
}
