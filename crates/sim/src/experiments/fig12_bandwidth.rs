//! **Figure 12** — Jukebox's memory-bandwidth overhead over the
//! interleaved baseline, split into overpredicted prefetch traffic and
//! metadata record/replay traffic.
//!
//! Paper shape: ≈14% average overhead, ≤23% worst case; roughly 40% of
//! the overhead is metadata and 60% overpredicted prefetches. Correct,
//! timely prefetches do not add traffic — they move the same line the
//! demand miss would have moved.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::addr::LINE_BYTES;
use luke_common::stats::mean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// Bandwidth overheads for one function, as fractions of baseline
/// demand traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// Overpredicted (unused prefetch) bytes / baseline bytes.
    pub overpredicted: f64,
    /// Metadata record bytes / baseline bytes.
    pub metadata_record: f64,
    /// Metadata replay bytes / baseline bytes.
    pub metadata_replay: f64,
}

impl Row {
    /// Total bandwidth overhead fraction.
    pub fn total(&self) -> f64 {
        self.overpredicted + self.metadata_record + self.metadata_replay
    }
}

/// The complete Figure 12 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
}

/// Cell grid: identical to fig11's (baseline, Jukebox) × suite — every
/// cell here is a cache hit when fig11 ran first in the same engine.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    super::fig11_coverage::baseline_jukebox_plan(&SystemConfig::skylake(), params)
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig12"
    }
    fn description(&self) -> &'static str {
        "Jukebox memory-bandwidth overhead: overprediction and metadata traffic"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Measures bandwidth overhead for one function.
pub fn measure_function(
    engine: &Engine,
    config: &SystemConfig,
    profile: &workloads::FunctionProfile,
    params: &ExperimentParams,
) -> Row {
    let baseline = engine.run(
        config,
        profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        params,
    );
    let jukebox = engine.run(
        config,
        profile,
        PrefetcherKind::Jukebox(config.jukebox),
        RunSpec::lukewarm(),
        params,
    );
    let base_bytes = baseline.mem.traffic.total().max(1) as f64;
    // Overpredicted prefetch traffic: unused prefetched lines.
    let unused_lines = jukebox
        .mem
        .l2
        .prefetch_fills
        .saturating_sub(jukebox.mem.l2.prefetch_first_hits);
    Row {
        function: profile.name.clone(),
        overpredicted: (unused_lines * LINE_BYTES as u64) as f64 / base_bytes,
        metadata_record: jukebox.mem.traffic.metadata_record as f64 / base_bytes,
        metadata_replay: jukebox.mem.traffic.metadata_replay as f64 / base_bytes,
    }
}

/// Runs Figure 12 over the whole suite (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs Figure 12 through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let rows = paper_suite()
        .into_iter()
        .map(|p| measure_function(engine, &config, &p.scaled(params.scale), params))
        .collect();
    Data { rows }
}

impl Data {
    /// Mean total overhead (the paper's ≈14%).
    pub fn mean_overhead(&self) -> f64 {
        mean(&self.rows.iter().map(Row::total).collect::<Vec<_>>())
    }

    /// Worst-case total overhead (the paper's ≈23%).
    pub fn max_overhead(&self) -> f64 {
        self.rows.iter().map(Row::total).fold(0.0, f64::max)
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 12: Jukebox memory-bandwidth overhead")?;
        let mut t = TextTable::new(&[
            "function",
            "overpredicted",
            "metadata record",
            "metadata replay",
            "total",
        ]);
        for row in &self.rows {
            t.row(&[
                row.function.clone(),
                format!("{:.1}%", row.overpredicted * 100.0),
                format!("{:.1}%", row.metadata_record * 100.0),
                format!("{:.1}%", row.metadata_replay * 100.0),
                format!("{:.1}%", row.total() * 100.0),
            ]);
        }
        writeln!(
            f,
            "{t}Mean overhead {:.1}%, max {:.1}%",
            self.mean_overhead() * 100.0,
            self.max_overhead() * 100.0
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut overhead = luke_obs::Dataset::new(
            "fig12.bandwidth_overhead",
            &[
                "function",
                "overpredicted",
                "metadata record",
                "metadata replay",
                "total",
            ],
        );
        for row in &self.rows {
            overhead.push_row(vec![
                row.function.clone().into(),
                row.overpredicted.into(),
                row.metadata_record.into(),
                row.metadata_replay.into(),
                row.total().into(),
            ]);
        }
        let mut means = luke_obs::Dataset::new(
            "fig12.means",
            &["mean overhead", "max overhead"],
        );
        means.push_row(vec![self.mean_overhead().into(), self.max_overhead().into()]);
        vec![overhead, means]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    fn measure(name: &str) -> Row {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
        measure_function(&Engine::single(), &config, &profile, &params)
    }

    #[test]
    fn overhead_components_are_present_and_bounded() {
        let row = measure("Auth-G");
        assert!(row.metadata_record > 0.0, "record traffic expected");
        assert!(row.metadata_replay > 0.0, "replay traffic expected");
        assert!(
            row.total() < 0.6,
            "overhead should be modest, got {:.1}%",
            row.total() * 100.0
        );
    }

    #[test]
    fn metadata_overhead_is_small_fraction() {
        let row = measure("Fib-G");
        let metadata = row.metadata_record + row.metadata_replay;
        assert!(
            metadata < 0.2,
            "metadata is a few KB against hundreds of KB of demand traffic, got {metadata}"
        );
    }

    #[test]
    fn render_reports_mean_and_max() {
        let data = Data {
            rows: vec![
                Row {
                    function: "a".into(),
                    overpredicted: 0.05,
                    metadata_record: 0.02,
                    metadata_replay: 0.02,
                },
                Row {
                    function: "b".into(),
                    overpredicted: 0.10,
                    metadata_record: 0.05,
                    metadata_replay: 0.05,
                },
            ],
        };
        assert!((data.mean_overhead() - 0.145).abs() < 1e-9);
        assert!((data.max_overhead() - 0.20).abs() < 1e-9);
        assert!(data.to_string().contains("Mean overhead"));
    }
}
