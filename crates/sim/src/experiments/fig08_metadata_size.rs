//! **Figure 8** — sensitivity of Jukebox's metadata size to the code
//! region size, with a 16-entry CRRB.
//!
//! For each region size from 128B to 8KB, a lukewarm invocation is
//! recorded with *unlimited* metadata capacity and the packed metadata
//! size is measured. Paper shape: for most workloads the metadata
//! reaches its minimum around 1KB regions, landing between ≈9.6KB and
//! ≈29.5KB, with Go functions at the small end.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::ExperimentParams;
use crate::system::SystemSim;
use jukebox::{JukeboxConfig, JukeboxPrefetcher};
use luke_common::size::ByteSize;
use luke_common::table::TextTable;
use std::fmt;
use workloads::{paper_suite, FunctionProfile};

/// The region-size sweep (bytes). The paper's x-axis runs 128B–8KB.
pub const REGION_SIZES: [usize; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

/// Metadata sizes for one function across the sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// `(region_bytes, metadata_bytes)` for each sweep point.
    pub sizes: Vec<(usize, u64)>,
}

impl Row {
    /// The sweep point with the smallest metadata.
    pub fn best_region(&self) -> (usize, u64) {
        self.sizes
            .iter()
            .copied()
            .min_by_key(|&(_, bytes)| bytes)
            .expect("non-empty sweep")
    }

    /// Metadata size at a particular region size.
    pub fn at_region(&self, region: usize) -> Option<u64> {
        self.sizes
            .iter()
            .find(|&&(r, _)| r == region)
            .map(|&(_, b)| b)
    }
}

/// The complete Figure 8 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
}

/// Records one lukewarm invocation with unlimited metadata and returns
/// the required packed size.
pub fn required_metadata_bytes(
    config: &SystemConfig,
    profile: &FunctionProfile,
    jukebox: JukeboxConfig,
) -> u64 {
    // Unlimited capacity: nothing is dropped, so the sealed buffer's
    // packed size is the requirement.
    let unlimited = jukebox.with_metadata_capacity(ByteSize::mib(64));
    let mut sim = SystemSim::new(*config, profile);
    let mut jb = JukeboxPrefetcher::new(unlimited);
    jb.set_replay_enabled(false); // record-only measurement
    sim.flush_microarch();
    sim.run_invocation(&mut jb);
    jb.replay_buffer().map_or(0, |b| b.bytes_used())
}

/// Registry entry: see [`crate::engine::registry`]. The sweep measures
/// record-only metadata sizes by driving [`SystemSim`] with a custom
/// prefetcher setup, not through the cycle-accurate runner — the plan is
/// empty and the run ignores the engine.
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig08"
    }
    fn description(&self) -> &'static str {
        "Jukebox metadata size vs code-region size (record-only sweep)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, _params: &ExperimentParams) -> Vec<Cell> {
        Vec::new()
    }
    fn run(
        &self,
        _engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_experiment(params)))
    }
}

/// Runs the Figure 8 sweep over the suite.
pub fn run_experiment(params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let rows = paper_suite()
        .into_iter()
        .map(|p| {
            let profile = p.scaled(params.scale);
            let sizes = REGION_SIZES
                .iter()
                .map(|&region| {
                    let jb = config.jukebox.with_region_bytes(region);
                    (region, required_metadata_bytes(&config, &profile, jb))
                })
                .collect();
            Row {
                function: profile.name.clone(),
                sizes,
            }
        })
        .collect();
    Data { rows }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: Jukebox metadata size vs code-region size (16-entry CRRB)"
        )?;
        let mut header = vec!["function".to_string()];
        header.extend(REGION_SIZES.iter().map(|r| format!("{r}B")));
        let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = TextTable::new(&refs);
        for row in &self.rows {
            let mut cells = vec![row.function.clone()];
            cells.extend(
                row.sizes
                    .iter()
                    .map(|&(_, bytes)| ByteSize::new(bytes).to_string()),
            );
            t.row(&cells);
        }
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut columns = vec!["function".to_string()];
        columns.extend(REGION_SIZES.iter().map(|r| format!("{r}B")));
        let mut ds = luke_obs::Dataset {
            name: "fig08.metadata_bytes".to_string(),
            columns,
            rows: Vec::new(),
        };
        for row in &self.rows {
            let mut cells: Vec<luke_obs::Value> = vec![row.function.clone().into()];
            cells.extend(row.sizes.iter().map(|&(_, bytes)| bytes.into()));
            ds.push_row(cells);
        }
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(name: &str, scale: f64) -> Row {
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named(name).unwrap().scaled(scale);
        let sizes = REGION_SIZES
            .iter()
            .map(|&region| {
                let jb = config.jukebox.with_region_bytes(region);
                (region, required_metadata_bytes(&config, &profile, jb))
            })
            .collect();
        Row {
            function: name.to_string(),
            sizes,
        }
    }

    #[test]
    fn metadata_is_nonzero_and_finite() {
        let row = sweep("Auth-G", 0.04);
        for &(region, bytes) in &row.sizes {
            assert!(bytes > 0, "region {region} produced no metadata");
            assert!(bytes < 1_000_000, "region {region}: {bytes}B");
        }
    }

    #[test]
    fn mid_sized_regions_beat_extremes() {
        // The characteristic U-shape: tiny regions waste pointer bits,
        // huge regions suffer CRRB-lifetime duplicates (scattered
        // runtimes revisit regions after the CRRB has evicted them).
        let row = sweep("Email-P", 0.3);
        let (best_region, _) = row.best_region();
        assert!(
            (256..=4096).contains(&best_region),
            "best region {best_region}B is at an extreme: {:?}",
            row.sizes
        );
        let at_128 = row.at_region(128).unwrap();
        let at_1k = row.at_region(1024).unwrap();
        assert!(at_1k < at_128, "1KB ({at_1k}) should beat 128B ({at_128})");
    }

    #[test]
    fn go_needs_less_metadata_than_python() {
        // Same footprint scale: the dense Go layout coalesces better.
        let go = sweep("Auth-G", 0.05).at_region(1024).unwrap();
        let py = sweep("Auth-P", 0.05).at_region(1024).unwrap();
        assert!(
            go < py,
            "Go metadata ({go}B) should be below Python ({py}B)"
        );
    }

    #[test]
    fn render_has_all_region_columns() {
        let data = Data {
            rows: vec![sweep("Fib-G", 0.03)],
        };
        let s = data.to_string();
        for r in REGION_SIZES {
            assert!(s.contains(&format!("{r}B")));
        }
    }
}
