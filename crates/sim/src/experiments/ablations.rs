//! Ablation studies of Jukebox's design choices (beyond the paper's own
//! sweeps in Figures 8 and 9).
//!
//! * **Replay order** (§3.2): the FIFO metadata layout encodes first-touch
//!   temporal order. Replaying the same entries in reversed order delivers
//!   the same lines with the wrong schedule — the speedup difference
//!   isolates the value of the temporal encoding. (Measured: at the 16KB
//!   budget the replay stream finishes within the first fraction of the
//!   invocation, so order costs little — consistent with §3.2's remark
//!   that region-level reordering of blocks is acceptable.)
//! * **CRRB depth** (§5.1): 8/16/32 entries; the paper reports modest
//!   sensitivity.
//! * **Snapshot boot** (§3.4.2): with function snapshotting, metadata
//!   recorded before the snapshot accelerates even the *first* invocation
//!   of a freshly restored instance.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use crate::system::SystemSim;
use jukebox::metadata::MetadataBuffer;
use jukebox::{JukeboxConfig, JukeboxPrefetcher};
use luke_common::table::TextTable;
use luke_obs::{Dataset, Export};
use sim_mem::prefetch::{FetchObservation, InstructionPrefetcher, PrefetchIssuer};
use std::fmt;
use workloads::FunctionProfile;

/// A Jukebox variant that replays its metadata in **reversed** order —
/// same content, destroyed temporal encoding.
#[derive(Clone, Debug)]
struct ReversedReplayJukebox {
    inner: JukeboxPrefetcher,
    config: JukeboxConfig,
}

impl ReversedReplayJukebox {
    fn new(config: JukeboxConfig) -> Self {
        ReversedReplayJukebox {
            inner: JukeboxPrefetcher::new(config),
            config,
        }
    }
}

impl InstructionPrefetcher for ReversedReplayJukebox {
    fn name(&self) -> &str {
        "jukebox-reversed-replay"
    }

    fn on_invocation_start(&mut self, issuer: &mut PrefetchIssuer<'_>) {
        // Reverse the sealed buffer before the inner prefetcher replays it.
        if let Some(snapshot) = self.inner.snapshot() {
            let reversed =
                MetadataBuffer::from_entries(self.config, snapshot.entries().iter().rev().copied());
            self.inner = JukeboxPrefetcher::from_snapshot(self.config, reversed);
        }
        self.inner.on_invocation_start(issuer);
    }

    fn on_fetch(&mut self, observation: &FetchObservation, issuer: &mut PrefetchIssuer<'_>) {
        self.inner.on_fetch(observation, issuer);
    }

    fn on_invocation_end(&mut self, issuer: &mut PrefetchIssuer<'_>) {
        self.inner.on_invocation_end(issuer);
    }
}

/// Results of the ablation suite on one function.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// Function studied.
    pub function: String,
    /// Standard Jukebox speedup over the lukewarm baseline.
    pub jukebox: f64,
    /// Speedup with reversed replay order.
    pub reversed_replay: f64,
    /// Speedup per CRRB depth `(entries, speedup)`.
    pub crrb_sweep: Vec<(usize, f64)>,
    /// First-invocation cycles of a fresh instance without metadata.
    pub cold_boot_cycles: u64,
    /// First-invocation cycles of a fresh instance restored with snapshot
    /// metadata.
    pub snapshot_boot_cycles: u64,
}

impl Data {
    /// First-invocation speedup from snapshot metadata (§3.4.2).
    pub fn snapshot_boot_speedup(&self) -> f64 {
        self.cold_boot_cycles as f64 / self.snapshot_boot_cycles.max(1) as f64
    }
}

/// The default function studied.
const DEFAULT_FUNCTION: &str = "Auth-G";

/// Cell grid: the memoizable runner cells (baseline, Jukebox, CRRB sweep).
/// The reversed-replay and snapshot-boot parts drive [`SystemSim`]
/// directly with custom prefetchers and stay outside the cache.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    let profile = FunctionProfile::named(DEFAULT_FUNCTION)
        .expect("suite function")
        .scaled(params.scale);
    let mut kinds = vec![
        PrefetcherKind::None,
        PrefetcherKind::Jukebox(config.jukebox),
    ];
    kinds.extend(
        CRRB_ENTRIES
            .iter()
            .map(|&entries| PrefetcherKind::Jukebox(config.jukebox.with_crrb_entries(entries))),
    );
    kinds
        .into_iter()
        .map(|kind| Cell::new(&config, &profile, kind, RunSpec::lukewarm(), params))
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "ablations"
    }
    fn description(&self) -> &'static str {
        "Replay-order, CRRB-depth and snapshot-boot ablations of Jukebox"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// The CRRB depths swept (§5.1).
pub const CRRB_ENTRIES: [usize; 3] = [8, 16, 32];

/// Runs the ablation suite on one function (default: `Auth-G`).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the ablation suite on the default function through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    run_for(
        engine,
        &FunctionProfile::named(DEFAULT_FUNCTION).expect("suite function"),
        params,
    )
}

/// Runs the ablation suite on the given function.
pub fn run_for(engine: &Engine, profile: &FunctionProfile, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let profile = profile.scaled(params.scale);
    let baseline = engine.run(
        &config,
        &profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        params,
    );
    let jukebox = engine
        .run(
            &config,
            &profile,
            PrefetcherKind::Jukebox(config.jukebox),
            RunSpec::lukewarm(),
            params,
        )
        .speedup_over(&baseline);

    // Reversed replay: same protocol, custom prefetcher.
    let reversed_replay = {
        let mut sim = SystemSim::new(config, &profile);
        let mut pf = ReversedReplayJukebox::new(config.jukebox);
        for _ in 0..params.warmup {
            sim.flush_microarch();
            sim.run_invocation(&mut pf);
        }
        let mut cycles = 0;
        let mut instrs = 0;
        for _ in 0..params.invocations {
            sim.flush_microarch();
            let m = sim.run_invocation(&mut pf);
            cycles += m.result.cycles;
            instrs += m.result.instructions;
        }
        baseline.cpi() / (cycles as f64 / instrs as f64)
    };

    // CRRB depth sweep.
    let crrb_sweep = CRRB_ENTRIES
        .iter()
        .map(|&entries| {
            let jb = config.jukebox.with_crrb_entries(entries);
            let s = engine.run(
                &config,
                &profile,
                PrefetcherKind::Jukebox(jb),
                RunSpec::lukewarm(),
                params,
            );
            (entries, s.speedup_over(&baseline))
        })
        .collect();

    // Snapshot boot: record metadata on a donor instance, restore it into
    // a completely fresh system, and compare the first invocation.
    let snapshot = {
        let mut donor = SystemSim::new(config, &profile);
        let mut jb = JukeboxPrefetcher::new(config.jukebox);
        donor.flush_microarch();
        donor.run_invocation(&mut jb);
        jb.snapshot().expect("donor recorded metadata")
    };
    let cold_boot_cycles = {
        let mut sim = SystemSim::new(config, &profile);
        let mut pf = JukeboxPrefetcher::new(config.jukebox);
        sim.run_invocation(&mut pf).result.cycles
    };
    let snapshot_boot_cycles = {
        let mut sim = SystemSim::new(config, &profile);
        let mut pf = JukeboxPrefetcher::from_snapshot(config.jukebox, snapshot);
        sim.run_invocation(&mut pf).result.cycles
    };

    Data {
        function: profile.name.clone(),
        jukebox,
        reversed_replay,
        crrb_sweep,
        cold_boot_cycles,
        snapshot_boot_cycles,
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations on {}:", self.function)?;
        let mut t = TextTable::new(&["configuration", "speedup over baseline"]);
        let pct = |s: f64| format!("{:+.1}%", (s - 1.0) * 100.0);
        t.row(&["jukebox (FIFO replay)".into(), pct(self.jukebox)]);
        t.row(&["jukebox, reversed replay".into(), pct(self.reversed_replay)]);
        for &(entries, s) in &self.crrb_sweep {
            t.row(&[format!("jukebox, CRRB {entries} entries"), pct(s)]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Snapshot boot (§3.4.2): cold first invocation {} cycles, with \
             restored metadata {} cycles ({:+.1}%)",
            self.cold_boot_cycles,
            self.snapshot_boot_cycles,
            (self.snapshot_boot_speedup() - 1.0) * 100.0
        )
    }
}

impl Export for Data {
    fn datasets(&self) -> Vec<Dataset> {
        let mut speedups = Dataset::new(
            "ablations.speedups",
            &["function", "configuration", "speedup over baseline"],
        );
        speedups.push_row(vec![
            self.function.clone().into(),
            "jukebox (FIFO replay)".into(),
            self.jukebox.into(),
        ]);
        speedups.push_row(vec![
            self.function.clone().into(),
            "jukebox, reversed replay".into(),
            self.reversed_replay.into(),
        ]);
        for &(entries, s) in &self.crrb_sweep {
            speedups.push_row(vec![
                self.function.clone().into(),
                format!("jukebox, CRRB {entries} entries").into(),
                s.into(),
            ]);
        }
        let mut boot = Dataset::new(
            "ablations.snapshot_boot",
            &[
                "function",
                "cold boot cycles",
                "snapshot boot cycles",
                "speedup",
            ],
        );
        boot.push_row(vec![
            self.function.clone().into(),
            self.cold_boot_cycles.into(),
            self.snapshot_boot_cycles.into(),
            self.snapshot_boot_speedup().into(),
        ]);
        vec![speedups, boot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_for(
            &Engine::single(),
            &FunctionProfile::named("Auth-G").unwrap(),
            &ExperimentParams::quick(),
        )
    }

    #[test]
    fn replay_order_is_second_order_at_paper_budget() {
        // Content dominates order: a 16KB metadata stream replays within
        // the first fraction of the invocation, so even reversed order
        // retains nearly all of the benefit (§3.2 tolerates region-level
        // reordering for the same reason). FIFO must never lose
        // materially.
        let d = data();
        assert!(
            d.jukebox >= d.reversed_replay * 0.95,
            "FIFO replay ({:.3}) should not lose to reversed ({:.3})",
            d.jukebox,
            d.reversed_replay
        );
        assert!(d.reversed_replay > 1.0);
    }

    #[test]
    fn crrb_sensitivity_is_modest() {
        // §5.1: the paper finds modest sensitivity to the CRRB size.
        let d = data();
        let speedups: Vec<f64> = d.crrb_sweep.iter().map(|&(_, s)| s).collect();
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min < 0.15,
            "CRRB sweep spread too large: {speedups:?}"
        );
    }

    #[test]
    fn snapshot_metadata_accelerates_cold_boot() {
        let d = data();
        assert!(
            d.snapshot_boot_speedup() > 1.02,
            "snapshot boot {} vs cold {}",
            d.snapshot_boot_cycles,
            d.cold_boot_cycles
        );
    }

    #[test]
    fn render_mentions_all_ablations() {
        let s = data().to_string();
        assert!(s.contains("reversed replay"));
        assert!(s.contains("CRRB"));
        assert!(s.contains("Snapshot boot"));
    }
}
