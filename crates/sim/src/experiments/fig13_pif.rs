//! **Figure 13** — comparison against the state-of-the-art temporal-
//! streaming prefetcher PIF (§5.5).
//!
//! Five configurations over the interleaved baseline: PIF (paper
//! configuration, non-persistent), PIF-ideal (unlimited, persistent),
//! Jukebox, and Jukebox + PIF-ideal. Paper shape: PIF ≈2.4% average
//! (≤4.8%), PIF-ideal ≈6.7% (≤12.4%), Jukebox ≈18.7% — bulk replay into
//! the L2 beats stream-following because it never stops to re-index and
//! therefore actually hides main-memory latency.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::geomean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// The representative functions plotted individually (one per language).
pub const REPRESENTATIVES: [&str; 3] = ["Email-P", "Pay-N", "ProdL-G"];

/// Speedups of the four prefetcher configurations for one function.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name, or `"GEOMEAN"`.
    pub function: String,
    /// PIF (paper configuration).
    pub pif: f64,
    /// PIF-ideal.
    pub pif_ideal: f64,
    /// Jukebox.
    pub jukebox: f64,
    /// Jukebox + PIF-ideal.
    pub jukebox_pif_ideal: f64,
}

/// The complete Figure 13 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// Representative rows plus the geomean row (last).
    pub rows: Vec<Row>,
}

/// The five configurations each function is measured under.
fn kinds(config: &SystemConfig) -> [PrefetcherKind; 5] {
    [
        PrefetcherKind::None,
        PrefetcherKind::Pif,
        PrefetcherKind::PifIdeal,
        PrefetcherKind::Jukebox(config.jukebox),
        PrefetcherKind::JukeboxPlusPifIdeal(config.jukebox),
    ]
}

/// Cell grid: (baseline, PIF, PIF-ideal, Jukebox, JB+PIF-ideal) × suite.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            kinds(&config)
                .into_iter()
                .map(move |kind| Cell::new(&config, &profile, kind, RunSpec::lukewarm(), params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig13"
    }
    fn description(&self) -> &'static str {
        "PIF vs PIF-ideal vs Jukebox vs the combination, speedup over baseline"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Measures all four configurations for one function.
pub fn measure_function(
    engine: &Engine,
    config: &SystemConfig,
    profile: &workloads::FunctionProfile,
    params: &ExperimentParams,
) -> Row {
    let baseline = engine.run(
        config,
        profile,
        PrefetcherKind::None,
        RunSpec::lukewarm(),
        params,
    );
    let speedup = |kind: PrefetcherKind| {
        engine
            .run(config, profile, kind, RunSpec::lukewarm(), params)
            .speedup_over(&baseline)
    };
    Row {
        function: profile.name.clone(),
        pif: speedup(PrefetcherKind::Pif),
        pif_ideal: speedup(PrefetcherKind::PifIdeal),
        jukebox: speedup(PrefetcherKind::Jukebox(config.jukebox)),
        jukebox_pif_ideal: speedup(PrefetcherKind::JukeboxPlusPifIdeal(config.jukebox)),
    }
}

/// Runs Figure 13: all 20 functions contribute to the geomean;
/// representatives are reported individually.
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs Figure 13 through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::skylake();
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for p in paper_suite() {
        let profile = p.scaled(params.scale);
        let row = measure_function(engine, &config, &profile, params);
        if REPRESENTATIVES.contains(&profile.name.as_str()) {
            rows.push(row.clone());
        }
        all.push(row);
    }
    let geo = |f: fn(&Row) -> f64| geomean(&all.iter().map(f).collect::<Vec<_>>());
    rows.push(Row {
        function: "GEOMEAN".to_string(),
        pif: geo(|r| r.pif),
        pif_ideal: geo(|r| r.pif_ideal),
        jukebox: geo(|r| r.jukebox),
        jukebox_pif_ideal: geo(|r| r.jukebox_pif_ideal),
    });
    Data { rows }
}

impl Data {
    /// The geomean row (last by construction).
    pub fn geomean_row(&self) -> &Row {
        self.rows.last().expect("geomean row")
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 13: PIF vs Jukebox (speedup over baseline)")?;
        let mut t = TextTable::new(&["function", "PIF", "PIF-ideal", "JB", "JB+PIF-ideal"]);
        for row in &self.rows {
            let pct = |s: f64| format!("{:+.1}%", (s - 1.0) * 100.0);
            t.row(&[
                row.function.clone(),
                pct(row.pif),
                pct(row.pif_ideal),
                pct(row.jukebox),
                pct(row.jukebox_pif_ideal),
            ]);
        }
        write!(f, "{t}")
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut ds = luke_obs::Dataset::new(
            "fig13.pif_vs_jukebox",
            &["function", "PIF", "PIF-ideal", "JB", "JB+PIF-ideal"],
        );
        for row in &self.rows {
            ds.push_row(vec![
                row.function.clone().into(),
                row.pif.into(),
                row.pif_ideal.into(),
                row.jukebox.into(),
                row.jukebox_pif_ideal.into(),
            ]);
        }
        vec![ds]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    #[test]
    fn jukebox_beats_both_pif_variants() {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named("Auth-G")
            .unwrap()
            .scaled(params.scale);
        let row = measure_function(&Engine::single(), &config, &profile, &params);
        assert!(
            row.jukebox > row.pif,
            "jukebox {} should beat PIF {}",
            row.jukebox,
            row.pif
        );
        assert!(
            row.jukebox > row.pif_ideal,
            "jukebox {} should beat PIF-ideal {}",
            row.jukebox,
            row.pif_ideal
        );
    }

    #[test]
    fn pif_ideal_beats_plain_pif() {
        let params = ExperimentParams::quick();
        let config = SystemConfig::skylake();
        let profile = FunctionProfile::named("ProdL-G")
            .unwrap()
            .scaled(params.scale);
        let row = measure_function(&Engine::single(), &config, &profile, &params);
        assert!(
            row.pif_ideal >= row.pif * 0.99,
            "pif-ideal {} vs pif {}",
            row.pif_ideal,
            row.pif
        );
    }

    #[test]
    fn render_has_all_columns() {
        let data = Data {
            rows: vec![Row {
                function: "GEOMEAN".into(),
                pif: 1.024,
                pif_ideal: 1.067,
                jukebox: 1.187,
                jukebox_pif_ideal: 1.19,
            }],
        };
        let s = data.to_string();
        assert!(s.contains("PIF-ideal"));
        assert!(s.contains("+18.7%"));
        assert_eq!(data.geomean_row().function, "GEOMEAN");
    }
}
