//! Experiment runners — one module per figure/table of the paper.
//!
//! Each module exposes a `run(params) -> Data` function returning typed
//! rows, and the data type implements `Display`, rendering the same
//! series the paper reports. The benchmark harness (`crates/bench`)
//! invokes these at paper scale and prints the tables; integration tests
//! invoke them at `ExperimentParams::quick()` scale and assert the
//! qualitative shape.

pub mod ablations;
pub mod cold_spectrum;
pub mod fig01_cpi_vs_iat;
pub mod fig02_topdown;
pub mod fig05_mpki;
pub mod fig06_footprints;
pub mod fig08_metadata_size;
pub mod fig09_metadata_cap;
pub mod fig10_speedup;
pub mod fig11_coverage;
pub mod fig12_bandwidth;
pub mod fig13_pif;
pub mod fleet_scale;
pub mod host_interleaving;
pub mod keep_alive;
pub mod prewarm_frontier;
pub mod related_work;
pub mod resilience;
pub mod surge;
pub mod table3_broadwell;
pub mod tenancy;
pub mod workflow_slo;

pub use fig01_cpi_vs_iat as fig01;
pub use fig02_topdown as fig02;
pub use fig05_mpki as fig05;
pub use fig06_footprints as fig06;
pub use fig08_metadata_size as fig08;
pub use fig09_metadata_cap as fig09;
pub use fig10_speedup as fig10;
pub use fig11_coverage as fig11;
pub use fig12_bandwidth as fig12;
pub use fig13_pif as fig13;
pub use table3_broadwell as table3;
