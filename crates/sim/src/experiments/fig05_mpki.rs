//! **Figure 5** — L2 and L3 MPKI breakdowns (instructions vs data),
//! reference vs interleaved, on the Broadwell-like characterization
//! platform (256KB L2, §4.1).
//!
//! Paper shape: L2 MPKI is high in both configurations (≈54 reference /
//! ≈72 interleaved on average) with instruction misses exceeding data
//! misses; the LLC has essentially **no** instruction misses in reference
//! execution but >10 MPKI (mostly instructions) when interleaved.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::stats::mean;
use luke_common::table::TextTable;
use std::fmt;
use workloads::paper_suite;

/// MPKI numbers for one function.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mpki {
    /// L2 instruction MPKI.
    pub l2_instr: f64,
    /// L2 data MPKI.
    pub l2_data: f64,
    /// LLC instruction MPKI.
    pub llc_instr: f64,
    /// LLC data MPKI.
    pub llc_data: f64,
}

/// Per-function MPKI in both configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// Reference execution.
    pub reference: Mpki,
    /// Interleaved execution.
    pub interleaved: Mpki,
}

/// The complete Figure 5 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
}

/// Cell grid: (reference, interleaved) × suite on the Broadwell platform.
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::broadwell();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            [RunSpec::reference(), RunSpec::lukewarm()]
                .into_iter()
                .map(move |spec| Cell::new(&config, &profile, PrefetcherKind::None, spec, params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig05"
    }
    fn description(&self) -> &'static str {
        "L2/LLC MPKI breakdowns, reference vs interleaved (Broadwell)"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_with(engine, params)))
    }
}

/// Runs the MPKI study over the suite (fresh single-threaded engine).
pub fn run_experiment(params: &ExperimentParams) -> Data {
    run_with(&Engine::single(), params)
}

/// Runs the MPKI study through a shared engine.
pub fn run_with(engine: &Engine, params: &ExperimentParams) -> Data {
    let config = SystemConfig::broadwell();
    let rows = paper_suite()
        .into_iter()
        .map(|p| {
            let profile = p.scaled(params.scale);
            let collect = |spec: RunSpec| {
                let s = engine.run(&config, &profile, PrefetcherKind::None, spec, params);
                Mpki {
                    l2_instr: s.l2_instr_mpki(),
                    l2_data: s.l2_data_mpki(),
                    llc_instr: s.llc_instr_mpki(),
                    llc_data: s.llc_data_mpki(),
                }
            };
            Row {
                function: profile.name.clone(),
                reference: collect(RunSpec::reference()),
                interleaved: collect(RunSpec::lukewarm()),
            }
        })
        .collect();
    Data { rows }
}

impl Data {
    /// Suite-mean L2 total MPKI (instr + data) for (reference,
    /// interleaved) — the paper's ≈(54, 72).
    pub fn mean_l2_total(&self) -> (f64, f64) {
        (
            mean(
                &self
                    .rows
                    .iter()
                    .map(|r| r.reference.l2_instr + r.reference.l2_data)
                    .collect::<Vec<_>>(),
            ),
            mean(
                &self
                    .rows
                    .iter()
                    .map(|r| r.interleaved.l2_instr + r.interleaved.l2_data)
                    .collect::<Vec<_>>(),
            ),
        )
    }

    /// Suite-mean LLC instruction MPKI for (reference, interleaved) — the
    /// paper's (≈0, >10) contrast.
    pub fn mean_llc_instr(&self) -> (f64, f64) {
        (
            mean(
                &self
                    .rows
                    .iter()
                    .map(|r| r.reference.llc_instr)
                    .collect::<Vec<_>>(),
            ),
            mean(
                &self
                    .rows
                    .iter()
                    .map(|r| r.interleaved.llc_instr)
                    .collect::<Vec<_>>(),
            ),
        )
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5: L2 / LLC MPKI breakdowns (Broadwell-like)")?;
        let mut t = TextTable::new(&[
            "function", "config", "L2 instr", "L2 data", "L3 instr", "L3 data",
        ]);
        for row in &self.rows {
            for (label, m) in [("ref", &row.reference), ("interleaved", &row.interleaved)] {
                t.row(&[
                    row.function.clone(),
                    label.to_string(),
                    format!("{:.1}", m.l2_instr),
                    format!("{:.1}", m.l2_data),
                    format!("{:.1}", m.llc_instr),
                    format!("{:.1}", m.llc_data),
                ]);
            }
        }
        let (l2_ref, l2_int) = self.mean_l2_total();
        let (l3_ref, l3_int) = self.mean_llc_instr();
        writeln!(
            f,
            "{t}Mean L2 MPKI: ref {l2_ref:.0}, interleaved {l2_int:.0}; \
             mean LLC instr MPKI: ref {l3_ref:.1}, interleaved {l3_int:.1}"
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut mpki = luke_obs::Dataset::new(
            "fig05.mpki",
            &[
                "function", "config", "L2 instr", "L2 data", "L3 instr", "L3 data",
            ],
        );
        for row in &self.rows {
            for (label, m) in [("ref", &row.reference), ("interleaved", &row.interleaved)] {
                mpki.push_row(vec![
                    row.function.clone().into(),
                    label.into(),
                    m.l2_instr.into(),
                    m.l2_data.into(),
                    m.llc_instr.into(),
                    m.llc_data.into(),
                ]);
            }
        }
        let (l2_ref, l2_int) = self.mean_l2_total();
        let (l3_ref, l3_int) = self.mean_llc_instr();
        let mut means = luke_obs::Dataset::new(
            "fig05.means",
            &[
                "mean L2 ref",
                "mean L2 interleaved",
                "mean LLC instr ref",
                "mean LLC instr interleaved",
            ],
        );
        means.push_row(vec![
            l2_ref.into(),
            l2_int.into(),
            l3_ref.into(),
            l3_int.into(),
        ]);
        vec![mpki, means]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    fn subset() -> Data {
        // Large enough that code footprints dominate data (as at paper
        // scale); tiny scales hit the 16KB footprint floor where the
        // instruction/data ratio inverts.
        let params = ExperimentParams {
            scale: 0.15,
            invocations: 2,
            warmup: 2,
        };
        let config = SystemConfig::broadwell();
        let engine = Engine::single();
        let rows = ["Auth-G", "Email-P"]
            .iter()
            .map(|name| {
                let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
                let collect = |spec: RunSpec| {
                    let s = engine.run(&config, &profile, PrefetcherKind::None, spec, &params);
                    Mpki {
                        l2_instr: s.l2_instr_mpki(),
                        l2_data: s.l2_data_mpki(),
                        llc_instr: s.llc_instr_mpki(),
                        llc_data: s.llc_data_mpki(),
                    }
                };
                Row {
                    function: name.to_string(),
                    reference: collect(RunSpec::reference()),
                    interleaved: collect(RunSpec::lukewarm()),
                }
            })
            .collect();
        Data { rows }
    }

    #[test]
    fn llc_instruction_misses_appear_only_when_interleaved() {
        let data = subset();
        for row in &data.rows {
            assert!(
                row.interleaved.llc_instr > row.reference.llc_instr + 1.0,
                "{}: interleaved LLC instr {} vs ref {}",
                row.function,
                row.interleaved.llc_instr,
                row.reference.llc_instr
            );
            // Reference working sets fit in the LLC.
            assert!(
                row.reference.llc_instr < 3.0,
                "{}: reference LLC instr MPKI {}",
                row.function,
                row.reference.llc_instr
            );
        }
    }

    #[test]
    fn interleaved_llc_misses_are_mostly_instructions() {
        let data = subset();
        for row in &data.rows {
            assert!(
                row.interleaved.llc_instr > row.interleaved.llc_data,
                "{}: instr {} vs data {}",
                row.function,
                row.interleaved.llc_instr,
                row.interleaved.llc_data
            );
        }
    }

    #[test]
    fn interleaving_raises_l2_mpki() {
        let data = subset();
        let (l2_ref, l2_int) = data.mean_l2_total();
        assert!(l2_int > l2_ref, "L2 MPKI {l2_ref} -> {l2_int}");
    }

    #[test]
    fn render_mentions_means() {
        let s = subset().to_string();
        assert!(s.contains("Mean L2 MPKI"));
        assert!(s.contains("Figure 5"));
    }
}
