//! **Figure 6** — instruction footprints and cross-invocation commonality
//! (§2.5 methodology: 25 invocations per function, L1-I accesses traced
//! at cache-block granularity, pairwise Jaccard over all 300 pairs).
//!
//! Paper shape: footprints range from just over 300KB to ≈800KB with low
//! variance; mean commonality exceeds 0.9 for all but three functions.

use crate::engine::{Cell, Engine};
use crate::runner::ExperimentParams;
use luke_common::size::ByteSize;
use luke_common::table::TextTable;
use std::fmt;
use workloads::footprint::{study, FootprintStudy};
use workloads::{paper_suite, SyntheticFunction};

/// Per-function footprint study results.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: String,
    /// The §2.5 study results.
    pub study: FootprintStudy,
}

/// The complete Figure 6 dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// One row per function.
    pub rows: Vec<Row>,
    /// Invocations measured per function (paper: 25).
    pub invocations: u64,
}

/// Registry entry: see [`crate::engine::registry`]. The footprint study
/// traces L1-I accesses directly (no cycle-accurate runner cells), so the
/// plan is empty and the run ignores the engine.
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fig06"
    }
    fn description(&self) -> &'static str {
        "Instruction footprints and cross-invocation Jaccard commonality"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, _params: &ExperimentParams) -> Vec<Cell> {
        Vec::new()
    }
    fn run(
        &self,
        _engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(run_experiment(params)))
    }
}

/// Runs the footprint/commonality study over the suite.
pub fn run_experiment(params: &ExperimentParams) -> Data {
    // The paper uses 25 invocations; quick runs use fewer.
    let invocations = if params.scale >= 0.5 { 25 } else { 6 };
    let rows = paper_suite()
        .into_iter()
        .map(|p| {
            let profile = p.scaled(params.scale);
            let function = SyntheticFunction::build(&profile);
            Row {
                function: profile.name.clone(),
                study: study(&function, invocations),
            }
        })
        .collect();
    Data { rows, invocations }
}

impl Data {
    /// Number of functions whose mean commonality is at least 0.9 (the
    /// paper: 17 of 20).
    pub fn functions_above_09(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.study.jaccard_mean >= 0.9)
            .count()
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: instruction footprints and Jaccard commonality over {} invocations",
            self.invocations
        )?;
        let mut t = TextTable::new(&[
            "function",
            "mean footprint",
            "min",
            "max",
            "jaccard mean",
            "jaccard min",
        ]);
        for row in &self.rows {
            let (lo, hi) = row.study.range_bytes();
            t.row(&[
                row.function.clone(),
                ByteSize::new(row.study.mean_bytes() as u64).to_string(),
                ByteSize::new(lo).to_string(),
                ByteSize::new(hi).to_string(),
                format!("{:.3}", row.study.jaccard_mean),
                format!("{:.3}", row.study.jaccard_min),
            ]);
        }
        writeln!(
            f,
            "{t}{} of {} functions have mean commonality >= 0.9",
            self.functions_above_09(),
            self.rows.len()
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut footprints = luke_obs::Dataset::new(
            "fig06.footprints",
            &[
                "function",
                "mean footprint",
                "min",
                "max",
                "jaccard mean",
                "jaccard min",
            ],
        );
        for row in &self.rows {
            let (lo, hi) = row.study.range_bytes();
            footprints.push_row(vec![
                row.function.clone().into(),
                (row.study.mean_bytes() as u64).into(),
                lo.into(),
                hi.into(),
                row.study.jaccard_mean.into(),
                row.study.jaccard_min.into(),
            ]);
        }
        let mut summary = luke_obs::Dataset::new(
            "fig06.summary",
            &["invocations", "functions", "functions with commonality >= 0.9"],
        );
        summary.push_row(vec![
            self.invocations.into(),
            (self.rows.len() as u64).into(),
            (self.functions_above_09() as u64).into(),
        ]);
        vec![footprints, summary]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::FunctionProfile;

    fn subset(names: &[&str], scale: f64, invocations: u64) -> Data {
        let rows = names
            .iter()
            .map(|name| {
                let profile = FunctionProfile::named(name).unwrap().scaled(scale);
                let function = SyntheticFunction::build(&profile);
                Row {
                    function: name.to_string(),
                    study: study(&function, invocations),
                }
            })
            .collect();
        Data { rows, invocations }
    }

    #[test]
    fn commonality_is_high_for_regular_functions() {
        let data = subset(&["Auth-G", "Fib-P", "Pay-N"], 0.05, 5);
        for row in &data.rows {
            assert!(
                row.study.jaccard_mean > 0.85,
                "{}: commonality {}",
                row.function,
                row.study.jaccard_mean
            );
        }
        // At this reduced scale the optional groups are few and chunky, so
        // allow one function to sit just below the 0.9 line.
        assert!(data.functions_above_09() + 1 >= data.rows.len());
    }

    #[test]
    fn outlier_functions_have_lower_commonality() {
        let regular = subset(&["Auth-G"], 0.05, 6).rows[0].study.jaccard_mean;
        let outlier = subset(&["RecO-P"], 0.05, 6).rows[0].study.jaccard_mean;
        assert!(
            outlier < regular,
            "outlier {outlier} should be below regular {regular}"
        );
    }

    #[test]
    fn footprint_variance_is_low() {
        let data = subset(&["Ship-G"], 0.05, 5);
        let (lo, hi) = data.rows[0].study.range_bytes();
        assert!(
            (hi as f64) < lo as f64 * 1.5,
            "footprint range too wide: {lo}..{hi}"
        );
    }

    #[test]
    fn render_lists_functions() {
        let data = subset(&["Geo-G"], 0.05, 3);
        let s = data.to_string();
        assert!(s.contains("Geo-G"));
        assert!(s.contains("Figure 6"));
    }
}
