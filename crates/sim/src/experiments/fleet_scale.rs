//! **Fleet-scale sweep** — routing policy × fleet size × keep-alive
//! window, with the fleet's service model calibrated from the
//! cycle-accurate simulator.
//!
//! The paper characterizes one lukewarm host; this experiment asks what
//! its findings imply at cluster scale. The bridge is calibration: for
//! every suite function the cycle-accurate core measures warm CPI,
//! lukewarm (flush-model) CPI, and lukewarm+Jukebox CPI, and those
//! ratios become the fleet simulator's per-function latency factors
//! ([`luke_fleet::ServiceModel::from_timings`]). The fleet then sweeps
//! the knobs only a cluster has — how the load balancer spreads
//! functions over hosts, how many hosts there are, how long instances
//! are kept alive — and reports cold-start rate, lukewarm fraction,
//! latency percentiles, and the Jukebox speedup for each point.
//!
//! The headline result mirrors §2's argument: locality-blind routing
//! (round-robin) multiplies per-host inter-arrival gaps by the fleet
//! size, so *almost every* warm hit turns lukewarm, while
//! keep-alive-aware routing keeps functions pinned and caches warm —
//! and Jukebox's benefit is largest exactly where routing is worst.
//!
//! Every sweep point runs through the fleet's calendar-queue event core
//! (see `docs/FLEET.md`): a streaming producer routes arrivals into
//! bounded per-shard queues while work-stealing workers drain
//! deterministic host shards, so each cell's result is byte-identical
//! at any worker-thread count and peak routed memory stays
//! O(hosts + in-flight) even at the largest fleet sizes swept here.

use crate::config::SystemConfig;
use crate::engine::{Cell, Engine};
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec};
use luke_common::table::TextTable;
use luke_common::SimError;
use luke_fleet::{
    run_fleet_pair, FleetConfig, FunctionTiming, RoutingPolicy, ServiceModel, FREQ_GHZ,
};
use std::fmt;
use workloads::paper_suite;

/// Fleet invocations simulated per host in each sweep point. At the
/// default 20 invocations per host-second every run spans ~100 seconds
/// of fleet time, so the short keep-alive window below actually binds.
const INVOCATIONS_PER_HOST: usize = 2_000;
/// Deployed logical functions across the fleet.
const POPULATION: usize = 200;
/// Keep-alive windows swept, minutes: 15 seconds (tail functions
/// expire and pay fresh cold starts) vs the Azure-style 10 minutes
/// (nothing expires within the run).
const KEEP_ALIVE_MINUTES: [f64; 2] = [0.25, 10.0];

/// One sweep point: a routing policy on a fleet of a given size and
/// keep-alive window, base vs Jukebox over identical traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Routing policy label.
    pub policy: &'static str,
    /// Fleet size.
    pub hosts: usize,
    /// Keep-alive window, minutes.
    pub keep_alive_min: f64,
    /// Fraction of invocations with no warm instance.
    pub cold_start_rate: f64,
    /// Fraction of invocations served warm but microarchitecturally
    /// cold.
    pub lukewarm_fraction: f64,
    /// Lukewarm share *of warm hits* — the policy-comparable number
    /// (the total fraction above is deflated by cold starts, which
    /// locality-blind policies produce far more of).
    pub lukewarm_of_hits: f64,
    /// Mean end-to-end latency without Jukebox, ms.
    pub mean_ms: f64,
    /// Median latency without Jukebox, ms.
    pub p50_ms: f64,
    /// Tail latency without Jukebox, ms.
    pub p99_ms: f64,
    /// Mean-latency speedup of Jukebox at this point.
    pub speedup: f64,
}

/// The sweep plus the calibrated per-function timings that priced it.
#[derive(Clone, Debug, PartialEq)]
pub struct Data {
    /// Simulator-calibrated per-function timings.
    pub timings: Vec<FunctionTiming>,
    /// One row per (policy, fleet size, keep-alive) point.
    pub rows: Vec<Row>,
}

/// The calibration configurations per function: warm reference, flush-
/// model lukewarm, and lukewarm+Jukebox.
fn calibration_points(config: &SystemConfig) -> [(PrefetcherKind, RunSpec); 3] {
    [
        (PrefetcherKind::None, RunSpec::reference()),
        (PrefetcherKind::None, RunSpec::lukewarm()),
        (PrefetcherKind::Jukebox(config.jukebox), RunSpec::lukewarm()),
    ]
}

/// Cell grid: the calibration runs (the fleet sweep itself is pool-level
/// and stays outside the cache).
pub fn plan(params: &ExperimentParams) -> Vec<Cell> {
    let config = SystemConfig::skylake();
    paper_suite()
        .into_iter()
        .flat_map(|p| {
            let profile = p.scaled(params.scale);
            calibration_points(&config)
                .into_iter()
                .map(move |(kind, spec)| Cell::new(&config, &profile, kind, spec, params))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Registry entry: see [`crate::engine::registry`].
pub struct Entry;

impl crate::engine::Experiment for Entry {
    fn name(&self) -> &'static str {
        "fleet"
    }
    fn description(&self) -> &'static str {
        "Cluster sweep: routing policy x fleet size x keep-alive, calibrated from the core"
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell> {
        plan(params)
    }
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn crate::engine::ExperimentData>, luke_common::SimError> {
        Ok(Box::new(try_run_experiment_with(engine, params)?))
    }
}

/// Calibrates the fleet's service model from the cycle-accurate core:
/// per suite function, warm CPI (back-to-back, no prefetcher), lukewarm
/// CPI (flush model), and lukewarm+Jukebox CPI. Service times use the
/// *unscaled* instruction counts so fleet latencies stay paper-sized
/// even in quick runs.
pub fn calibrate_model(params: &ExperimentParams) -> Result<ServiceModel, SimError> {
    calibrate_model_with(&Engine::single(), params)
}

/// Like [`calibrate_model`], but the calibration runs go through a
/// shared engine.
pub fn calibrate_model_with(
    engine: &Engine,
    params: &ExperimentParams,
) -> Result<ServiceModel, SimError> {
    let config = SystemConfig::skylake();
    let full = paper_suite();
    let timings = full
        .iter()
        .map(|full_profile| {
            let p = full_profile.scaled(params.scale);
            let [(warm_kind, warm_spec), (lw_kind, lw_spec), (jb_kind, jb_spec)] =
                calibration_points(&config);
            let warm = engine.run(&config, &p, warm_kind, warm_spec, params);
            let lukewarm = engine.run(&config, &p, lw_kind, lw_spec, params);
            let jukebox = engine.run(&config, &p, jb_kind, jb_spec, params);
            let warm_cpi = warm.cpi();
            let lukewarm_factor = (lukewarm.cpi() / warm_cpi).max(1.0);
            let jukebox_factor = (jukebox.cpi() / warm_cpi).clamp(1.0, lukewarm_factor);
            FunctionTiming {
                name: full_profile.name.clone(),
                warm_ms: full_profile.instructions as f64 * warm_cpi / (FREQ_GHZ * 1e6),
                lukewarm_factor,
                jukebox_factor,
            }
        })
        .collect();
    ServiceModel::from_timings(timings)
}

/// Fleet sizes for the sweep: cluster-scale when `params` is at paper
/// scale, small when quick.
fn fleet_sizes(params: &ExperimentParams) -> &'static [usize] {
    if params.scale >= 0.5 {
        &[8, 32, 128]
    } else {
        &[4, 16]
    }
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics on invalid configuration; see [`try_run_experiment`].
pub fn run_experiment(params: &ExperimentParams) -> Data {
    match try_run_experiment(params) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_experiment`] for callers that map
/// [`SimError`] to exit codes (the CLI).
pub fn try_run_experiment(params: &ExperimentParams) -> Result<Data, SimError> {
    try_run_experiment_with(&Engine::single(), params)
}

/// Fallible run whose calibration goes through a shared engine.
pub fn try_run_experiment_with(engine: &Engine, params: &ExperimentParams) -> Result<Data, SimError> {
    let model = calibrate_model_with(engine, params)?;
    let mut rows = Vec::new();
    for &hosts in fleet_sizes(params) {
        for keep_alive_min in KEEP_ALIVE_MINUTES {
            for policy in RoutingPolicy::ALL {
                let config = FleetConfig {
                    hosts,
                    invocations: hosts * INVOCATIONS_PER_HOST,
                    keep_alive_ms: keep_alive_min * 60_000.0,
                    policy,
                    population: POPULATION,
                    ..FleetConfig::default()
                };
                let pair = run_fleet_pair(&config, &model)?;
                let hits = pair.base.warm_hits + pair.base.lukewarm_hits;
                rows.push(Row {
                    policy: policy.label(),
                    hosts,
                    keep_alive_min,
                    cold_start_rate: pair.base.cold_start_rate(),
                    lukewarm_fraction: pair.base.lukewarm_fraction(),
                    lukewarm_of_hits: if hits == 0 {
                        0.0
                    } else {
                        pair.base.lukewarm_hits as f64 / hits as f64
                    },
                    mean_ms: pair.base.mean_latency_ms(),
                    p50_ms: pair.base.p50_ms(),
                    p99_ms: pair.base.p99_ms(),
                    speedup: pair.speedup(),
                });
            }
        }
    }
    Ok(Data {
        timings: model_timings(&model),
        rows,
    })
}

fn model_timings(model: &ServiceModel) -> Vec<FunctionTiming> {
    (0..model.functions()).map(|i| model.timing(i).clone()).collect()
}

impl Data {
    /// Rows for one policy, in sweep order.
    pub fn rows_for(&self, policy: RoutingPolicy) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.policy == policy.label()).collect()
    }

    /// Worst lukewarm fraction across the sweep for `policy`.
    pub fn peak_lukewarm_fraction(&self, policy: RoutingPolicy) -> f64 {
        self.rows_for(policy)
            .iter()
            .map(|r| r.lukewarm_fraction)
            .fold(0.0, f64::max)
    }

    /// Mean lukewarm share of warm hits across the sweep for `policy`.
    pub fn mean_lukewarm_of_hits(&self, policy: RoutingPolicy) -> f64 {
        let rows = self.rows_for(policy);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.lukewarm_of_hits).sum::<f64>() / rows.len() as f64
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet scale: routing policy x fleet size x keep-alive, \
             {} simulator-calibrated functions",
            self.timings.len()
        )?;
        let mut t = TextTable::new(&[
            "policy",
            "hosts",
            "keep-alive",
            "cold %",
            "lukewarm %",
            "lw/hits %",
            "mean ms",
            "p50 ms",
            "p99 ms",
            "JB speedup",
        ]);
        for r in &self.rows {
            t.row(&[
                r.policy.to_string(),
                r.hosts.to_string(),
                format!("{:.2}min", r.keep_alive_min),
                format!("{:.1}", r.cold_start_rate * 100.0),
                format!("{:.1}", r.lukewarm_fraction * 100.0),
                format!("{:.1}", r.lukewarm_of_hits * 100.0),
                format!("{:.3}", r.mean_ms),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                format!("{:+.1}%", (r.speedup - 1.0) * 100.0),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "Mean lukewarm share of warm hits: round-robin {:.1}% vs keep-alive-aware {:.1}%",
            self.mean_lukewarm_of_hits(RoutingPolicy::RoundRobin) * 100.0,
            self.mean_lukewarm_of_hits(RoutingPolicy::KeepAliveAware) * 100.0,
        )
    }
}

impl luke_obs::Export for Data {
    fn datasets(&self) -> Vec<luke_obs::Dataset> {
        let mut sweep = luke_obs::Dataset::new(
            "fleet_scale.sweep",
            &[
                "policy",
                "hosts",
                "keep_alive_min",
                "cold_start_rate",
                "lukewarm_fraction",
                "lukewarm_of_hits",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "speedup",
            ],
        );
        for r in &self.rows {
            sweep.push_row(vec![
                r.policy.into(),
                (r.hosts as u64).into(),
                r.keep_alive_min.into(),
                r.cold_start_rate.into(),
                r.lukewarm_fraction.into(),
                r.lukewarm_of_hits.into(),
                r.mean_ms.into(),
                r.p50_ms.into(),
                r.p99_ms.into(),
                r.speedup.into(),
            ]);
        }
        let mut calibration = luke_obs::Dataset::new(
            "fleet_scale.calibration",
            &["function", "warm_ms", "lukewarm_factor", "jukebox_factor"],
        );
        for t in &self.timings {
            calibration.push_row(vec![
                t.name.clone().into(),
                t.warm_ms.into(),
                t.lukewarm_factor.into(),
                t.jukebox_factor.into(),
            ]);
        }
        vec![sweep, calibration]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Data {
        run_experiment(&ExperimentParams::quick())
    }

    #[test]
    fn calibrated_timings_are_ordered_and_paper_sized() {
        let model = calibrate_model(&ExperimentParams::quick()).unwrap();
        for i in 0..model.functions() {
            let t = model.timing(i);
            assert!(t.warm_ms > 0.05 && t.warm_ms < 10.0, "{}: {}", t.name, t.warm_ms);
            assert!(t.lukewarm_factor > 1.0, "{}: flush model must cost", t.name);
            assert!(
                t.jukebox_factor < t.lukewarm_factor,
                "{}: jukebox must recover some penalty",
                t.name
            );
        }
    }

    #[test]
    fn routing_policy_changes_the_lukewarm_fraction() {
        let d = data();
        // Hit-normalized: scattering functions makes essentially every
        // warm hit lukewarm; pinning them keeps a visible share truly
        // warm. (The total fraction is policy-dependent too, but in the
        // opposite-looking direction: locality-blind policies convert
        // would-be lukewarm hits into cold starts.)
        let rr = d.mean_lukewarm_of_hits(RoutingPolicy::RoundRobin);
        let kaa = d.mean_lukewarm_of_hits(RoutingPolicy::KeepAliveAware);
        assert!(kaa < rr, "keep-alive-aware {kaa} vs round-robin {rr}");
        // And every sweep point agrees on cold starts and latency.
        let largest = *fleet_sizes(&ExperimentParams::quick()).last().unwrap();
        let rr_row = d
            .rows
            .iter()
            .find(|r| r.policy == "round-robin" && r.hosts == largest)
            .unwrap();
        let kaa_row = d
            .rows
            .iter()
            .find(|r| r.policy == "keep-alive-aware" && r.hosts == largest)
            .unwrap();
        assert!(kaa_row.cold_start_rate < rr_row.cold_start_rate);
        assert!(kaa_row.mean_ms < rr_row.mean_ms);
        assert!(kaa_row.lukewarm_fraction != rr_row.lukewarm_fraction);
    }

    #[test]
    fn short_keep_alive_raises_cold_starts() {
        let d = data();
        for policy in RoutingPolicy::ALL {
            let rows = d.rows_for(policy);
            let short: f64 = rows
                .iter()
                .filter(|r| r.keep_alive_min < 1.0)
                .map(|r| r.cold_start_rate)
                .sum();
            let long: f64 = rows
                .iter()
                .filter(|r| r.keep_alive_min >= 1.0)
                .map(|r| r.cold_start_rate)
                .sum();
            assert!(
                short > long,
                "{}: 15s keep-alive cold {short} vs 10min {long}",
                policy.label()
            );
        }
    }

    #[test]
    fn jukebox_speeds_up_every_policy() {
        let d = data();
        for policy in RoutingPolicy::ALL {
            for r in d.rows_for(policy) {
                assert!(
                    r.speedup > 1.0,
                    "{} at {} hosts: speedup {}",
                    r.policy,
                    r.hosts,
                    r.speedup
                );
            }
        }
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        let d = data();
        let points = fleet_sizes(&ExperimentParams::quick()).len()
            * KEEP_ALIVE_MINUTES.len()
            * RoutingPolicy::ALL.len();
        assert_eq!(d.rows.len(), points);
    }

    #[test]
    fn render_reports_policies_and_calibration() {
        let d = data();
        let s = d.to_string();
        assert!(s.contains("keep-alive-aware"));
        assert!(s.contains("Mean lukewarm share of warm hits"));
        let datasets = luke_obs::Export::datasets(&d);
        assert_eq!(datasets.len(), 2);
        assert_eq!(datasets[1].rows.len(), 20);
    }
}
