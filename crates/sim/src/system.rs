//! One simulated system: core + memory + page table + function instance.

use crate::config::SystemConfig;
use luke_obs::{Event, Registry};
use sim_cpu::{Core, InvocationResult};
use sim_mem::hierarchy::HierarchySnapshot;
use sim_mem::prefetch::{InstructionPrefetcher, NoPrefetcher};
use sim_mem::{MemoryHierarchy, PageTable};
use workloads::stressor::stressor_trace;
use workloads::{FunctionProfile, SyntheticFunction};

/// Metrics of one simulated invocation: core timing plus the memory-system
/// counter deltas attributable to it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvocationMetrics {
    /// Core-side timing result.
    pub result: InvocationResult,
    /// Memory-side counter deltas for this invocation.
    pub mem: HierarchySnapshot,
}

/// A full-system simulation of one function instance on one core.
#[derive(Debug)]
pub struct SystemSim {
    config: SystemConfig,
    core: Core,
    mem: MemoryHierarchy,
    page_table: PageTable,
    // The stressor is a different process: its own address space.
    stressor_page_table: PageTable,
    function: SyntheticFunction,
    next_invocation: u64,
    stressor_runs: u64,
    registry: Registry,
    obs_enabled: bool,
}

impl SystemSim {
    /// Creates a cold system running `profile`'s function.
    pub fn new(config: SystemConfig, profile: &FunctionProfile) -> Self {
        SystemSim {
            config,
            core: Core::new(config.core),
            mem: MemoryHierarchy::new(config.mem),
            page_table: PageTable::new(profile.seed),
            stressor_page_table: PageTable::new(profile.seed + 1_000_003),
            function: SyntheticFunction::build(profile),
            next_invocation: 0,
            stressor_runs: 0,
            registry: Registry::new(),
            obs_enabled: false,
        }
    }

    /// Enables per-invocation metrics collection into the registry.
    /// Disabled by default so the plain measurement path carries no
    /// observability cost.
    pub fn enable_obs(&mut self) {
        self.obs_enabled = true;
    }

    /// The metrics registry (empty unless [`SystemSim::enable_obs`] was
    /// called).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access, for callers contributing their own
    /// metrics (prefetcher telemetry, run-level gauges).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Enables core lifecycle event tracing with the given ring capacity
    /// (0 disables; see [`Core::set_event_capacity`]).
    pub fn set_event_capacity(&mut self, capacity: usize) {
        self.core.set_event_capacity(capacity);
    }

    /// Drains the core's traced lifecycle events, oldest first.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.core.take_events()
    }

    /// The platform configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The simulated function.
    pub fn function(&self) -> &SyntheticFunction {
        &self.function
    }

    /// Enables the perfect-I-cache oracle (Figure 10).
    pub fn set_perfect_icache(&mut self, enabled: bool) {
        self.mem.set_perfect_icache(enabled);
    }

    /// Flushes **all** microarchitectural state — cache hierarchy, TLBs,
    /// branch predictor, BTB, RAS — exactly the paper's interleaved
    /// baseline between invocations (§5.2).
    pub fn flush_microarch(&mut self) {
        self.mem.flush_all();
        self.core.flush_microarch();
    }

    /// Partially decays cache state (Figure 1's IAT model). `flush_core`
    /// additionally clears the branch predictor, appropriate once the
    /// interleaving is heavy.
    pub fn decay(&mut self, l2_fraction: f64, llc_fraction: f64, flush_core: bool) {
        let salt = 0x0DE0 + self.next_invocation;
        self.mem.decay(l2_fraction, llc_fraction, salt);
        if flush_core {
            self.core.flush_microarch();
        }
    }

    /// Runs a stressor between invocations on the same core — the §2.3
    /// methodology (`stress-ng` on the FUT's core) as an alternative to
    /// the flush-based interleaved baseline. `code_lines`/`data_lines`
    /// size the stressor's working sets; pick them larger than the
    /// private levels to thrash them.
    pub fn run_stressor(&mut self, code_lines: u64, data_lines: u64) {
        self.stressor_runs += 1;
        let trace = stressor_trace(code_lines, data_lines, 0xABCD + self.stressor_runs);
        // The stressor shares the core (and thus predictors and caches)
        // but not the address space; its cycles are not the FUT's.
        self.core.run_invocation(
            trace,
            &mut self.mem,
            &mut self.stressor_page_table,
            &mut NoPrefetcher,
        );
    }

    /// Runs the next invocation (indices advance monotonically, so each
    /// invocation gets its own stochastic variation).
    pub fn run_invocation(
        &mut self,
        prefetcher: &mut dyn InstructionPrefetcher,
    ) -> InvocationMetrics {
        let trace = self.function.invocation_trace(self.next_invocation);
        self.next_invocation += 1;
        let before = self.mem.snapshot();
        let result =
            self.core
                .run_invocation(trace, &mut self.mem, &mut self.page_table, prefetcher);
        let metrics = InvocationMetrics {
            result,
            mem: self.mem.snapshot().delta(&before),
        };
        if self.obs_enabled {
            self.registry.counter_inc("run.invocations");
            self.registry
                .hist_record("invocation.cycles", result.cycles);
            metrics.mem.add_to_registry(&mut self.registry);
            result.stats.add_to_registry(&mut self.registry);
            self.registry
                .counter_add("prefetch.issued", result.prefetch.issued);
            self.registry
                .counter_add("prefetch.redundant", result.prefetch.redundant);
            self.registry
                .counter_add("prefetch.metadata_written", result.prefetch.metadata_written);
            self.registry
                .counter_add("prefetch.metadata_read", result.prefetch.metadata_read);
        }
        metrics
    }

    /// Number of invocations run so far.
    pub fn invocations_run(&self) -> u64 {
        self.next_invocation
    }

    /// Read access to the memory hierarchy (for assertions and analyses).
    pub fn mem(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Read access to the core.
    pub fn core(&self) -> &Core {
        &self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::prefetch::NoPrefetcher;
    use workloads::FunctionProfile;

    fn quick_sim() -> SystemSim {
        let p = FunctionProfile::named("Fib-G").unwrap().scaled(0.04);
        SystemSim::new(SystemConfig::skylake(), &p)
    }

    #[test]
    fn reference_execution_warms_up() {
        let mut sim = quick_sim();
        let first = sim.run_invocation(&mut NoPrefetcher);
        let second = sim.run_invocation(&mut NoPrefetcher);
        let third = sim.run_invocation(&mut NoPrefetcher);
        assert!(second.result.cpi() < first.result.cpi());
        // Steady state: third is within noise of second (invocation
        // lengths vary, so compare CPI).
        assert!(third.result.cpi() < first.result.cpi());
        assert_eq!(sim.invocations_run(), 3);
    }

    #[test]
    fn lukewarm_execution_is_slower_than_reference() {
        let mut sim = quick_sim();
        sim.run_invocation(&mut NoPrefetcher);
        sim.run_invocation(&mut NoPrefetcher);
        let reference = sim.run_invocation(&mut NoPrefetcher);
        sim.flush_microarch();
        let lukewarm = sim.run_invocation(&mut NoPrefetcher);
        assert!(
            lukewarm.result.cpi() > reference.result.cpi() * 1.2,
            "lukewarm {} vs reference {}",
            lukewarm.result.cpi(),
            reference.result.cpi()
        );
    }

    #[test]
    fn decay_interpolates_between_reference_and_lukewarm() {
        let mut sim = quick_sim();
        for _ in 0..2 {
            sim.run_invocation(&mut NoPrefetcher);
        }
        let reference = sim.run_invocation(&mut NoPrefetcher);
        sim.decay(0.5, 0.2, false);
        let decayed = sim.run_invocation(&mut NoPrefetcher);
        sim.flush_microarch();
        let lukewarm = sim.run_invocation(&mut NoPrefetcher);
        assert!(decayed.result.cpi() >= reference.result.cpi() * 0.98);
        assert!(decayed.result.cpi() <= lukewarm.result.cpi() * 1.02);
    }

    #[test]
    fn perfect_icache_speeds_up_lukewarm() {
        let p = FunctionProfile::named("Fib-G").unwrap().scaled(0.04);
        let mut base = SystemSim::new(SystemConfig::skylake(), &p);
        let mut perfect = SystemSim::new(SystemConfig::skylake(), &p);
        perfect.set_perfect_icache(true);
        for sim in [&mut base, &mut perfect] {
            sim.flush_microarch();
            sim.run_invocation(&mut NoPrefetcher);
            sim.flush_microarch();
        }
        let b = base.run_invocation(&mut NoPrefetcher);
        let q = perfect.run_invocation(&mut NoPrefetcher);
        assert!(
            q.result.cycles < b.result.cycles,
            "perfect {} vs base {}",
            q.result.cycles,
            b.result.cycles
        );
    }

    #[test]
    fn mem_delta_is_per_invocation() {
        let mut sim = quick_sim();
        let a = sim.run_invocation(&mut NoPrefetcher);
        let b = sim.run_invocation(&mut NoPrefetcher);
        // Warm second invocation has far fewer L2 instruction misses.
        assert!(b.mem.l2.instr.misses < a.mem.l2.instr.misses);
        assert!(a.mem.traffic.demand_instr > 0);
    }
}
