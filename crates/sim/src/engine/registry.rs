//! The experiment registry: every experiment module registers one
//! [`Experiment`] trait object here, and the CLI, exporters, docs and
//! bench harness are all driven from this single list instead of
//! hand-maintained parallel match arms.

use super::{Cell, Engine};
use crate::runner::ExperimentParams;
use luke_common::SimError;
use std::fmt::Display;

/// What an experiment returns: a renderable (`Display`) and exportable
/// (`luke_obs::Export`) dataset. Blanket-implemented, so every existing
/// `Data` struct qualifies without changes.
pub trait ExperimentData: Display + luke_obs::Export {}

impl<T: Display + luke_obs::Export> ExperimentData for T {}

/// One registered experiment: a name for the CLI, a plan (the simulation
/// cells it will need) and a fold (the run that aggregates them).
pub trait Experiment: Sync {
    /// Canonical CLI name (`lukewarm figure <name>`).
    fn name(&self) -> &'static str;

    /// Alternate CLI names resolving to this experiment (e.g. `fig03`
    /// and `fig04` render from the same Top-Down run as `fig02`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description, surfaced by `lukewarm list` and the docs.
    fn description(&self) -> &'static str;

    /// The registering module's path (`module_path!()`), used by the
    /// registry-completeness test.
    fn module(&self) -> &'static str;

    /// The cell grid this experiment folds over. Experiments that do not
    /// use the cycle-accurate runner return an empty plan.
    fn plan(&self, params: &ExperimentParams) -> Vec<Cell>;

    /// Runs the experiment's fold against a (pre-fetched) engine.
    ///
    /// # Errors
    ///
    /// Returns the experiment's own validation/integrity errors.
    fn run(
        &self,
        engine: &Engine,
        params: &ExperimentParams,
    ) -> Result<Box<dyn ExperimentData>, SimError>;
}

use crate::experiments::*;

/// Every experiment, in paper order: figures, Table 3, then the
/// beyond-the-paper studies.
static REGISTRY: [&dyn Experiment; 22] = [
    &fig01_cpi_vs_iat::Entry,
    &fig02_topdown::Entry,
    &fig05_mpki::Entry,
    &fig06_footprints::Entry,
    &fig08_metadata_size::Entry,
    &fig09_metadata_cap::Entry,
    &fig10_speedup::Entry,
    &fig11_coverage::Entry,
    &fig12_bandwidth::Entry,
    &fig13_pif::Entry,
    &table3_broadwell::Entry,
    &ablations::Entry,
    &related_work::Entry,
    &workflow_slo::Entry,
    &host_interleaving::Entry,
    &keep_alive::Entry,
    &resilience::Entry,
    &fleet_scale::Entry,
    &cold_spectrum::Entry,
    &surge::Entry,
    &prewarm_frontier::Entry,
    &tenancy::Entry,
];

/// All registered experiments, in paper order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks an experiment up by canonical name or alias.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry()
        .iter()
        .find(|e| e.name() == name || e.aliases().contains(&name))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_and_aliases_are_unique() {
        let mut seen = HashSet::new();
        for e in registry() {
            assert!(seen.insert(e.name()), "duplicate name {}", e.name());
            for alias in e.aliases() {
                assert!(seen.insert(alias), "duplicate alias {alias}");
            }
        }
    }

    #[test]
    fn find_resolves_names_and_aliases() {
        assert_eq!(find("fig10").unwrap().name(), "fig10");
        assert_eq!(find("fig03").unwrap().name(), "fig02");
        assert_eq!(find("fleet").unwrap().name(), "fleet");
        assert_eq!(find("cold_spectrum").unwrap().name(), "cold-spectrum");
        assert!(find("fig99").is_none());
    }

    #[test]
    fn every_entry_has_a_description_and_module() {
        for e in registry() {
            assert!(!e.description().is_empty(), "{}", e.name());
            assert!(
                e.module().starts_with("lukewarm_sim::experiments::"),
                "{}: {}",
                e.name(),
                e.module()
            );
        }
    }

    #[test]
    fn quick_plans_agree_with_registration() {
        // Spot-check the cache-sharing claim: fig12's plan is exactly
        // fig11's, so running both through one engine simulates the
        // shared cells once.
        let params = ExperimentParams::quick();
        let k11: Vec<String> = find("fig11")
            .unwrap()
            .plan(&params)
            .iter()
            .map(Cell::key)
            .collect();
        let k12: Vec<String> = find("fig12")
            .unwrap()
            .plan(&params)
            .iter()
            .map(Cell::key)
            .collect();
        assert_eq!(k11, k12);
    }
}
