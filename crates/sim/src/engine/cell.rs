//! The unit of simulation work the engine schedules and memoizes.

use crate::config::SystemConfig;
use crate::runner::{self, ExperimentParams, PrefetcherKind, RunSpec, RunSummary};
use workloads::FunctionProfile;

/// One (platform, function, prefetcher, state, repetition-count) point of
/// an experiment's sweep grid — exactly the argument tuple of
/// [`runner::run`], which is a pure function of it.
///
/// The workload `scale` is intentionally *not* part of the cell: profiles
/// are scaled before they reach the runner, so two experiments passing the
/// same scaled profile share a cell even though they built it themselves.
/// [`Cell::simulate`] relies on the same invariant — `runner::run` reads
/// only `invocations` and `warmup` from its params.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Platform preset (Skylake or Broadwell, possibly with overrides).
    pub config: SystemConfig,
    /// The (already scaled) synthetic function to invoke.
    pub profile: FunctionProfile,
    /// Instruction prefetcher or oracle under test.
    pub prefetcher: PrefetcherKind,
    /// Cache-state manipulation between invocations.
    pub spec: RunSpec,
    /// Measured invocations.
    pub invocations: u64,
    /// Warm-up invocations before measurement.
    pub warmup: u64,
}

impl Cell {
    /// Builds a cell from the same arguments [`runner::run`] takes.
    pub fn new(
        config: &SystemConfig,
        profile: &FunctionProfile,
        prefetcher: PrefetcherKind,
        spec: RunSpec,
        params: &ExperimentParams,
    ) -> Cell {
        Cell {
            config: *config,
            profile: profile.clone(),
            prefetcher,
            spec,
            invocations: params.invocations,
            warmup: params.warmup,
        }
    }

    /// Canonical memoization key.
    ///
    /// Uses the `Debug` encoding of every field: Rust formats `f64` as the
    /// shortest string that round-trips, so distinct values never collide,
    /// and all key types are plain field structs/enums whose `Debug` output
    /// is injective over their values.
    pub fn key(&self) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|inv={}|warm={}",
            self.config, self.profile, self.prefetcher, self.spec, self.invocations, self.warmup
        )
    }

    /// Runs the full measurement protocol for this cell.
    ///
    /// Pure and deterministic: two calls with equal keys return identical
    /// summaries, which is what makes the engine's memoization and
    /// parallel execution invisible to experiment folds.
    pub fn simulate(&self) -> RunSummary {
        let params = ExperimentParams {
            // Scale is already baked into the profile; the runner ignores it.
            scale: 1.0,
            invocations: self.invocations,
            warmup: self.warmup,
        };
        runner::run(
            &self.config,
            &self.profile,
            self.prefetcher,
            self.spec,
            &params,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_for(name: &str, prefetcher: PrefetcherKind, spec: RunSpec) -> Cell {
        let params = ExperimentParams::quick();
        let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
        Cell::new(
            &SystemConfig::skylake(),
            &profile,
            prefetcher,
            spec,
            &params,
        )
    }

    #[test]
    fn keys_distinguish_every_axis() {
        let base = cell_for("Auth-G", PrefetcherKind::None, RunSpec::lukewarm());
        let other_fn = cell_for("Fib-G", PrefetcherKind::None, RunSpec::lukewarm());
        let other_pf = cell_for("Auth-G", PrefetcherKind::NextLine, RunSpec::lukewarm());
        let other_spec = cell_for("Auth-G", PrefetcherKind::None, RunSpec::reference());
        let mut other_params = base.clone();
        other_params.invocations += 1;
        let mut other_platform = base.clone();
        other_platform.config = SystemConfig::broadwell();
        let keys = [
            base.key(),
            other_fn.key(),
            other_pf.key(),
            other_spec.key(),
            other_params.key(),
            other_platform.key(),
        ];
        let distinct: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "{keys:#?}");
    }

    #[test]
    fn equal_cells_share_a_key() {
        let a = cell_for("Auth-G", PrefetcherKind::None, RunSpec::lukewarm());
        let b = cell_for("Auth-G", PrefetcherKind::None, RunSpec::lukewarm());
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn simulate_matches_direct_runner_call() {
        let params = ExperimentParams::quick();
        let profile = FunctionProfile::named("Auth-G").unwrap().scaled(params.scale);
        let cfg = SystemConfig::skylake();
        let cell = Cell::new(
            &cfg,
            &profile,
            PrefetcherKind::None,
            RunSpec::lukewarm(),
            &params,
        );
        let direct = runner::run(
            &cfg,
            &profile,
            PrefetcherKind::None,
            RunSpec::lukewarm(),
            &params,
        );
        assert_eq!(cell.simulate(), direct);
    }
}
