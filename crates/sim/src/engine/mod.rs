//! The shared experiment engine: a registry of every experiment, a
//! deterministic parallel executor for their simulation cells, and a
//! memoized cell cache shared across experiments.
//!
//! # Model
//!
//! An experiment is a *plan* plus a *fold*. The plan ([`Experiment::plan`])
//! enumerates the [`Cell`]s — (platform, function, prefetcher, state)
//! points — the experiment will measure; the fold ([`Experiment::run`])
//! calls [`Engine::run`] per cell and aggregates the summaries into the
//! experiment's typed `Data` struct exactly as the hand-rolled loops did.
//!
//! # Determinism
//!
//! [`runner::run`](crate::runner::run) is a pure function of the cell key:
//! the simulator seeds its RNG from the configuration, so equal cells
//! produce bit-identical [`RunSummary`]s. The engine exploits this twice:
//!
//! * **Memoization** — a cell simulated once is served from the cache
//!   forever after; since a cache hit returns the exact value a fresh
//!   simulation would, memoization cannot change any experiment's output.
//! * **Parallelism** — [`Engine::prefetch`] plans sequentially (dedup in
//!   plan order), executes the missing cells shard-parallel over
//!   [`std::thread::scope`] workers that share nothing and write results
//!   into disjoint slots, then merges into the cache in plan order. The
//!   fold itself stays sequential and reads only cached values, so
//!   `--threads N` is byte-identical to `--threads 1`.
//!
//! Cache hit/miss counters are deterministic too: they are accounted in
//! the sequential plan phase and on sequential inline misses, never from
//! worker threads.

mod cell;
mod registry;

pub use cell::Cell;
pub use registry::{find, registry, Experiment, ExperimentData};

use crate::config::SystemConfig;
use crate::runner::{ExperimentParams, PrefetcherKind, RunSpec, RunSummary};
use luke_common::SimError;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use workloads::FunctionProfile;

/// Execution context shared by every experiment in one invocation: the
/// memoized cell cache, the worker-thread budget, and the cache counters.
pub struct Engine {
    threads: usize,
    cache: Mutex<HashMap<String, RunSummary>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Engine {
    /// An engine that shards planned cells across up to `threads` workers.
    /// `0` is treated as `1`.
    pub fn new(threads: usize) -> Engine {
        Engine {
            threads: threads.max(1),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A single-threaded engine — the default context behind every
    /// `run_experiment(params)` compatibility wrapper.
    pub fn single() -> Engine {
        Engine::new(1)
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cells served from the cache so far (plan-time requests that an
    /// earlier simulation already covers, including duplicates within one
    /// plan).
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that required a fresh simulation — equivalently, the number
    /// of unique cells simulated so far.
    pub fn cells_simulated(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Simulates every not-yet-cached cell of a plan, sharding the missing
    /// cells across scoped worker threads (sequential plan → shared-nothing
    /// execute → merge in plan order, the fleet pattern).
    ///
    /// Each planned cell is accounted exactly once: a cache hit (already
    /// simulated, or duplicated earlier in this plan) or a miss (simulated
    /// now). Both phases that touch the counters and the cache run on the
    /// calling thread, so the counts are independent of the thread budget.
    pub fn prefetch(&self, cells: &[Cell]) {
        let mut queue: Vec<&Cell> = Vec::new();
        {
            let cache = self.cache.lock().expect("engine cache poisoned");
            let mut queued: HashSet<String> = HashSet::new();
            for cell in cells {
                let key = cell.key();
                if cache.contains_key(&key) || queued.contains(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    queued.insert(key);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    queue.push(cell);
                }
            }
        }
        if queue.is_empty() {
            return;
        }

        let mut results: Vec<Option<RunSummary>> = vec![None; queue.len()];
        let workers = self.threads.min(queue.len());
        let shard_len = queue.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (cells, out) in queue.chunks(shard_len).zip(results.chunks_mut(shard_len)) {
                scope.spawn(move || {
                    for (cell, slot) in cells.iter().zip(out.iter_mut()) {
                        *slot = Some(cell.simulate());
                    }
                });
            }
        });

        let mut cache = self.cache.lock().expect("engine cache poisoned");
        for (cell, summary) in queue.iter().zip(results) {
            let summary = summary.expect("worker filled every slot");
            cache.insert(cell.key(), summary);
        }
    }

    /// Memoized drop-in for [`runner::run`](crate::runner::run): serves the
    /// cell from the cache when present, simulates (and caches) it inline
    /// otherwise.
    ///
    /// Inline lookups of planned cells are not re-counted — each planned
    /// cell was already accounted by [`Engine::prefetch`]. An *unplanned*
    /// cell counts as one more simulated cell.
    pub fn run(
        &self,
        config: &SystemConfig,
        profile: &FunctionProfile,
        prefetcher: PrefetcherKind,
        spec: RunSpec,
        params: &ExperimentParams,
    ) -> RunSummary {
        let cell = Cell::new(config, profile, prefetcher, spec, params);
        let key = cell.key();
        if let Some(hit) = self
            .cache
            .lock()
            .expect("engine cache poisoned")
            .get(&key)
            .copied()
        {
            return hit;
        }
        let summary = cell.simulate();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .expect("engine cache poisoned")
            .insert(key, summary);
        summary
    }

    /// Plans and runs one registered experiment: `prefetch(plan)` then the
    /// experiment's fold.
    ///
    /// # Errors
    ///
    /// Propagates the experiment's own validation/integrity errors.
    pub fn execute(
        &self,
        experiment: &dyn Experiment,
        params: &ExperimentParams,
    ) -> Result<Box<dyn ExperimentData>, SimError> {
        self.prefetch(&experiment.plan(params));
        experiment.run(self, params)
    }

    /// Writes the engine counters into a metrics registry under the
    /// `engine.*` namespace (see `docs/OBSERVABILITY.md`).
    pub fn fill_registry(&self, registry: &mut luke_obs::Registry) {
        registry.counter_add("engine.cache.hits", self.cache_hits());
        registry.counter_add("engine.cache.misses", self.cells_simulated());
        registry.counter_add("engine.cells.simulated", self.cells_simulated());
        registry.gauge_set("engine.threads", self.threads as f64);
    }

    /// The engine counters as an exportable dataset (appended to
    /// `figure --all` emissions). Deliberately excludes the thread budget:
    /// the counters are thread-independent, so this dataset is too — which
    /// keeps `--threads N` emissions byte-identical to `--threads 1`.
    pub fn dataset(&self) -> luke_obs::Dataset {
        let mut ds = luke_obs::Dataset::new(
            "engine.cells",
            &["cells simulated", "cache hits", "cache misses"],
        );
        ds.push_row(vec![
            self.cells_simulated().into(),
            self.cache_hits().into(),
            self.cells_simulated().into(),
        ]);
        ds
    }

    /// One-line human-readable cache report for `--emit table` output and
    /// the bench harness.
    pub fn summary_line(&self) -> String {
        format!(
            "engine: {} cells simulated, {} cache hits, {} thread(s)",
            self.cells_simulated(),
            self.cache_hits(),
            self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_cells(names: &[&str]) -> Vec<Cell> {
        let params = ExperimentParams::quick();
        let cfg = SystemConfig::skylake();
        names
            .iter()
            .map(|name| {
                let profile = FunctionProfile::named(name).unwrap().scaled(params.scale);
                Cell::new(
                    &cfg,
                    &profile,
                    PrefetcherKind::None,
                    RunSpec::lukewarm(),
                    &params,
                )
            })
            .collect()
    }

    #[test]
    fn prefetch_counts_hits_and_misses_deterministically() {
        let cells = suite_cells(&["Auth-G", "Fib-G", "Auth-G"]);
        for threads in [1, 4] {
            let engine = Engine::new(threads);
            engine.prefetch(&cells);
            assert_eq!(engine.cells_simulated(), 2, "threads={threads}");
            assert_eq!(engine.cache_hits(), 1, "threads={threads}");
            // Replanning the same cells is pure hits.
            engine.prefetch(&cells);
            assert_eq!(engine.cells_simulated(), 2);
            assert_eq!(engine.cache_hits(), 4);
        }
    }

    #[test]
    fn parallel_prefetch_matches_serial_runs() {
        let cells = suite_cells(&["Auth-G", "Fib-G", "AES-N", "Pay-N"]);
        let engine = Engine::new(4);
        engine.prefetch(&cells);
        let params = ExperimentParams::quick();
        for cell in &cells {
            let cached = engine.run(
                &cell.config,
                &cell.profile,
                cell.prefetcher,
                cell.spec,
                &params,
            );
            assert_eq!(cached, cell.simulate(), "{}", cell.profile.name);
        }
        // Serving those four cells must not have simulated anything new.
        assert_eq!(engine.cells_simulated(), 4);
    }

    #[test]
    fn inline_miss_simulates_and_caches() {
        let engine = Engine::single();
        let params = ExperimentParams::quick();
        let profile = FunctionProfile::named("Fib-G").unwrap().scaled(params.scale);
        let cfg = SystemConfig::skylake();
        let first = engine.run(
            &cfg,
            &profile,
            PrefetcherKind::None,
            RunSpec::reference(),
            &params,
        );
        assert_eq!(engine.cells_simulated(), 1);
        let second = engine.run(
            &cfg,
            &profile,
            PrefetcherKind::None,
            RunSpec::reference(),
            &params,
        );
        assert_eq!(first, second);
        assert_eq!(engine.cells_simulated(), 1, "second call must be a hit");
    }

    #[test]
    fn metrics_surface_through_obs_registry() {
        let engine = Engine::new(2);
        engine.prefetch(&suite_cells(&["Auth-G", "Auth-G"]));
        let mut reg = luke_obs::Registry::new();
        engine.fill_registry(&mut reg);
        assert_eq!(reg.counter("engine.cells.simulated"), 1);
        assert_eq!(reg.counter("engine.cache.hits"), 1);
        assert_eq!(reg.counter("engine.cache.misses"), 1);
        assert_eq!(reg.gauge("engine.threads"), Some(2.0));
        let ds = engine.dataset();
        assert_eq!(ds.name, "engine.cells");
        assert_eq!(ds.rows.len(), 1);
        assert!(engine.summary_line().contains("1 cells simulated"));
    }
}
