//! Registry completeness: every experiment module in `src/experiments/`
//! must be registered in `engine::registry()`. Adding a module without
//! registering it fails here, not months later when someone notices the
//! CLI cannot run it.

use std::collections::HashSet;
use std::path::Path;

#[test]
fn every_experiment_module_is_registered() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/experiments");
    let registered: Vec<&str> = lukewarm_sim::engine::registry()
        .iter()
        .map(|e| e.module())
        .collect();

    let mut missing = Vec::new();
    let mut stems = HashSet::new();
    for entry in std::fs::read_dir(&dir).expect("experiments dir exists") {
        let path = entry.expect("readable dir entry").path();
        let stem = match (path.extension(), path.file_stem()) {
            (Some(ext), Some(stem)) if ext == "rs" => {
                stem.to_str().expect("utf-8 filename").to_string()
            }
            _ => continue,
        };
        if stem == "mod" {
            continue;
        }
        if !registered
            .iter()
            .any(|module| module.ends_with(&format!("::{stem}")))
        {
            missing.push(stem.clone());
        }
        stems.insert(stem);
    }

    assert!(
        missing.is_empty(),
        "experiment modules missing from engine::registry(): {missing:?}"
    );
    // And the converse: nothing registered from a module that is gone.
    for module in registered {
        let stem = module.rsplit("::").next().unwrap();
        assert!(
            stems.contains(stem),
            "{module} registered but src/experiments/{stem}.rs does not exist"
        );
    }
}
