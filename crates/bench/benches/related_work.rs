//! **Related work (§6)** — Jukebox vs indiscriminate cache restoration
//! (Daly & Cain / RECAP) vs BTB-directed prefetching (FDIP/Boomerang):
//! speedup, metadata traffic and bandwidth on the same harness.

use lukewarm_sim::experiments::related_work;

fn main() {
    luke_bench::harness("Related work: prior-art families", |params| {
        related_work::run_experiment(params).to_string()
    });
}
