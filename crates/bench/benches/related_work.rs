//! **Related work (§6)** — Jukebox vs indiscriminate cache restoration
//! (Daly & Cain / RECAP) vs BTB-directed prefetching (FDIP/Boomerang):
//! speedup, metadata traffic and bandwidth on the same harness.

fn main() {
    luke_bench::harness_experiment("related-work");
}
