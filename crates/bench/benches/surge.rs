//! **Surge (beyond the paper)** — fleet resilience under a flash crowd:
//! routing policy x chaos level x admission control, reporting
//! SLO-violation rate, shed arrivals, failovers, host crashes, retry
//! amplification and the cold/lukewarm/warm mix.

fn main() {
    luke_bench::harness_experiment("surge");
}
