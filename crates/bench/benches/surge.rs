//! **Surge (beyond the paper)** — fleet resilience under a flash crowd:
//! routing policy x chaos level x admission control, reporting
//! SLO-violation rate, shed arrivals, failovers, host crashes, retry
//! amplification, the cold/lukewarm/warm mix, and (since the windowed
//! time-series landed) a per-window latency/shed/SLO-burn timeline.
//!
//! Also records a `BENCH_surge.json` perf-trajectory point: wall-clock
//! for the whole policy x chaos grid, as a sweep-throughput metric.

use luke_bench::record::BenchRecord;
use std::time::Instant;

fn main() {
    let start = Instant::now();
    luke_bench::harness_experiment("surge");
    let elapsed = start.elapsed().as_secs_f64();
    let mut record = BenchRecord::new("surge");
    record.metric("sweeps_per_s", 1.0 / elapsed);
    record.phase("total_s", elapsed);
    match record.write() {
        Ok(path) => println!("trajectory record: {}", path.display()),
        Err(e) => println!("trajectory record not written: {e}"),
    }
}
