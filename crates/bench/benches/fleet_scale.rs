//! **Fleet scaling** — the cluster-scale routing-policy sweep (calibrated
//! against the cycle-accurate runner), followed by a wall-clock scaling
//! section showing that the streaming producer + work-stealing shard
//! pipeline actually buys parallel speedup: `run_fleet` is timed
//! end-to-end at 1/2/4/8 worker threads with the merged telemetry
//! checked bit-identical along the way, then a ≥2,048-host headline row
//! demonstrates cluster scale.

use luke_bench::record::BenchRecord;
use luke_fleet::{run_fleet, FleetConfig, ServiceModel};
use lukewarm_sim::experiments::fleet_scale;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::paper_suite;

/// Hosts in the thread-scaling section (matches the determinism test's
/// sweep scale). Override with `LUKEWARM_FLEET_HOSTS` (CI runs a quick
/// scale).
const SCALING_HOSTS: usize = 64;
/// Invocations per host — large enough that the parallel host-processing
/// phase is worth measuring. Override with
/// `LUKEWARM_FLEET_INVOCATIONS_PER_HOST`.
const SCALING_INVOCATIONS_PER_HOST: usize = 20_000;
/// Hosts in the cluster-scale headline row. Override with
/// `LUKEWARM_FLEET_HEADLINE_HOSTS`.
const HEADLINE_HOSTS: usize = 2_048;
/// Invocations per host in the headline row (the row is about host
/// count, not stream length). Override with
/// `LUKEWARM_FLEET_HEADLINE_INVOCATIONS_PER_HOST`.
const HEADLINE_INVOCATIONS_PER_HOST: usize = 512;

fn env_scale(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Times `run_fleet` end-to-end across worker counts (the streaming
/// pipeline overlaps routing with host processing, so phases are no
/// longer separable wall-clock sections), then runs the cluster-scale
/// headline row. Returns the report and fills the trajectory record.
fn thread_scaling_report(record: &mut BenchRecord) -> String {
    let model = ServiceModel::analytic(&paper_suite()).expect("paper suite is valid");
    let hosts = env_scale("LUKEWARM_FLEET_HOSTS", SCALING_HOSTS);
    let config = FleetConfig {
        hosts,
        invocations: hosts
            * env_scale(
                "LUKEWARM_FLEET_INVOCATIONS_PER_HOST",
                SCALING_INVOCATIONS_PER_HOST,
            ),
        ..FleetConfig::default()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    writeln!(
        out,
        "thread scaling — {} hosts, {} invocations, policy {}, {} core(s) available",
        config.hosts, config.invocations, config.policy, cores
    )
    .unwrap();
    if cores == 1 {
        writeln!(
            out,
            "  (single-core machine: expect determinism but no wall-clock speedup)"
        )
        .unwrap();
    }

    // End-to-end sweep over worker counts. Each run re-routes the same
    // stream; the merged snapshot must never move.
    writeln!(
        out,
        "  {:>7}  {:>9}  {:>12}  {:>8}",
        "threads", "elapsed", "inv/s", "speedup"
    )
    .unwrap();
    let mut reference: Option<(String, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        // Best-of-3: shared-machine noise only ever *adds* wall-clock
        // time, so the fastest repetition is the faithful measure of the
        // pipeline itself. Every repetition's telemetry must still match.
        let mut elapsed = f64::INFINITY;
        let mut snapshot = String::new();
        for _ in 0..3 {
            let start = Instant::now();
            let run = run_fleet(
                &FleetConfig {
                    threads,
                    ..config.clone()
                },
                &model,
                false,
            )
            .expect("config is valid");
            let rep = start.elapsed().as_secs_f64();
            snapshot = run.snapshot.to_json();
            elapsed = elapsed.min(rep);
        }
        let serial = match &reference {
            None => {
                reference = Some((snapshot, elapsed));
                elapsed
            }
            Some((baseline, serial)) => {
                assert_eq!(
                    &snapshot, baseline,
                    "{threads}-thread telemetry diverged from 1-thread"
                );
                *serial
            }
        };
        let throughput = config.invocations as f64 / elapsed;
        record.phase(&format!("end_to_end_{threads}t_s"), elapsed);
        record.metric(&format!("invocations_per_s_{threads}t"), throughput);
        record.scaling_point(threads, elapsed, throughput);
        writeln!(
            out,
            "  {:>7}  {:>8.3}s  {:>12.0}  {:>7.2}x",
            threads,
            elapsed,
            throughput,
            serial / elapsed
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (merged telemetry verified bit-identical across thread counts)"
    )
    .unwrap();

    // Headline row — cluster scale. Host count stays ≥2,048 even in
    // quick (CI) mode: the row exists to exercise the pipeline's O(hosts
    // + in-flight) memory shape, not to be fast.
    let headline_hosts = env_scale("LUKEWARM_FLEET_HEADLINE_HOSTS", HEADLINE_HOSTS);
    let headline = FleetConfig {
        hosts: headline_hosts,
        threads: 8,
        invocations: headline_hosts
            * env_scale(
                "LUKEWARM_FLEET_HEADLINE_INVOCATIONS_PER_HOST",
                HEADLINE_INVOCATIONS_PER_HOST,
            ),
        population: 4 * headline_hosts,
        ..FleetConfig::default()
    };
    let start = Instant::now();
    let run = run_fleet(&headline, &model, false).expect("headline config is valid");
    let elapsed = start.elapsed().as_secs_f64();
    let throughput = headline.invocations as f64 / elapsed;
    record.phase("headline_s", elapsed);
    record.metric(&format!("invocations_per_s_{headline_hosts}h"), throughput);
    writeln!(
        out,
        "  headline — {} hosts, {} invocations, 8 threads: {:.3}s ({:.0} inv/s)",
        headline.hosts, run.invocations, elapsed, throughput
    )
    .unwrap();
    out
}

fn main() {
    luke_bench::harness("Fleet scaling", |params| {
        let mut record = BenchRecord::new("fleet_scale");
        let mut out = fleet_scale::run_experiment(params).to_string();
        out.push('\n');
        out.push_str(&thread_scaling_report(&mut record));
        match record.write() {
            Ok(path) => {
                out.push_str(&format!("trajectory record: {}\n", path.display()));
            }
            Err(e) => out.push_str(&format!("trajectory record not written: {e}\n")),
        }
        out
    });
}
