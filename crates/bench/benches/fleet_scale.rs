//! **Fleet scaling** — the cluster-scale routing-policy sweep (calibrated
//! against the cycle-accurate runner), followed by a wall-clock scaling
//! section showing that deterministic host sharding actually buys
//! parallel speedup: the 64-host sweep's phases are timed separately at
//! 1/2/4/8 worker threads and the merged telemetry is checked
//! bit-identical along the way.

use luke_bench::record::BenchRecord;
use luke_fleet::{run_fleet, FleetConfig, FleetHost, RoutedInvocation, Router, ServiceModel};
use luke_fleet::Population;
use luke_obs::Registry;
use lukewarm_sim::experiments::fleet_scale;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::paper_suite;

/// Hosts in the thread-scaling section (matches the determinism test's
/// sweep scale). Override with `LUKEWARM_FLEET_HOSTS` (CI runs a quick
/// scale).
const SCALING_HOSTS: usize = 64;
/// Invocations per host — large enough that the parallel host-processing
/// phase is worth measuring. Override with
/// `LUKEWARM_FLEET_INVOCATIONS_PER_HOST`.
const SCALING_INVOCATIONS_PER_HOST: usize = 20_000;

fn env_scale(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Times the three phases of a fleet run separately, sweeping the worker
/// count over the parallel phase. Returns the report and fills the
/// trajectory record.
fn thread_scaling_report(record: &mut BenchRecord) -> String {
    let model = ServiceModel::analytic(&paper_suite()).expect("paper suite is valid");
    let hosts = env_scale("LUKEWARM_FLEET_HOSTS", SCALING_HOSTS);
    let config = FleetConfig {
        hosts,
        invocations: hosts * env_scale(
            "LUKEWARM_FLEET_INVOCATIONS_PER_HOST",
            SCALING_INVOCATIONS_PER_HOST,
        ),
        ..FleetConfig::default()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    writeln!(
        out,
        "thread scaling — {} hosts, {} invocations, policy {}, {} core(s) available",
        config.hosts, config.invocations, config.policy, cores
    )
    .unwrap();
    if cores == 1 {
        writeln!(
            out,
            "  (single-core machine: expect determinism but no wall-clock speedup)"
        )
        .unwrap();
    }

    // Phase 1 — route (sequential by design: the Amdahl floor).
    let population = Population::synthesize(&config);
    let mut generator = population.generator(config.seed).expect("config is valid");
    let mut router = Router::new(config.policy, config.hosts);
    let route_start = Instant::now();
    let mut queues: Vec<Vec<RoutedInvocation>> = vec![Vec::new(); config.hosts];
    for event in generator.by_ref().take(config.invocations) {
        let function = event.instance;
        let expected_ms = model.timing(function % model.functions()).warm_ms;
        queues[router.route(function, expected_ms)]
            .push(RoutedInvocation::new(event.at_ms, function));
    }
    let route_s = route_start.elapsed().as_secs_f64();
    record.phase("route_s", route_s);
    writeln!(out, "  route (sequential): {route_s:.3}s").unwrap();

    // Phase 2 — process, swept over worker counts. Each sweep rebuilds the
    // hosts from scratch; phase 3's merged snapshot must never move.
    writeln!(out, "  {:>7}  {:>9}  {:>8}", "threads", "process", "speedup").unwrap();
    let mut reference: Option<(String, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut hosts: Vec<FleetHost> = (0..config.hosts)
            .map(|id| FleetHost::new(&config, id))
            .collect();
        let shard_len = config.hosts.div_ceil(threads.min(config.hosts));
        let process_start = Instant::now();
        std::thread::scope(|scope| {
            for (shard, shard_queues) in hosts.chunks_mut(shard_len).zip(queues.chunks(shard_len)) {
                let model = &model;
                let config = &config;
                scope.spawn(move || {
                    for (host, queue) in shard.iter_mut().zip(shard_queues) {
                        for &routed in queue {
                            host.process(config, model, false, routed);
                        }
                    }
                });
            }
        });
        let elapsed = process_start.elapsed().as_secs_f64();

        let mut registry = Registry::new();
        for host in &hosts {
            host.fill_registry(&mut registry);
        }
        let snapshot = registry.snapshot().to_json();
        let serial = match &reference {
            None => {
                reference = Some((snapshot, elapsed));
                elapsed
            }
            Some((baseline, serial)) => {
                assert_eq!(
                    &snapshot, baseline,
                    "{threads}-thread telemetry diverged from 1-thread"
                );
                *serial
            }
        };
        record.scaling_point(threads, elapsed, config.invocations as f64 / elapsed);
        writeln!(
            out,
            "  {:>7}  {:>8.3}s  {:>7.2}x",
            threads,
            elapsed,
            serial / elapsed
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (merged telemetry verified bit-identical across thread counts)"
    )
    .unwrap();

    // End-to-end sanity: the monolithic entry point at 1 and 4 threads.
    for threads in [1usize, 4] {
        let start = Instant::now();
        let run = run_fleet(
            &FleetConfig {
                threads,
                ..config.clone()
            },
            &model,
            false,
        )
        .expect("config is valid");
        let elapsed = start.elapsed().as_secs_f64();
        record.phase(&format!("end_to_end_{threads}t_s"), elapsed);
        record.metric(
            &format!("invocations_per_s_{threads}t"),
            run.invocations as f64 / elapsed,
        );
        writeln!(
            out,
            "  end-to-end run_fleet, {} thread(s): {:.3}s ({} invocations)",
            threads, elapsed, run.invocations
        )
        .unwrap();
    }
    out
}

fn main() {
    luke_bench::harness("Fleet scaling", |params| {
        let mut record = BenchRecord::new("fleet_scale");
        let mut out = fleet_scale::run_experiment(params).to_string();
        out.push('\n');
        out.push_str(&thread_scaling_report(&mut record));
        match record.write() {
            Ok(path) => {
                out.push_str(&format!("trajectory record: {}\n", path.display()));
            }
            Err(e) => out.push_str(&format!("trajectory record not written: {e}\n")),
        }
        out
    });
}
