//! **Ablations** — design-choice studies beyond the paper's own sweeps:
//! replay temporal order, CRRB depth, and snapshot-accelerated cold boot
//! (§3.4.2).

use lukewarm_sim::experiments::ablations;

fn main() {
    luke_bench::harness("Ablations: Jukebox design choices", |params| {
        ablations::run_experiment(params).to_string()
    });
}
