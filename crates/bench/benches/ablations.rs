//! **Ablations** — design-choice studies beyond the paper's own sweeps:
//! replay temporal order, CRRB depth, and snapshot-accelerated cold boot
//! (§3.4.2).

fn main() {
    luke_bench::harness_experiment("ablations");
}
