//! **Figure 1** — normalized CPI vs invocation inter-arrival time for an
//! authentication function (Python) and AES (NodeJS) on a high-occupancy
//! host. Paper: CPI climbs with IAT and saturates around 250–270% past
//! one-second IATs.

fn main() {
    luke_bench::harness_experiment("fig01");
}
