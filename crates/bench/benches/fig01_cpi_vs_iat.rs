//! **Figure 1** — normalized CPI vs invocation inter-arrival time for an
//! authentication function (Python) and AES (NodeJS) on a high-occupancy
//! host. Paper: CPI climbs with IAT and saturates around 250–270% past
//! one-second IATs.

use lukewarm_sim::experiments::fig01;

fn main() {
    luke_bench::harness("Figure 1: CPI vs IAT", |params| {
        fig01::run_experiment(params).to_string()
    });
}
