//! Criterion micro-benchmarks of the simulator's hot data structures:
//! cache accesses, CRRB recording, branch prediction, metadata
//! encode/decode, trace generation and a full invocation step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jukebox::{Crrb, JukeboxConfig};
use luke_common::addr::{LineAddr, VirtAddr};
use sim_cpu::branch::BranchUnit;
use sim_cpu::instr::BranchKind;
use sim_cpu::{Core, CoreConfig};
use sim_mem::cache::{AccessClass, Cache, Replacement};
use sim_mem::config::HierarchyConfig;
use sim_mem::hierarchy::MemoryHierarchy;
use sim_mem::page_table::PageTable;
use sim_mem::prefetch::NoPrefetcher;
use workloads::{FunctionProfile, SyntheticFunction};

fn bench_cache(c: &mut Criterion) {
    let cfg = HierarchyConfig::skylake_like();
    c.bench_function("cache/l2_access_hit", |b| {
        let mut cache = Cache::new(cfg.l2, Replacement::Lru);
        for line in 0..1024u64 {
            cache.fill(line, 0, AccessClass::Instr, false);
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 1024;
            std::hint::black_box(cache.access(line, 0, AccessClass::Instr))
        });
    });
    c.bench_function("cache/l2_fill_evict", |b| {
        let mut cache = Cache::new(cfg.l2, Replacement::Lru);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            std::hint::black_box(cache.fill(line, 0, AccessClass::Instr, false))
        });
    });
}

fn bench_crrb(c: &mut Criterion) {
    c.bench_function("jukebox/crrb_record", |b| {
        let mut crrb = Crrb::new(JukeboxConfig::paper_default());
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            std::hint::black_box(crrb.record(VirtAddr::new(addr).line()))
        });
    });
}

fn bench_metadata_codec(c: &mut Criterion) {
    use jukebox::metadata::{decode, encode, MetadataEntry};
    let config = JukeboxConfig::paper_default();
    let entries: Vec<MetadataEntry> = (0..2000u64)
        .map(|i| MetadataEntry::with_line(VirtAddr::new(i * 1024), (i % 16) as usize))
        .collect();
    c.bench_function("jukebox/metadata_encode_2k", |b| {
        b.iter(|| std::hint::black_box(encode(&entries, &config)));
    });
    let bytes = encode(&entries, &config);
    c.bench_function("jukebox/metadata_decode_2k", |b| {
        b.iter(|| std::hint::black_box(decode(&bytes, entries.len(), &config)));
    });
}

fn bench_branch_predictor(c: &mut Criterion) {
    c.bench_function("cpu/branch_predict", |b| {
        let mut bu = BranchUnit::new(&CoreConfig::skylake_like());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(bu.predict_and_update(
                VirtAddr::new(0x1000 + (i % 64) * 8),
                BranchKind::Conditional,
                i.is_multiple_of(3),
                VirtAddr::new(0x2000),
                VirtAddr::new(0x1002),
            ))
        });
    });
}

fn bench_hierarchy_fetch(c: &mut Criterion) {
    c.bench_function("mem/fetch_instr_warm", |b| {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut pt = PageTable::new(0);
        // Warm a small window.
        for i in 0..64u64 {
            let line = LineAddr::from_index(1000 + i);
            let pline = pt.translate_line(line);
            mem.fetch_instr(line, pline, 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            let line = LineAddr::from_index(1000 + i);
            let pline = pt.translate_line(line);
            std::hint::black_box(mem.fetch_instr(line, pline, 0))
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let profile = FunctionProfile::named("Auth-G").unwrap().scaled(0.1);
    let function = SyntheticFunction::build(&profile);
    c.bench_function("workloads/trace_generation", |b| {
        let mut inv = 0u64;
        b.iter(|| {
            inv += 1;
            std::hint::black_box(function.invocation_trace(inv).len())
        });
    });
}

fn bench_invocation(c: &mut Criterion) {
    let profile = FunctionProfile::named("Fib-G").unwrap().scaled(0.05);
    let function = SyntheticFunction::build(&profile);
    let trace = function.invocation_trace(0);
    c.bench_function("sim/run_invocation_lukewarm", |b| {
        b.iter_batched(
            || {
                (
                    Core::new(CoreConfig::skylake_like()),
                    MemoryHierarchy::new(HierarchyConfig::skylake_like()),
                    PageTable::new(0),
                )
            },
            |(mut core, mut mem, mut pt)| {
                std::hint::black_box(core.run_invocation(
                    trace.iter().copied(),
                    &mut mem,
                    &mut pt,
                    &mut NoPrefetcher,
                ))
            },
            BatchSize::LargeInput,
        );
    });
}

criterion_group!(
    micro,
    bench_cache,
    bench_crrb,
    bench_metadata_codec,
    bench_branch_predictor,
    bench_hierarchy_fetch,
    bench_trace_generation,
    bench_invocation
);
criterion_main!(micro);
