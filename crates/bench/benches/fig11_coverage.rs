//! **Figure 11** — L2 instruction-miss coverage / uncovered / overpredicted,
//! normalized to baseline misses. Paper: Go 75–90% coverage,
//! Python/NodeJS 48–74% (metadata overflow), ≈10% overprediction.

fn main() {
    luke_bench::harness_experiment("fig11");
}
