//! **Figure 11** — L2 instruction-miss coverage / uncovered / overpredicted,
//! normalized to baseline misses. Paper: Go 75–90% coverage,
//! Python/NodeJS 48–74% (metadata overflow), ≈10% overprediction.

use lukewarm_sim::experiments::fig11;

fn main() {
    luke_bench::harness("Figure 11: miss coverage", |params| {
        fig11::run_experiment(params).to_string()
    });
}
