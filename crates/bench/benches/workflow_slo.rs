//! **Workflows** — end-to-end latency of the Hotel Reservation and Online
//! Boutique request chains (the SLO framing of the paper's introduction):
//! warm vs lukewarm vs lukewarm+Jukebox, per stage and end-to-end.

use lukewarm_sim::experiments::workflow_slo;

fn main() {
    luke_bench::harness("Workflows: end-to-end SLO impact", |params| {
        workflow_slo::run_experiment(params).to_string()
    });
}
