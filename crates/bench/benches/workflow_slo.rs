//! **Workflows** — end-to-end latency of the Hotel Reservation and Online
//! Boutique request chains (the SLO framing of the paper's introduction):
//! warm vs lukewarm vs lukewarm+Jukebox, per stage and end-to-end.

fn main() {
    luke_bench::harness_experiment("workflows");
}
