//! **Cold-start spectrum (beyond the paper)** — end-to-end cost of a
//! cold start under a full boot, a lazily-paged snapshot restore, a
//! REAP-style working-set prefetch, and REAP stacked with Jukebox,
//! across keep-alive windows and metadata-corruption rates.

fn main() {
    luke_bench::harness_experiment("cold-spectrum");
}
