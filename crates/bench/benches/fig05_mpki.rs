//! **Figure 5** — L2/LLC MPKI breakdowns (instruction vs data) on the
//! Broadwell-like characterization platform. Paper: L2 ≈54/72 MPKI
//! (ref/interleaved); LLC instruction misses ≈0 in reference, >10 when
//! interleaved, mostly instructions.

use lukewarm_sim::experiments::fig05;

fn main() {
    luke_bench::harness("Figure 5: cache-miss characterization", |params| {
        fig05::run_experiment(params).to_string()
    });
}
