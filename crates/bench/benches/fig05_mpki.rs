//! **Figure 5** — L2/LLC MPKI breakdowns (instruction vs data) on the
//! Broadwell-like characterization platform. Paper: L2 ≈54/72 MPKI
//! (ref/interleaved); LLC instruction misses ≈0 in reference, >10 when
//! interleaved, mostly instructions.

fn main() {
    luke_bench::harness_experiment("fig05");
}
