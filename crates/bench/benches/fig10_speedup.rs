//! **Figure 10** — the headline result: Jukebox and Perfect-I-cache
//! speedups over the interleaved baseline on the Skylake-like platform,
//! all 20 functions. Paper: Jukebox ≈18.7% geomean, Perfect ≈31%.

fn main() {
    luke_bench::harness_experiment("fig10");
}
