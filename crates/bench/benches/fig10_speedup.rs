//! **Figure 10** — the headline result: Jukebox and Perfect-I-cache
//! speedups over the interleaved baseline on the Skylake-like platform,
//! all 20 functions. Paper: Jukebox ≈18.7% geomean, Perfect ≈31%.

use lukewarm_sim::experiments::fig10;

fn main() {
    luke_bench::harness("Figure 10: Jukebox speedup", |params| {
        fig10::run_experiment(params).to_string()
    });
}
