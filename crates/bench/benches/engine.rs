//! **Engine scaling** — the shared experiment engine at 1/2/4/8 worker
//! threads over a representative figure subset (including the fig11/fig12
//! shared grid, so the cache gets real cross-figure hits). Each sweep
//! verifies its JSON export byte-identical to the single-threaded run and
//! reports cells simulated, cache hit rate and wall-clock speedup.

use luke_bench::record::BenchRecord;
use lukewarm_sim::engine::{find, Experiment};
use lukewarm_sim::Engine;
use std::fmt::Write as _;
use std::time::Instant;

/// Figures in the sweep: the Top-Down and MPKI characterizations, the
/// headline speedup, and the coverage/bandwidth pair that shares a plan.
const FIGURES: [&str; 5] = ["fig02", "fig05", "fig10", "fig11", "fig12"];

fn main() {
    luke_bench::harness("Engine scaling", |params| {
        let experiments: Vec<&dyn Experiment> = FIGURES
            .iter()
            .map(|name| find(name).expect("figure is registered"))
            .collect();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut out = String::new();
        writeln!(
            out,
            "figures: {} ({} core(s) available)",
            FIGURES.join(" "),
            cores
        )
        .unwrap();
        writeln!(
            out,
            "  {:>7}  {:>9}  {:>8}  {:>6}  {:>9}",
            "threads", "elapsed", "speedup", "cells", "hit rate"
        )
        .unwrap();
        let mut record = BenchRecord::new("engine");
        let mut reference: Option<(String, f64)> = None;
        for threads in [1usize, 2, 4, 8] {
            let engine = Engine::new(threads);
            let start = Instant::now();
            let mut json = String::new();
            for experiment in &experiments {
                let data = engine
                    .execute(*experiment, params)
                    .expect("experiment completes");
                json.push_str(&luke_obs::export::to_json(&data.datasets()));
                json.push('\n');
            }
            let elapsed = start.elapsed().as_secs_f64();
            let serial = match &reference {
                None => {
                    reference = Some((json, elapsed));
                    elapsed
                }
                Some((baseline, serial)) => {
                    assert_eq!(
                        &json, baseline,
                        "{threads}-thread export diverged from 1-thread"
                    );
                    *serial
                }
            };
            let planned = engine.cells_simulated() + engine.cache_hits();
            record.scaling_point(threads, elapsed, planned as f64 / elapsed);
            if threads == 1 {
                record.metric("cells_per_s", engine.cells_simulated() as f64 / elapsed);
                record.phase("single_thread_s", elapsed);
            }
            writeln!(
                out,
                "  {:>7}  {:>8.3}s  {:>7.2}x  {:>6}  {:>8.1}%",
                threads,
                elapsed,
                serial / elapsed,
                engine.cells_simulated(),
                100.0 * engine.cache_hits() as f64 / planned as f64,
            )
            .unwrap();
        }
        writeln!(
            out,
            "  (exports verified byte-identical across thread counts)"
        )
        .unwrap();
        match record.write() {
            Ok(path) => {
                writeln!(out, "trajectory record: {}", path.display()).unwrap();
            }
            Err(e) => writeln!(out, "trajectory record not written: {e}").unwrap(),
        }
        out
    });
}
