//! **Figure 8** — Jukebox metadata size vs code-region size (128B–8KB,
//! 16-entry CRRB). Paper: minimum near 1KB regions, 9.6–29.5KB across the
//! suite, Go functions at the small end.

fn main() {
    luke_bench::harness_experiment("fig08");
}
