//! **Figure 8** — Jukebox metadata size vs code-region size (128B–8KB,
//! 16-entry CRRB). Paper: minimum near 1KB regions, 9.6–29.5KB across the
//! suite, Go functions at the small end.

use lukewarm_sim::experiments::fig08;

fn main() {
    luke_bench::harness("Figure 8: metadata vs region size", |params| {
        fig08::run_experiment(params).to_string()
    });
}
