//! **Figure 9** — Jukebox speedup vs metadata-storage budget (8/12/16/32KB)
//! for Email-P, Pay-N, ProdL-G and the suite geomean. Paper: little gain
//! beyond 16KB on average; large-working-set functions are the most
//! sensitive.

fn main() {
    luke_bench::harness_experiment("fig09");
}
