//! **Figure 9** — Jukebox speedup vs metadata-storage budget (8/12/16/32KB)
//! for Email-P, Pay-N, ProdL-G and the suite geomean. Paper: little gain
//! beyond 16KB on average; large-working-set functions are the most
//! sensitive.

use lukewarm_sim::experiments::fig09;

fn main() {
    luke_bench::harness("Figure 9: speedup vs metadata budget", |params| {
        fig09::run_experiment(params).to_string()
    });
}
