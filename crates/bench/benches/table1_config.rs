//! **Table 1** — parameters of the simulated processor, both platforms.

fn main() {
    luke_bench::harness("Table 1: simulated platforms", |_params| {
        let mut out = String::new();
        out.push_str(&lukewarm_sim::SystemConfig::skylake().describe());
        out.push('\n');
        out.push_str(&lukewarm_sim::SystemConfig::broadwell().describe());
        out
    });
}
