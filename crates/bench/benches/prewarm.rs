//! **Pre-warm frontier (beyond the paper)** — memory-seconds vs P99
//! under fixed keep-alive windows, the `luke-predict` adaptive policy,
//! and the perfect-prediction oracle, one frontier per cold-start model.
//!
//! Records a `BENCH_prewarm.json` perf-trajectory point: wall-clock for
//! the whole model x policy grid as a sweep-throughput metric, plus the
//! adaptive policy's memory saving against its own fixed cap — the
//! quality number the frontier exists to demonstrate (a drop means the
//! policy regressed, not just the machine).

use luke_bench::record::BenchRecord;
use lukewarm_sim::experiments::prewarm_frontier::{self, MODELS};
use std::time::Instant;

fn main() {
    luke_bench::harness("Pre-warm frontier", |params| {
        let mut record = BenchRecord::new("prewarm");
        let start = Instant::now();
        let data = prewarm_frontier::run_experiment(params);
        let elapsed = start.elapsed().as_secs_f64();
        record.phase("total_s", elapsed);
        record.metric("sweeps_per_s", 1.0 / elapsed);

        // Quality trajectory: fixed windows dominated per model, and the
        // adaptive policy's memory saving vs the fixed window at its cap.
        for model in MODELS {
            let dominated = data.dominated_fixed_windows(model).len() as f64;
            record.metric(&format!("dominated_windows_{}", model.label()), dominated);
            let rows = data.rows_for(model);
            let adaptive = rows.iter().find(|r| r.policy == "adaptive");
            let cap = rows.iter().find(|r| {
                r.policy == "fixed"
                    && r.keep_alive_min == prewarm_frontier::ADAPTIVE_CAP_MINUTES
            });
            if let (Some(adaptive), Some(cap)) = (adaptive, cap) {
                if cap.memory_instance_s > 0.0 {
                    record.metric(
                        &format!("memory_saving_{}", model.label()),
                        1.0 - adaptive.memory_instance_s / cap.memory_instance_s,
                    );
                }
            }
        }

        let mut out = data.to_string();
        match record.write() {
            Ok(path) => {
                out.push_str(&format!("trajectory record: {}\n", path.display()));
            }
            Err(e) => out.push_str(&format!("trajectory record not written: {e}\n")),
        }
        out
    });
}
