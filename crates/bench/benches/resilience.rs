//! **Resilience** — end-to-end workflow latency distributions (P50/P99)
//! and SLO attainment under seeded fault injection, for warm vs lukewarm
//! vs lukewarm+Jukebox at a sweep of fault rates.

use lukewarm_sim::experiments::resilience;

fn main() {
    luke_bench::harness("Resilience: workflows under fault injection", |params| {
        resilience::run_experiment(params).to_string()
    });
}
