//! **Resilience** — end-to-end workflow latency distributions (P50/P99)
//! and SLO attainment under seeded fault injection, for warm vs lukewarm
//! vs lukewarm+Jukebox at a sweep of fault rates.

fn main() {
    luke_bench::harness_experiment("resilience");
}
