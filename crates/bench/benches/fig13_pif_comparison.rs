//! **Figure 13** — comparison against PIF: PIF (paper config), PIF-ideal,
//! Jukebox, Jukebox+PIF-ideal. Paper: PIF ≈2.4%, PIF-ideal ≈6.7%,
//! Jukebox ≈18.7%.

fn main() {
    luke_bench::harness_experiment("fig13");
}
