//! **Figure 13** — comparison against PIF: PIF (paper config), PIF-ideal,
//! Jukebox, Jukebox+PIF-ideal. Paper: PIF ≈2.4%, PIF-ideal ≈6.7%,
//! Jukebox ≈18.7%.

use lukewarm_sim::experiments::fig13;

fn main() {
    luke_bench::harness("Figure 13: PIF comparison", |params| {
        fig13::run_experiment(params).to_string()
    });
}
