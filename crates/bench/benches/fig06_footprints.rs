//! **Figure 6 / Table 2** — per-invocation instruction footprints and
//! pairwise Jaccard commonality over 25 invocations of each of the 20
//! functions. Paper: footprints 300–800KB with low variance; mean
//! commonality ≥0.9 for 17 of 20 functions.

use lukewarm_sim::experiments::fig06;

fn main() {
    luke_bench::harness("Figure 6: footprints and commonality", |params| {
        fig06::run_experiment(params).to_string()
    });
}
