//! **Figure 6 / Table 2** — per-invocation instruction footprints and
//! pairwise Jaccard commonality over 25 invocations of each of the 20
//! functions. Paper: footprints 300–800KB with low variance; mean
//! commonality ≥0.9 for 17 of 20 functions.

fn main() {
    luke_bench::harness_experiment("fig06");
}
