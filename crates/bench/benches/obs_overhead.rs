//! Observability overhead on the Figure-10 quick path: the plain runner
//! against [`run_observed`] with metrics only and with event tracing.
//!
//! The acceptance target is that the *disabled* instrumentation path costs
//! at most ~2% over the plain runner:
//!
//! ```text
//! cargo bench --bench obs_overhead                          # default build
//! cargo bench --bench obs_overhead --features obs_disabled  # compiled-out events
//! ```
//!
//! The final `overhead` lines print the paired comparisons directly (best
//! of interleaved rounds, so frequency drift hits both sides equally).
//!
//! The span path is covered the same way: a fleet run with tracing off
//! (`trace_sample: 0`, the default) against every-8th-dispatch sampling.
//! The untraced fleet number is the one the ≤1% disabled-overhead budget
//! in docs/OBSERVABILITY.md speaks about — compare it across a default
//! and an `--features obs_disabled` build.

use criterion::{black_box, Criterion};
use luke_fleet::{run_fleet, FleetConfig, ServiceModel};
use lukewarm_sim::config::SystemConfig;
use lukewarm_sim::runner::{run, run_observed, PrefetcherKind, RunSpec};
use lukewarm_sim::ExperimentParams;
use std::time::{Duration, Instant};
use workloads::{paper_suite, FunctionProfile};

/// The Figure-10 measurement on one function, quick scale.
struct Fig10Quick {
    config: SystemConfig,
    profile: FunctionProfile,
    params: ExperimentParams,
}

impl Fig10Quick {
    fn new() -> Self {
        let params = ExperimentParams::quick();
        Fig10Quick {
            config: SystemConfig::skylake(),
            profile: FunctionProfile::named("Auth-G")
                .expect("suite function")
                .scaled(params.scale),
            params,
        }
    }

    fn plain(&self) -> u64 {
        run(
            &self.config,
            &self.profile,
            PrefetcherKind::Jukebox(self.config.jukebox),
            RunSpec::lukewarm(),
            &self.params,
        )
        .cycles
    }

    fn observed(&self, trace_capacity: usize) -> u64 {
        run_observed(
            &self.config,
            &self.profile,
            PrefetcherKind::Jukebox(self.config.jukebox),
            RunSpec::lukewarm(),
            &self.params,
            trace_capacity,
        )
        .summary
        .cycles
    }
}

fn bench_runners(c: &mut Criterion) {
    let f = Fig10Quick::new();
    c.bench_function("obs/fig10_quick_plain", |b| b.iter(|| black_box(f.plain())));
    c.bench_function("obs/fig10_quick_observed", |b| {
        b.iter(|| black_box(f.observed(0)))
    });
    c.bench_function("obs/fig10_quick_observed_traced", |b| {
        b.iter(|| black_box(f.observed(65_536)))
    });
    let fleet = FleetQuick::new();
    c.bench_function("obs/fleet_untraced", |b| b.iter(|| black_box(fleet.run(0))));
    c.bench_function("obs/fleet_spans_1in8", |b| {
        b.iter(|| black_box(fleet.run(8)))
    });
}

/// The span-path workload: a small fleet run, with and without span
/// sampling.
struct FleetQuick {
    config: FleetConfig,
    model: ServiceModel,
}

impl FleetQuick {
    fn new() -> Self {
        FleetQuick {
            config: FleetConfig {
                hosts: 4,
                invocations: 20_000,
                ..FleetConfig::default()
            },
            model: ServiceModel::analytic(&paper_suite()).expect("paper suite is valid"),
        }
    }

    fn run(&self, trace_sample: u64) -> u64 {
        let config = FleetConfig {
            trace_sample,
            ..self.config.clone()
        };
        run_fleet(&config, &self.model, false)
            .expect("config is valid")
            .invocations
    }
}

/// Best-of-N interleaved timing of one routine.
fn best_of<R>(rounds: u32, mut routine: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        black_box(routine());
        best = best.min(start.elapsed());
    }
    best
}

/// Prints the paired plain-vs-observed overhead on the same workload.
fn overhead_report() {
    let f = Fig10Quick::new();
    // Warm up both paths before timing.
    black_box(f.plain());
    black_box(f.observed(0));
    let rounds = 7;
    let plain = best_of(rounds, || f.plain());
    let observed = best_of(rounds, || f.observed(0));
    let pct = (observed.as_secs_f64() / plain.as_secs_f64() - 1.0) * 100.0;
    let mode = if cfg!(feature = "obs_disabled") {
        "obs_disabled"
    } else {
        "default"
    };
    println!(
        "overhead ({mode:>12}): plain {:>10.3?}  observed {:>10.3?}  => {pct:+.2}%",
        plain, observed
    );
}

/// Prints the paired untraced-vs-sampled span overhead on a fleet run.
fn span_overhead_report() {
    let fleet = FleetQuick::new();
    black_box(fleet.run(0));
    black_box(fleet.run(8));
    let rounds = 7;
    let untraced = best_of(rounds, || fleet.run(0));
    let sampled = best_of(rounds, || fleet.run(8));
    let pct = (sampled.as_secs_f64() / untraced.as_secs_f64() - 1.0) * 100.0;
    let mode = if cfg!(feature = "obs_disabled") {
        "obs_disabled"
    } else {
        "default"
    };
    println!(
        "span overhead ({mode:>12}): untraced {:>10.3?}  1-in-8 sampled {:>10.3?}  => {pct:+.2}%",
        untraced, sampled
    );
}

fn main() {
    let mut c = Criterion::default();
    bench_runners(&mut c);
    overhead_report();
    span_overhead_report();
}
