//! **Figures 2–4** — Top-Down CPI stacks of reference vs interleaved
//! execution for all 20 functions, the front-end stall breakdown, and the
//! aggregated means. Paper: interleaving raises CPI 31–114% (70% average);
//! fetch latency is 56% of the extra stall cycles.

fn main() {
    luke_bench::harness_experiment("fig02");
}
