//! **Figures 2–4** — Top-Down CPI stacks of reference vs interleaved
//! execution for all 20 functions, the front-end stall breakdown, and the
//! aggregated means. Paper: interleaving raises CPI 31–114% (70% average);
//! fetch latency is 56% of the extra stall cycles.

use lukewarm_sim::experiments::fig02;

fn main() {
    luke_bench::harness("Figures 2-4: Top-Down characterization", |params| {
        fig02::run_experiment(params).to_string()
    });
}
