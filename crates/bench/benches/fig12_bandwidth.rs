//! **Figure 12** — Jukebox memory-bandwidth overhead split into
//! overpredicted prefetches and metadata record/replay traffic.
//! Paper: ≈14% average, ≤23% worst case.

fn main() {
    luke_bench::harness_experiment("fig12");
}
