//! **Figure 12** — Jukebox memory-bandwidth overhead split into
//! overpredicted prefetches and metadata record/replay traffic.
//! Paper: ≈14% average, ≤23% worst case.

use lukewarm_sim::experiments::fig12;

fn main() {
    luke_bench::harness("Figure 12: bandwidth overhead", |params| {
        fig12::run_experiment(params).to_string()
    });
}
