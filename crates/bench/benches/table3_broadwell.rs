//! **Table 3 / §5.6** — Jukebox on the Broadwell-like CPU: L2/LLC
//! instruction-MPKI reduction on both platforms and the Broadwell geomean
//! speedup. Paper: LLC −86%/−91%, L2 −74%/−15%, Broadwell ≈12% speedup.

use lukewarm_sim::experiments::table3;

fn main() {
    luke_bench::harness("Table 3: Broadwell-like platform", |params| {
        table3::run_experiment(params).to_string()
    });
}
