//! **Table 3 / §5.6** — Jukebox on the Broadwell-like CPU: L2/LLC
//! instruction-MPKI reduction on both platforms and the Broadwell geomean
//! speedup. Paper: LLC −86%/−91%, L2 −74%/−15%, Broadwell ≈12% speedup.

fn main() {
    luke_bench::harness_experiment("table3");
}
