//! **Keep-alive economics (§2.1)** — warm-hit rate and warm-pool size vs
//! the provider keep-alive window, over a heavy-tailed function
//! population. The supply side of the lukewarm phenomenon.

fn main() {
    luke_bench::harness_experiment("keep-alive");
}
