//! **Keep-alive economics (§2.1)** — warm-hit rate and warm-pool size vs
//! the provider keep-alive window, over a heavy-tailed function
//! population. The supply side of the lukewarm phenomenon.

use lukewarm_sim::experiments::keep_alive;

fn main() {
    luke_bench::harness("Keep-alive economics", |params| {
        keep_alive::run_experiment(params).to_string()
    });
}
