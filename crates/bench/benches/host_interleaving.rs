//! **Host interleaving** — validation of the flush-between-invocations
//! model (§5.2) against true multi-instance interleaving on a shared core
//! and hierarchy, and Jukebox's benefit under the real thing.

fn main() {
    luke_bench::harness_experiment("host");
}
