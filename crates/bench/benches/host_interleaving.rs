//! **Host interleaving** — validation of the flush-between-invocations
//! model (§5.2) against true multi-instance interleaving on a shared core
//! and hierarchy, and Jukebox's benefit under the real thing.

use lukewarm_sim::experiments::host_interleaving;

fn main() {
    luke_bench::harness("Host interleaving validation", |params| {
        host_interleaving::run_experiment(params).to_string()
    });
}
