//! **Tenancy sweep (beyond the paper)** — shared-page dedup and
//! multi-tenant contention pressure across routing policies.
//!
//! Records a `BENCH_tenancy.json` perf-trajectory point: wall-clock for
//! the policy x variant grid as a sweep-throughput metric, plus the
//! quality numbers the subsystem exists to demonstrate — per-policy
//! memory savings and restore-cost recovery from dedup, the dedup'd
//! shared-page hit rate, and whether placement-aware routing holds the
//! memory-vs-P99 frontier under contention (a drop means the model
//! regressed, not just the machine).

use luke_bench::record::BenchRecord;
use lukewarm_sim::experiments::tenancy::{self, POLICIES};
use std::time::Instant;

fn main() {
    luke_bench::harness("Tenancy sweep", |params| {
        let mut record = BenchRecord::new("tenancy");
        let start = Instant::now();
        let data = tenancy::run_experiment(params);
        let elapsed = start.elapsed().as_secs_f64();
        record.phase("total_s", elapsed);
        record.metric("sweeps_per_s", 1.0 / elapsed);

        // Quality trajectory: what dedup buys under each policy, and the
        // placement-aware frontier claim as a 0/1 gauge.
        for policy in POLICIES {
            record.metric(
                &format!("memory_savings_{}", policy.label()),
                data.memory_savings(policy),
            );
            record.metric(
                &format!("restore_recovery_ms_{}", policy.label()),
                data.restore_recovery_ms(policy),
            );
            if let Some(row) = data.row(policy, "dedup") {
                record.metric(&format!("hit_rate_{}", policy.label()), row.hit_rate);
            }
        }
        record.metric(
            "placement_on_frontier",
            if data.placement_on_frontier() { 1.0 } else { 0.0 },
        );

        let mut out = data.to_string();
        match record.write() {
            Ok(path) => {
                out.push_str(&format!("trajectory record: {}\n", path.display()));
            }
            Err(e) => out.push_str(&format!("trajectory record not written: {e}\n")),
        }
        out
    });
}
