//! Recorded performance trajectory: schema-versioned `BENCH_<name>.json`.
//!
//! A [`BenchRecord`] captures what a benchmark run actually achieved —
//! throughput metrics (higher is better), a thread-scaling curve and a
//! wall-clock phase breakdown — and serializes it to a small, stable JSON
//! document so successive runs can be diffed. `lukewarm bench-compare
//! OLD.json NEW.json` replays [`compare`] over two such files and exits
//! non-zero when any metric regressed beyond the noise threshold.
//!
//! The schema is versioned ([`SCHEMA`]); readers reject documents whose
//! `schema` field does not match, so a future layout change cannot be
//! silently misread as a regression (or an improvement).
//!
//! ```json
//! {"schema":"lukewarm-bench/1","name":"fleet_scale",
//!  "metrics":{"invocations_per_s":81234.5},
//!  "scaling":[{"threads":1,"elapsed_s":0.91,"throughput":44000.0},
//!             {"threads":8,"elapsed_s":0.14,"throughput":285000.0}],
//!  "phases":{"route_s":0.21,"process_s":0.58,"merge_s":0.12}}
//! ```

use luke_obs::json::{self, write_f64, write_str, JsonValue};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Schema tag every record carries; bump on any layout change.
pub const SCHEMA: &str = "lukewarm-bench/1";

/// Environment variable naming the directory `BENCH_<name>.json` files
/// are written to (default: the current directory).
pub const BENCH_DIR_ENV: &str = "LUKEWARM_BENCH_DIR";

/// One point on the thread-scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock seconds for the run.
    pub elapsed_s: f64,
    /// Work items per second (invocations, cells, ...).
    pub throughput: f64,
}

/// A recorded benchmark outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name; names the output file (`BENCH_<name>.json`).
    pub name: String,
    /// Named throughput metrics, all higher-is-better.
    pub metrics: BTreeMap<String, f64>,
    /// Thread-scaling curve, ascending thread counts.
    pub scaling: Vec<ScalingPoint>,
    /// Wall-clock phase breakdown in seconds.
    pub phases: BTreeMap<String, f64>,
}

impl BenchRecord {
    /// An empty record for `name`.
    pub fn new(name: &str) -> Self {
        BenchRecord {
            name: name.to_string(),
            ..BenchRecord::default()
        }
    }

    /// Records a higher-is-better metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Records a wall-clock phase duration in seconds.
    pub fn phase(&mut self, name: &str, seconds: f64) {
        self.phases.insert(name.to_string(), seconds);
    }

    /// Appends a scaling-curve point.
    pub fn scaling_point(&mut self, threads: usize, elapsed_s: f64, throughput: f64) {
        self.scaling.push(ScalingPoint {
            threads,
            elapsed_s,
            throughput,
        });
    }

    /// Serializes the record as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":");
        write_str(&mut out, SCHEMA);
        out.push_str(",\"name\":");
        write_str(&mut out, &self.name);
        out.push_str(",\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"scaling\":[");
        for (i, p) in self.scaling.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"threads\":{},\"elapsed_s\":", p.threads));
            write_f64(&mut out, p.elapsed_s);
            out.push_str(",\"throughput\":");
            write_f64(&mut out, p.throughput);
            out.push('}');
        }
        out.push_str("],\"phases\":{");
        for (i, (k, v)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("}}");
        out
    }

    /// Parses and validates a `BENCH_<name>.json` document.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the document is not JSON, carries
    /// the wrong `schema` tag, or is missing/mistyping a required field.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let v = json::parse(input)?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("missing schema field")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?} is not {SCHEMA:?}"));
        }
        let name = v
            .get("name")
            .and_then(|s| s.as_str())
            .ok_or("missing name field")?
            .to_string();
        if name.is_empty() {
            return Err("empty benchmark name".to_string());
        }
        let metrics = finite_map(v.get("metrics").ok_or("missing metrics field")?, "metrics")?;
        let phases = finite_map(v.get("phases").ok_or("missing phases field")?, "phases")?;
        let mut scaling = Vec::new();
        for (i, p) in v
            .get("scaling")
            .and_then(|s| s.as_arr())
            .ok_or("missing scaling array")?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                p.get(key)
                    .and_then(|x| x.as_f64())
                    .filter(|x| x.is_finite())
                    .ok_or(format!("scaling[{i}].{key} missing or not finite"))
            };
            let threads = field("threads")?;
            if threads < 1.0 || threads.fract() != 0.0 {
                return Err(format!("scaling[{i}].threads must be a positive integer"));
            }
            scaling.push(ScalingPoint {
                threads: threads as usize,
                elapsed_s: field("elapsed_s")?,
                throughput: field("throughput")?,
            });
        }
        Ok(BenchRecord {
            name,
            metrics,
            scaling,
            phases,
        })
    }

    /// The path this record writes to: `BENCH_<name>.json` under
    /// [`BENCH_DIR_ENV`] (or the current directory).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var(BENCH_DIR_ENV).unwrap_or_else(|_| ".".to_string());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the record to [`Self::path`], returning the path written.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory is not writable.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn finite_map(v: &JsonValue, what: &str) -> Result<BTreeMap<String, f64>, String> {
    let JsonValue::Obj(map) = v else {
        return Err(format!("{what} must be an object"));
    };
    let mut out = BTreeMap::new();
    for (k, item) in map {
        let n = item
            .as_f64()
            .filter(|n| n.is_finite())
            .ok_or(format!("{what}.{k} is not a finite number"))?;
        out.insert(k.clone(), n);
    }
    Ok(out)
}

/// The outcome of diffing two records with [`compare`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Human-readable per-metric lines (`name old -> new  (+x%)`).
    pub report: String,
    /// Metrics that regressed beyond the threshold.
    pub regressions: Vec<String>,
}

/// Diffs two records metric-by-metric (and scaling point by thread
/// count). A metric regresses when the new value drops below
/// `old * (1 - threshold)` — all metrics are higher-is-better. Metrics
/// present on only one side are reported but never count as regressions
/// (a benchmark may grow or retire metrics between runs).
pub fn compare(old: &BenchRecord, new: &BenchRecord, threshold: f64) -> Comparison {
    let mut c = Comparison::default();
    let line = |label: String, old: f64, new: f64, c: &mut Comparison| {
        let delta = if old > 0.0 { new / old - 1.0 } else { 0.0 };
        let regressed = new < old * (1.0 - threshold);
        c.report.push_str(&format!(
            "  {label:<28} {old:>12.1} -> {new:>12.1}  ({delta:+.1}%){}\n",
            if regressed { "  REGRESSED" } else { "" },
            delta = delta * 100.0,
        ));
        if regressed {
            c.regressions.push(label);
        }
    };
    for (name, &old_v) in &old.metrics {
        match new.metrics.get(name) {
            Some(&new_v) => line(name.clone(), old_v, new_v, &mut c),
            None => c.report.push_str(&format!("  {name:<28} dropped\n")),
        }
    }
    for (name, &new_v) in &new.metrics {
        if !old.metrics.contains_key(name) {
            c.report
                .push_str(&format!("  {name:<28} new: {new_v:.1}\n"));
        }
    }
    for p in &old.scaling {
        if let Some(q) = new.scaling.iter().find(|q| q.threads == p.threads) {
            line(
                format!("throughput@{}t", p.threads),
                p.throughput,
                q.throughput,
                &mut c,
            );
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        let mut r = BenchRecord::new("fleet_scale");
        r.metric("invocations_per_s", 80_000.0);
        r.scaling_point(1, 1.0, 40_000.0);
        r.scaling_point(8, 0.2, 200_000.0);
        r.phase("route_s", 0.25);
        r
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample();
        let parsed = BenchRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn wrong_schema_and_malformed_documents_are_rejected() {
        assert!(BenchRecord::from_json("not json").is_err());
        let doc = sample().to_json().replace("lukewarm-bench/1", "bench/9");
        let err = BenchRecord::from_json(&doc).unwrap_err();
        assert!(err.contains("lukewarm-bench/1"), "{err}");
        assert!(BenchRecord::from_json("{\"schema\":\"lukewarm-bench/1\"}").is_err());
        // Non-finite metrics serialize as null and fail validation.
        let mut bad = sample();
        bad.metric("nan", f64::NAN);
        assert!(BenchRecord::from_json(&bad.to_json())
            .unwrap_err()
            .contains("nan"));
    }

    #[test]
    fn compare_flags_only_regressions_beyond_threshold() {
        let old = sample();
        let mut noisy = sample();
        noisy.metric("invocations_per_s", 80_000.0 * 0.9); // -10%: within 25%
        let c = compare(&old, &noisy, 0.25);
        assert!(c.regressions.is_empty(), "{}", c.report);

        let mut slow = sample();
        slow.metric("invocations_per_s", 80_000.0 * 0.5); // -50%: regression
        slow.scaling[1].throughput = 10_000.0; // 8-thread point collapsed
        let c = compare(&old, &slow, 0.25);
        assert_eq!(
            c.regressions,
            vec!["invocations_per_s".to_string(), "throughput@8t".to_string()]
        );
        assert!(c.report.contains("REGRESSED"));
    }

    #[test]
    fn added_and_dropped_metrics_are_reported_but_not_regressions() {
        let old = sample();
        let mut new = sample();
        new.metrics.remove("invocations_per_s");
        new.metric("cells_per_s", 5.0);
        let c = compare(&old, &new, 0.25);
        assert!(c.regressions.is_empty());
        assert!(c.report.contains("dropped"));
        assert!(c.report.contains("new: 5.0"));
    }

    #[test]
    fn identical_records_never_regress_even_at_zero_threshold() {
        let r = sample();
        assert!(compare(&r, &r, 0.0).regressions.is_empty());
    }
}
