//! Shared plumbing for the benchmark harness.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure
//! of the paper at paper scale and prints the same rows/series the paper
//! reports. Run them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig10_speedup`.
//!
//! The harness honours two environment variables:
//!
//! * `LUKEWARM_SCALE` — workload scale factor (default 1.0 = paper scale);
//! * `LUKEWARM_INVOCATIONS` — measured invocations per configuration
//!   (default 8).
//!
//! Benches that record a performance trajectory (`fleet_scale`, `engine`,
//! `surge`) additionally honour `LUKEWARM_BENCH_DIR`, the directory their
//! `BENCH_<name>.json` record lands in (see [`record`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;

use lukewarm_sim::ExperimentParams;
use std::time::Instant;

/// Experiment parameters from the environment (paper scale by default).
pub fn params_from_env() -> ExperimentParams {
    let scale = std::env::var("LUKEWARM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let invocations = std::env::var("LUKEWARM_INVOCATIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    ExperimentParams {
        scale,
        invocations,
        warmup: 2,
    }
}

/// Runs one experiment closure with banner and wall-clock reporting.
pub fn harness<F: FnOnce(&ExperimentParams) -> String>(name: &str, body: F) {
    let params = params_from_env();
    println!(
        "=== {name} (scale {}, {} invocations/config) ===\n",
        params.scale, params.invocations
    );
    let start = Instant::now();
    let output = body(&params);
    println!("{output}");
    println!("[{name} completed in {:.1?}]", start.elapsed());
}

/// Runs one registered experiment through a single-threaded
/// [`Engine`](lukewarm_sim::Engine), with the banner taken from the
/// registry entry and the engine's cache summary appended — the body of
/// every per-figure `[[bench]]` target.
///
/// # Panics
///
/// Panics when `name` is not registered or the experiment reports an
/// integrity error (benches should fail loudly).
pub fn harness_experiment(name: &str) {
    let experiment = lukewarm_sim::engine::find(name)
        .unwrap_or_else(|| panic!("{name} is not a registered experiment"));
    let banner = format!("{}: {}", experiment.name(), experiment.description());
    harness(&banner, |params| {
        let engine = lukewarm_sim::Engine::single();
        let data = engine
            .execute(experiment, params)
            .expect("experiment completes");
        format!("{data}\n{}", engine.summary_line())
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_paper_scale() {
        // Only meaningful when the env vars are unset, as in CI.
        if std::env::var("LUKEWARM_SCALE").is_err() {
            assert_eq!(params_from_env().scale, 1.0);
        }
        if std::env::var("LUKEWARM_INVOCATIONS").is_err() {
            assert_eq!(params_from_env().invocations, 8);
        }
    }
}
