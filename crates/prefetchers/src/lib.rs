//! Baseline instruction prefetchers for the Jukebox evaluation.
//!
//! * [`NextLine`] — the trivial sequential prefetcher (the kind built into
//!   L1 caches, Table 1 lists one on the L1-D);
//! * [`Pif`] — Proactive Instruction Fetch (Ferdman et al., MICRO'11), the
//!   state-of-the-art temporal-streaming comparison point of §5.5. PIF
//!   records the retired instruction stream, indexes it by trigger
//!   address, and replays it with a bounded lookahead, stopping to
//!   re-index whenever the core's actual stream diverges from the
//!   recorded one. Configured with the paper's 49KB index + 164KB stream
//!   storage; **non-persistent** across invocations (PIF was designed for
//!   long-running servers and does not save state across function
//!   invocations);
//! * [`Pif::ideal`] — the PIF-ideal variant of §5.5: unlimited index and
//!   stream storage that persist across invocations;
//! * [`Combined`] — runs several prefetchers side by side (the "JB +
//!   PIF-ideal" bar of Figure 13);
//! * [`FootprintRestore`] — indiscriminate cache restoration à la
//!   Daly & Cain / RECAP (§6's first family of prior work): full
//!   per-line-address metadata, high coverage, heavy traffic;
//! * [`FetchDirected`] — BTB-directed run-ahead à la FDIP/Boomerang
//!   (§6's second family), whose tables are core state and therefore cold
//!   at every lukewarm invocation.
//!
//! The perfect-I-cache oracle of Figure 10 is not a prefetcher: it is a
//! memory-hierarchy mode
//! ([`MemoryHierarchy::set_perfect_icache`](sim_mem::hierarchy::MemoryHierarchy::set_perfect_icache)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod fetch_directed;
pub mod footprint_restore;
pub mod next_line;
pub mod pif;

pub use combined::Combined;
pub use fetch_directed::FetchDirected;
pub use footprint_restore::FootprintRestore;
pub use next_line::NextLine;
pub use pif::{Pif, PifConfig};
