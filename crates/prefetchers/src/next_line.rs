//! The next-line instruction prefetcher.
//!
//! On every demand L1-I miss, prefetches the following `depth` lines into
//! the L2. Catches straight-line code but nothing across taken branches —
//! a useful sanity baseline between "no prefetcher" and Jukebox.

use sim_mem::prefetch::{FetchObservation, InstructionPrefetcher, PrefetchIssuer};

/// Next-`depth`-lines prefetcher.
///
/// # Examples
///
/// ```
/// use prefetchers::NextLine;
///
/// let pf = NextLine::new(2);
/// assert_eq!(pf.depth(), 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NextLine {
    depth: u64,
}

impl NextLine {
    /// Creates a next-line prefetcher fetching `depth` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        NextLine { depth }
    }

    /// The configured depth.
    pub fn depth(&self) -> u64 {
        self.depth
    }
}

impl Default for NextLine {
    fn default() -> Self {
        NextLine::new(1)
    }
}

impl InstructionPrefetcher for NextLine {
    fn name(&self) -> &str {
        "next-line"
    }

    fn on_invocation_start(&mut self, _issuer: &mut PrefetchIssuer<'_>) {}

    fn on_fetch(&mut self, observation: &FetchObservation, issuer: &mut PrefetchIssuer<'_>) {
        if !observation.l1_miss {
            return;
        }
        let mut line = observation.vline;
        for _ in 0..self.depth {
            line = line.next();
            issuer.prefetch_line(line);
        }
    }

    fn on_invocation_end(&mut self, _issuer: &mut PrefetchIssuer<'_>) {}
}

/// Helper shared by prefetcher tests: a fetch observation for a line.
#[cfg(test)]
pub(crate) fn test_observation(line_index: u64, l1_miss: bool, l2_miss: bool) -> FetchObservation {
    FetchObservation {
        vline: luke_common::addr::LineAddr::from_index(line_index),
        l1_miss,
        l2_miss,
        l2_prefetch_first_use: false,
        now: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use luke_common::addr::LineAddr;
    use sim_mem::config::HierarchyConfig;
    use sim_mem::hierarchy::MemoryHierarchy;
    use sim_mem::page_table::PageTable;

    #[test]
    fn prefetches_following_lines_on_miss() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut pt = PageTable::new(0);
        let mut pf = NextLine::new(2);
        let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
        pf.on_fetch(&test_observation(100, true, true), &mut issuer);
        assert_eq!(issuer.counters().issued, 2);
    }

    #[test]
    fn ignores_l1_hits() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut pt = PageTable::new(0);
        let mut pf = NextLine::default();
        let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
        pf.on_fetch(&test_observation(100, false, false), &mut issuer);
        assert_eq!(issuer.counters().issued, 0);
    }

    #[test]
    fn next_line_lands_in_l2() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut pt = PageTable::new(0);
        let mut pf = NextLine::default();
        {
            let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
            pf.on_fetch(&test_observation(100, true, true), &mut issuer);
        }
        let pline = pt.translate_line(LineAddr::from_index(101));
        assert!(mem.l2().peek(pline));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        NextLine::new(0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(NextLine::default().name(), "next-line");
    }
}
