//! A fetch-directed (BTB-driven) instruction prefetcher in the style of
//! FDIP/Boomerang — the second family of prior work the paper contrasts
//! Jukebox with (§6).
//!
//! These designs walk the predicted control-flow (BTB + branch predictor)
//! ahead of fetch and prefetch the upcoming lines. Their fundamental
//! problem for lukewarm functions, per the paper: they "rely on a fully
//! warmed up BTB and branch predictor, which makes them fundamentally at
//! odds with lukewarm executions that have to contend with a cold core."
//!
//! The model here learns line-successor transitions during execution (its
//! stand-in for BTB-directed run-ahead) and prefetches a few predicted
//! successors per fetch — but, being core state, its tables are **cleared
//! at every invocation start**, exactly like the flushed BTB. The measured
//! result: near-zero benefit on lukewarm invocations, because by the time
//! the tables are warm the working set has already been demand-missed.

use luke_common::addr::LineAddr;
use sim_mem::prefetch::{FetchObservation, InstructionPrefetcher, PrefetchIssuer};
use std::collections::HashMap;

/// The fetch-directed prefetcher (see module docs).
#[derive(Clone, Debug)]
pub struct FetchDirected {
    /// Learned successor transitions: line → next fetched line.
    successors: HashMap<LineAddr, LineAddr>,
    /// The previously fetched line (to learn transitions).
    last_line: Option<LineAddr>,
    /// Predicted run-ahead depth per fetch.
    depth: usize,
    /// Maximum learned transitions (BTB-capacity analogue).
    capacity: usize,
}

impl FetchDirected {
    /// Creates a fetch-directed prefetcher with run-ahead `depth` and a
    /// transition table of `capacity` entries (8K, like the BTB).
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `capacity` is zero.
    pub fn new(depth: usize, capacity: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(capacity > 0, "capacity must be positive");
        FetchDirected {
            successors: HashMap::new(),
            last_line: None,
            depth,
            capacity,
        }
    }

    /// The paper-analogous configuration: depth 4, 8K-entry table.
    pub fn paper() -> Self {
        FetchDirected::new(4, 8192)
    }

    /// Number of learned transitions.
    pub fn learned(&self) -> usize {
        self.successors.len()
    }
}

impl Default for FetchDirected {
    fn default() -> Self {
        Self::paper()
    }
}

impl InstructionPrefetcher for FetchDirected {
    fn name(&self) -> &str {
        "fetch-directed"
    }

    fn on_invocation_start(&mut self, _issuer: &mut PrefetchIssuer<'_>) {
        // The BTB and predictor are core microarchitectural state: cold at
        // every lukewarm invocation. Nothing to prefetch from.
        self.successors.clear();
        self.last_line = None;
    }

    fn on_fetch(&mut self, observation: &FetchObservation, issuer: &mut PrefetchIssuer<'_>) {
        let line = observation.vline;
        // Learn the transition that just happened.
        if let Some(prev) = self.last_line {
            if prev != line && self.successors.len() < self.capacity {
                self.successors.insert(prev, line);
            }
        }
        self.last_line = Some(line);

        // Run ahead along predicted successors.
        let mut cursor = line;
        for _ in 0..self.depth {
            match self.successors.get(&cursor) {
                Some(&next) => {
                    issuer.prefetch_line(next);
                    cursor = next;
                }
                None => break, // cold table: cannot run ahead
            }
        }
    }

    fn on_invocation_end(&mut self, _issuer: &mut PrefetchIssuer<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::config::HierarchyConfig;
    use sim_mem::hierarchy::MemoryHierarchy;
    use sim_mem::page_table::PageTable;

    fn obs(line: u64) -> FetchObservation {
        FetchObservation {
            vline: LineAddr::from_index(line),
            l1_miss: true,
            l2_miss: true,
            l2_prefetch_first_use: false,
            now: 0,
        }
    }

    fn setup() -> (MemoryHierarchy, PageTable) {
        (
            MemoryHierarchy::new(HierarchyConfig::skylake_like()),
            PageTable::new(0),
        )
    }

    #[test]
    fn first_pass_learns_but_cannot_prefetch() {
        let (mut mem, mut pt) = setup();
        let mut pf = FetchDirected::paper();
        let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
        pf.on_invocation_start(&mut issuer);
        for line in [10u64, 20, 30, 40] {
            pf.on_fetch(&obs(line), &mut issuer);
        }
        // Transitions learned, but each was seen for the first time: no
        // run-ahead was possible at the point of use.
        assert_eq!(pf.learned(), 3);
        assert_eq!(issuer.counters().issued, 0);
    }

    #[test]
    fn warm_table_prefetches_repeated_paths() {
        let (mut mem, mut pt) = setup();
        let mut pf = FetchDirected::paper();
        let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
        pf.on_invocation_start(&mut issuer);
        for _ in 0..2 {
            for line in [10u64, 20, 30, 40] {
                pf.on_fetch(&obs(line), &mut issuer);
            }
        }
        assert!(issuer.counters().issued + issuer.counters().redundant > 0);
    }

    #[test]
    fn state_is_cold_after_invocation_start() {
        let (mut mem, mut pt) = setup();
        let mut pf = FetchDirected::paper();
        {
            let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
            pf.on_invocation_start(&mut issuer);
            for line in [10u64, 20, 30] {
                pf.on_fetch(&obs(line), &mut issuer);
            }
            pf.on_invocation_end(&mut issuer);
        }
        let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
        pf.on_invocation_start(&mut issuer);
        assert_eq!(pf.learned(), 0, "tables must be cold, like the BTB");
        pf.on_fetch(&obs(10), &mut issuer);
        assert_eq!(issuer.counters().issued, 0);
    }

    #[test]
    fn capacity_bounds_table() {
        let (mut mem, mut pt) = setup();
        let mut pf = FetchDirected::new(2, 4);
        let mut issuer = PrefetchIssuer::new(&mut mem, &mut pt, 0);
        pf.on_invocation_start(&mut issuer);
        for line in 0..100u64 {
            pf.on_fetch(&obs(line * 7), &mut issuer);
        }
        assert!(pf.learned() <= 4);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        FetchDirected::new(0, 8);
    }
}
